"""Setuptools shim.

Kept so ``pip install -e .`` works on environments whose setuptools predates
PEP 660 editable-wheel support (this offline image lacks the ``wheel``
package).  All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
