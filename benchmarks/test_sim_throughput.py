"""Bench: raw event throughput of the discrete-event engine.

Not a paper artifact -- this guards the substrate's performance so the
full experiment sweeps stay tractable.
"""

from repro.sim import Environment, Resource


def _pingpong(num_processes: int, hops: int) -> float:
    env = Environment()
    resource = Resource(env, capacity=2)

    def worker(env):
        for _ in range(hops):
            req = resource.request()
            yield req
            yield env.timeout(0.001)
            resource.release(req)

    for _ in range(num_processes):
        env.process(worker(env))
    env.run()
    return env.now


def test_engine_throughput(benchmark):
    result = benchmark(_pingpong, 50, 200)
    assert result > 0


def test_training_iteration_cost(benchmark):
    """Cost of simulating one full 8-GPU Inception-v3 iteration."""
    from repro.core.config import CommMethodName, SimulationConfig, TrainingConfig
    from repro.train import Trainer

    config = TrainingConfig("inception-v3", 16, 8, comm_method=CommMethodName.NCCL)
    sim = SimulationConfig(warmup_iterations=0, measure_iterations=1)

    def run():
        return Trainer(config, sim=sim).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.iteration_time > 0
