"""Bench: raw event throughput of the discrete-event engine.

Not a paper artifact -- this guards the substrate's performance so the
full experiment sweeps stay tractable.  Both benchmarks drive the shared
scenario functions of :mod:`repro.perf.scenarios`, the same code paths the
``repro-experiments bench`` harness times into the committed
``BENCH_*.json`` trajectory -- one definition, two reporting front-ends.
"""

from repro.perf.scenarios import engine_pingpong, training_iteration


def test_engine_throughput(benchmark):
    meta = benchmark(engine_pingpong, 50, 200)
    assert meta["sim_now"] > 0
    assert meta["events"] > 0


def test_training_iteration_cost(benchmark):
    """Cost of simulating one full 8-GPU Inception-v3 iteration."""
    meta = benchmark.pedantic(training_iteration, rounds=1, iterations=1)
    assert meta["iteration_time"] > 0
