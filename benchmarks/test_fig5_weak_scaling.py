"""Bench: regenerate Figure 5 (weak scaling)."""

from repro.core.config import CommMethodName
from repro.experiments import fig5_weak_scaling


def test_fig5(run_once, cache):
    result = run_once(
        fig5_weak_scaling.run,
        cache,
        networks=("lenet", "inception-v3"),
        batch_sizes=(16,),
        gpu_counts=(1, 2, 4, 8),
        methods=(CommMethodName.NCCL,),
    )

    # Weak scaling never loses to strong scaling.
    for cell in result.cells:
        assert cell.weak_speedup >= cell.strong_speedup * 0.999

    # LeNet gains the most (per-run overheads amortize over more batches).
    lenet = result.cell("lenet", "nccl", 16, 8)
    incep = result.cell("inception-v3", "nccl", 16, 8)
    lenet_gain = lenet.weak_speedup / lenet.strong_speedup
    incep_gain = incep.weak_speedup / incep.strong_speedup
    assert lenet_gain > incep_gain

    # Paper: large networks improve by less than ~17%.
    assert incep_gain <= 1.17

    print()
    print(fig5_weak_scaling.render(result))
