"""Ablation bench: BP/WU overlap (MXNet's communication pipelining).

DESIGN.md: shows how much communication-latency hiding contributes to the
paper's numbers.  Without overlap, every gradient waits for the full
backward pass before it starts moving.
"""

from repro.core.config import CommMethodName
from repro.experiments import ablations


def test_overlap_ablation(run_once):
    result = run_once(
        ablations.run, networks=("alexnet", "inception-v3"), batch_size=16,
        num_gpus=8,
    )

    for net in ("alexnet", "inception-v3"):
        for method in ("p2p", "nccl"):
            row = result.row(f"no-overlap/{method}", net)
            assert row.slowdown >= 1.0, (net, method)

    # The communication-bound network benefits most from overlap.
    alex = result.row("no-overlap/p2p", "alexnet").slowdown
    incep = result.row("no-overlap/p2p", "inception-v3").slowdown
    assert alex > incep

    print()
    print(ablations.render(result))
