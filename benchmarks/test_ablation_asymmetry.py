"""Ablation bench: dual-link aggregation (link asymmetry).

Collapsing the DGX-1's dual NVLink connections to singles removes the
50 GB/s virtual links the paper describes; communication-bound training
slows accordingly.
"""

import functools

from repro.core.config import CommMethodName, TrainingConfig
from repro.topology import build_dgx1v
from repro.train import Trainer

from conftest import BENCH_SIM


def test_asymmetry_ablation(run_once):
    uniform = functools.partial(build_dgx1v, uniform_link_width=1)

    def run_all():
        out = {}
        for label, builder in (("dual", build_dgx1v), ("single", uniform)):
            config = TrainingConfig("alexnet", 16, 8, comm_method=CommMethodName.P2P)
            out[label] = Trainer(
                config, sim=BENCH_SIM, topology_builder=builder
            ).run().epoch_time
        return out

    times = run_once(run_all)
    slowdown = times["single"] / times["dual"]
    assert slowdown > 1.05  # dual links measurably help
    assert slowdown < 2.0   # but cannot more than halve transfer time

    print()
    print(f"  dual-link epoch   = {times['dual']:.2f}s")
    print(f"  single-link epoch = {times['single']:.2f}s  (x{slowdown:.2f})")
