"""Bench: SweepRunner wall-clock, serial vs process-pool vs cached.

One reduced paper sweep (two networks, both comm methods, two batches,
four GPU counts = 32 simulations) run three ways:

* ``serial``   -- jobs=1, the baseline every experiment used to pay,
* ``jobs2`` / ``jobs4`` -- the same spec fanned out over worker processes
  (results are asserted identical to serial), and
* ``cached``   -- answered entirely from a warm disk cache.

pytest-benchmark's comparison table then reads as a speedup report for
the subsystem.  Pool speedup tracks the host's core count (on a
single-core machine jobs=N only adds pickling overhead); the cached run
should beat serial by 2-3 orders of magnitude anywhere.
"""

import pytest

from repro.analysis.serialization import result_to_dict
from repro.core.config import CommMethodName
from repro.runner import ResultStore, SweepRunner, SweepSpec

from conftest import BENCH_SIM


def _spec() -> SweepSpec:
    return SweepSpec.grid(
        "bench",
        networks=("lenet", "googlenet"),
        comm_methods=(CommMethodName.P2P, CommMethodName.NCCL),
        batch_sizes=(16, 32),
        gpu_counts=(1, 2, 4, 8),
    )


@pytest.fixture(scope="module")
def serial_results():
    return SweepRunner(sim=BENCH_SIM).run(_spec())


def test_sweep_serial(run_once, serial_results):
    results = run_once(SweepRunner(sim=BENCH_SIM).run, _spec())
    assert len(results) == 32
    assert all(o.ok for o in results)


@pytest.mark.parametrize("jobs", (2, 4))
def test_sweep_parallel(run_once, serial_results, jobs):
    runner = SweepRunner(sim=BENCH_SIM, jobs=jobs)
    results = run_once(runner.run, _spec())
    assert runner.stats.executed == 32
    for a, b in zip(serial_results, results):
        assert result_to_dict(a.result) == result_to_dict(b.result)


def test_sweep_cached(run_once, tmp_path, serial_results):
    store = ResultStore(tmp_path)
    SweepRunner(sim=BENCH_SIM, store=store).run(_spec())   # warm the cache

    cold = SweepRunner(sim=BENCH_SIM, store=ResultStore(tmp_path))
    results = run_once(cold.run, _spec())
    assert cold.stats.executed == 0
    assert cold.stats.disk_hits == 32
    for a, b in zip(serial_results, results):
        assert result_to_dict(a.result) == result_to_dict(b.result)
