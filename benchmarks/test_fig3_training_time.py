"""Bench: regenerate Figure 3 (training time per epoch, P2P vs NCCL).

Reduced sweep: one small and one large network at batch 16 across all GPU
counts -- enough to reproduce every crossover the paper reports.
"""

import pytest

from repro.experiments import fig3_training_time


def test_fig3(run_once, cache):
    result = run_once(
        fig3_training_time.run,
        cache,
        networks=("lenet", "googlenet"),
        batch_sizes=(16,),
        gpu_counts=(1, 2, 4, 8),
    )

    # Paper anchors: LeNet P2P speedups 1.62 / 2.37 / 3.36.
    for gpus, expected in ((2, 1.62), (4, 2.37), (8, 3.36)):
        cell = result.cell("lenet", "p2p", 16, gpus)
        assert cell.speedup_vs_1gpu == pytest.approx(expected, rel=0.12)

    # LeNet NCCL speedups 1.56 / 2.27 / 2.77, always below P2P's.
    for gpus, expected in ((2, 1.56), (4, 2.27), (8, 2.77)):
        cell = result.cell("lenet", "nccl", 16, gpus)
        assert cell.speedup_vs_1gpu == pytest.approx(expected, rel=0.12)

    # Crossover: P2P wins LeNet, NCCL wins GoogLeNet at 4 and 8 GPUs.
    for gpus in (2, 4, 8):
        assert result.epoch_time("lenet", "p2p", 16, gpus) < result.epoch_time(
            "lenet", "nccl", 16, gpus
        )
    for gpus in (4, 8):
        assert result.epoch_time("googlenet", "nccl", 16, gpus) < (
            result.epoch_time("googlenet", "p2p", 16, gpus)
        )

    print()
    print(fig3_training_time.render(result))
