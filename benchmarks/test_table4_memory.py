"""Bench: regenerate Table IV (GPU memory usage)."""

import pytest

from repro.experiments import table4_memory


def test_table4(run_once):
    result = run_once(table4_memory.run)

    # Prose anchors from the paper.
    assert result.row("alexnet", 64).training_gpu0_gb == pytest.approx(2.37, rel=0.08)
    assert result.row("inception-v3", 64).training_gpu0_gb == pytest.approx(
        11.0, rel=0.15
    )

    for row in result.rows:
        # GPU0 (the server) always uses more than the workers...
        assert row.training_gpu0_gb > row.training_gpux_gb
        # ...and pre-training usage is well below training usage.
        assert row.pretraining_gb < row.training_gpu0_gb

    # GPU0's relative extra shrinks as batch size grows.
    for net in ("alexnet", "inception-v3", "resnet", "googlenet"):
        extras = [result.row(net, b).gpu0_extra_percent for b in (16, 32, 64)]
        assert extras[0] >= extras[1] >= extras[2]

    # OOM boundaries: Inception-v3/ResNet cannot train above batch 64;
    # GoogLeNet and LeNet can.
    assert 64 <= result.max_batch["inception-v3"] < 128
    assert 64 <= result.max_batch["resnet"] < 128
    assert result.max_batch["googlenet"] >= 128
    assert result.max_batch["lenet"] >= 256

    print()
    print(table4_memory.render(result))
