"""Bench: regenerate Figure 4 (FP+BP vs WU breakdown under NCCL)."""

import pytest

from repro.experiments import fig4_breakdown


def test_fig4(run_once, cache):
    result = run_once(
        fig4_breakdown.run,
        cache,
        networks=("lenet", "alexnet", "inception-v3"),
        batch_sizes=(16,),
        gpu_counts=(1, 2, 4, 8),
    )

    # Computation dominates for the compute-heavy network at every scale.
    for gpus in (2, 4, 8):
        cell = result.cell("inception-v3", 16, gpus)
        assert cell.fp_bp_epoch > cell.wu_epoch

    # Inception-v3's FP+BP scales near-linearly (paper: near-ideal).
    two = result.cell("inception-v3", 16, 2)
    eight = result.cell("inception-v3", 16, 8)
    assert two.fp_bp_epoch / eight.fp_bp_epoch == pytest.approx(4.0, rel=0.15)

    # LeNet's FP+BP scales non-linearly (CUDA API overhead).
    lenet_two = result.cell("lenet", 16, 2)
    lenet_eight = result.cell("lenet", 16, 8)
    assert lenet_two.fp_bp_epoch / lenet_eight.fp_bp_epoch < 3.5

    # WU per epoch decreases with GPU count (fixed model size, fewer
    # iterations).
    wu = [result.cell("lenet", 16, g).wu_epoch for g in (2, 4, 8)]
    assert wu[0] > wu[1] > wu[2]

    # AlexNet is the most communication-bound of the three.
    alex = result.cell("alexnet", 16, 8)
    incep = result.cell("inception-v3", 16, 8)
    assert alex.wu_share > incep.wu_share

    print()
    print(fig4_breakdown.render(result))
