"""Bench: regenerate Table I (network descriptions)."""

import pytest

from repro.experiments import table1_networks


def test_table1(run_once):
    result = run_once(table1_networks.run)
    by_name = {r.network: r for r in result.rows}

    # Table I structure: conv/inception/FC layer counts.
    assert by_name["lenet"].conv_layers == 2
    assert by_name["alexnet"].conv_layers == 5
    assert by_name["alexnet"].fc_layers == 3
    assert by_name["googlenet"].inception_modules == 9
    assert by_name["inception-v3"].inception_modules == 11

    # Weights match the published figures.
    assert by_name["alexnet"].weights == pytest.approx(61.1e6, rel=0.01)
    assert by_name["googlenet"].weights == pytest.approx(7.0e6, rel=0.03)
    assert by_name["inception-v3"].weights == pytest.approx(23.8e6, rel=0.02)
    assert by_name["resnet"].weights == pytest.approx(25.6e6, rel=0.01)

    print()
    print(table1_networks.render(result))
