"""Bench: regenerate Table III (cudaStreamSynchronize overhead, LeNet)."""

from repro.experiments import table3_sync_overhead


def test_table3(run_once, cache):
    result = run_once(
        table3_sync_overhead.run,
        cache,
        batch_sizes=(16, 32, 64),
        gpu_counts=(1, 2, 4, 8),
    )

    # Paper: cudaStreamSynchronize consumes most time among all APIs.
    for row in result.rows:
        assert row.sync_percent > 50.0

    # Sync share grows (or at least does not shrink) with GPU count.
    for batch in (16, 32, 64):
        assert result.percent(batch, 8) >= result.percent(batch, 1) - 2.0

    # Absolute sync time per iteration grows with GPU count at fixed batch
    # (stragglers + communication).
    for batch in (16, 32, 64):
        rows = {r.num_gpus: r for r in result.rows if r.batch_size == batch}
        assert rows[8].sync_seconds_per_iter > rows[1].sync_seconds_per_iter

    print()
    print(table3_sync_overhead.render(result))
