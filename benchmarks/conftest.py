"""Shared benchmark fixtures.

Each benchmark regenerates one of the paper's tables/figures at a reduced
but shape-preserving scale, asserts the paper's qualitative findings, and
reports the simulation cost via pytest-benchmark.  Simulations are
deterministic, so a single round suffices.
"""

import pytest

from repro.core.config import SimulationConfig
from repro.experiments.runner import RunCache

#: Reduced fidelity: one warm-up, two measured iterations.
BENCH_SIM = SimulationConfig(warmup_iterations=1, measure_iterations=2)


@pytest.fixture()
def run_once(benchmark):
    """Run ``fn`` exactly once under the benchmark timer."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return _run


@pytest.fixture()
def cache():
    return RunCache(sim=BENCH_SIM)
