"""Ablation bench: tensor cores on/off.

The paper notes the V100's tensor cores accelerate the matrix-multiply
heavy DNN training; disabling them slows compute-bound networks much more
than launch-bound LeNet.
"""

from repro.core.config import CommMethodName, TrainingConfig
from repro.train import Trainer

from conftest import BENCH_SIM


def _epoch(net, use_tensor_cores):
    config = TrainingConfig(net, 32, 1, comm_method=CommMethodName.P2P)
    return Trainer(
        config, sim=BENCH_SIM, use_tensor_cores=use_tensor_cores
    ).run().epoch_time


def test_tensor_core_ablation(run_once):
    def run_all():
        return {
            (net, tc): _epoch(net, tc)
            for net in ("lenet", "inception-v3")
            for tc in (True, False)
        }

    times = run_once(run_all)
    incep_slowdown = times[("inception-v3", False)] / times[("inception-v3", True)]
    lenet_slowdown = times[("lenet", False)] / times[("lenet", True)]

    assert incep_slowdown > 1.3           # compute-bound network suffers
    assert lenet_slowdown < incep_slowdown  # launch-bound network barely moves

    print()
    print(f"  inception-v3 without tensor cores: x{incep_slowdown:.2f}")
    print(f"  lenet        without tensor cores: x{lenet_slowdown:.2f}")
