"""Benches for the extension studies: async SGD, multi-node, crossover."""

import pytest

from repro.analysis import CrossoverStudy
from repro.experiments import async_study, multinode_study

from conftest import BENCH_SIM


def test_async_study(run_once):
    result = run_once(
        async_study.run, networks=("lenet", "inception-v3"),
        gpu_counts=(2, 8), sim=BENCH_SIM,
    )
    for net in ("lenet", "inception-v3"):
        row = result.row(net, 8)
        # removing the barrier always raises raw throughput...
        assert row.raw_speedup > 1.0
        # ...and staleness approaches N-1
        assert row.staleness_mean == pytest.approx(7.0, abs=1.5)
        assert row.async_effective_epoch > row.async_epoch
    print()
    print(async_study.render(result))


def test_multinode_study(run_once):
    result = run_once(
        multinode_study.run, networks=("inception-v3",),
        node_counts=(1, 2, 4), sim=BENCH_SIM,
    )
    s2 = result.scaling("inception-v3", 2)
    s4 = result.scaling("inception-v3", 4)
    # more nodes help, but InfiniBand takes its cut at every boundary
    assert 1.4 < s2 < 2.0
    assert s2 < s4 < 4.0
    assert result.row("inception-v3", 2).wu_per_iteration > (
        result.row("inception-v3", 1).wu_per_iteration
    )
    print()
    print(multinode_study.render(result))


def test_crossover_study(run_once):
    study = CrossoverStudy(num_gpus=8, batch_size=16, sim=BENCH_SIM)
    result = run_once(study.run, depths=(2, 8, 32, 64))
    advantages = [p.nccl_advantage for p in result.points]
    # deeper stacks (more weight arrays) shift the advantage toward NCCL
    assert advantages == sorted(advantages)
    assert advantages[0] < 1.0 < advantages[-1]
    assert result.crossover_depth is not None
    print()
    for p in result.points:
        print(f"  depth {p.depth:3d} ({p.weight_arrays:3d} arrays): "
              f"P2P/NCCL = x{p.nccl_advantage:.3f}")
