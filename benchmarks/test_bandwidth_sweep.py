"""Bench: the paper's bandwidth-alone-is-not-enough claim.

Section V-A insight: "only increasing the bandwidth of the interconnect
network cannot completely eliminate the communication bottleneck."
Scaling every NVLink lane 8x must yield far less than 8x training speedup.
"""

from repro.core.config import CommMethodName
from repro.experiments import bandwidth_sweep

from conftest import BENCH_SIM


def test_bandwidth_sweep(run_once):
    result = run_once(
        bandwidth_sweep.run,
        networks=("alexnet", "googlenet"),
        scales=(1.0, 8.0),
        batch_size=16,
        num_gpus=8,
        sim=BENCH_SIM,
    )

    # Even the most communication-bound workload gains far less than the
    # bandwidth ratio...
    alex_gain = {m: result.gain("alexnet", m, 8.0) for m in ("p2p", "nccl")}
    for method, gain in alex_gain.items():
        assert 1.2 < gain < 4.0, (method, gain)

    # ...and the compute-bound workload barely moves at all.
    for method in ("p2p", "nccl"):
        goog_gain = result.gain("googlenet", method, 8.0)
        assert goog_gain < 1.15, (method, goog_gain)
        assert goog_gain < alex_gain[method]

    print()
    print(bandwidth_sweep.render(result))
