"""Ablation bench: NVLink vs PCIe-only fabric.

The paper's insight that raw interconnect bandwidth matters but cannot by
itself remove the communication bottleneck: removing NVLink catastrophically
slows the communication-heavy workload while the compute-bound workload
degrades far less.
"""

import functools

from repro.core.config import CommMethodName, TrainingConfig
from repro.topology import build_dgx1v
from repro.train import Trainer

from conftest import BENCH_SIM


def _epoch(net, topology_builder=build_dgx1v):
    config = TrainingConfig(net, 16, 8, comm_method=CommMethodName.P2P)
    return Trainer(config, sim=BENCH_SIM, topology_builder=topology_builder).run()


def test_fabric_ablation(run_once):
    pcie_only = functools.partial(build_dgx1v, nvlink=False)

    def run_all():
        return {
            (net, fabric): _epoch(net, builder).epoch_time
            for net in ("alexnet", "inception-v3")
            for fabric, builder in (("nvlink", build_dgx1v), ("pcie", pcie_only))
        }

    times = run_once(run_all)

    alex_slowdown = times[("alexnet", "pcie")] / times[("alexnet", "nvlink")]
    incep_slowdown = times[("inception-v3", "pcie")] / times[("inception-v3", "nvlink")]

    # PCIe-only devastates the communication-bound network...
    assert alex_slowdown > 3.0
    # ...but the compute-bound network still loses some ground.
    assert 1.0 < incep_slowdown < alex_slowdown

    print()
    for (net, fabric), t in sorted(times.items()):
        print(f"  {net:13s} {fabric:7s} epoch = {t:8.2f}s")
    print(f"  slowdown: alexnet x{alex_slowdown:.2f}, inception-v3 x{incep_slowdown:.2f}")
