"""Bench: regenerate Figure 2 (DGX-1 topology and routing)."""

from repro.experiments import fig2_topology


def test_fig2(run_once):
    result = run_once(fig2_topology.run)

    # Structural properties the paper relies on.
    assert all(p == 6 for p in result.nvlink_ports_per_gpu)
    assert result.max_hops == 2
    labels = {cell for row in result.matrix for cell in row}
    assert "NV1" in labels and "NV2" in labels and "NV-2hop" in labels
    assert "SYS" not in labels  # every pair reachable within 2 NVLink hops

    print()
    print(fig2_topology.render(result))
