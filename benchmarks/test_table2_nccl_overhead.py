"""Bench: regenerate Table II (single-GPU NCCL overhead)."""

import pytest

from repro.experiments import table2_nccl_overhead


def test_table2(run_once, cache):
    result = run_once(
        table2_nccl_overhead.run,
        cache,
        networks=("lenet", "alexnet", "inception-v3"),
        batch_sizes=(16, 32, 64),
    )

    # Paper: ~21.8% for LeNet at batch 16, rising with batch size.
    assert result.overhead("lenet", 16) == pytest.approx(21.8, abs=6.0)
    assert (
        result.overhead("lenet", 16)
        < result.overhead("lenet", 32)
        < result.overhead("lenet", 64)
    )

    # Large networks stay within a few points at every batch size.
    for batch in (16, 32, 64):
        assert result.overhead("inception-v3", batch) < 12.0

    # The small network's overhead dwarfs the large network's.
    assert result.overhead("lenet", 64) > 2 * result.overhead("inception-v3", 64)

    print()
    print(table2_nccl_overhead.render(result))
