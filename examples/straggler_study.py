#!/usr/bin/env python3
"""Straggler injection: how a slow GPU poisons synchronous SGD.

Synchronous SGD's barrier (the mechanism behind every scaling limit the
paper measures) transmits one GPU's slowdown to the entire job, while
asynchronous SGD degrades only by the straggler's own share of throughput.

Run:  python examples/straggler_study.py
"""

from repro import CommMethodName, TrainingConfig
from repro.experiments.tables import render_table
from repro.train import AsyncTrainer, Trainer

CONFIG = TrainingConfig("googlenet", 32, 8, comm_method=CommMethodName.NCCL)
SLOWDOWNS = (1.0, 1.5, 2.0, 4.0)


def main() -> None:
    rows = []
    sync_base = async_base = None
    for factor in SLOWDOWNS:
        straggler = {} if factor == 1.0 else {5: factor}
        sync = Trainer(CONFIG, gpu_speed_factors=straggler).run()
        asyn = AsyncTrainer(CONFIG, gpu_speed_factors=straggler).run()
        if factor == 1.0:
            sync_base, async_base = sync, asyn
        rows.append(
            (
                f"x{factor:g}",
                f"{sync.epoch_time:.1f}",
                f"x{sync.epoch_time / sync_base.epoch_time:.2f}",
                f"{asyn.epoch_time:.1f}",
                f"x{asyn.epoch_time / async_base.epoch_time:.2f}",
            )
        )
    print(
        render_table(
            ["GPU5 slowdown", "Sync epoch (s)", "Sync impact",
             "Async epoch (s)", "Async impact"],
            rows,
            title=f"Straggler sensitivity: {CONFIG.describe()}",
        )
    )
    print("The synchronous barrier transmits the straggler's slowdown to all")
    print("eight GPUs; the asynchronous server only loses that worker's share.")


if __name__ == "__main__":
    main()
