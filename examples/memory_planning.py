#!/usr/bin/env python3
"""Plan GPU memory for a training run (paper Table IV / Section V-D).

For each workload: the per-GPU footprint at the paper's batch sizes, the
largest batch that fits in the V100's 16 GiB, and a demonstration of the
OOM failure the paper hit for Inception-v3 above batch 64.

Run:  python examples/memory_planning.py
"""

from repro import OutOfMemoryError, TrainingConfig, train
from repro.core.units import format_bytes
from repro.dnn import build_network, compile_network, network_input_shape
from repro.dnn.zoo import PAPER_NETWORKS
from repro.experiments.tables import render_table
from repro.gpu import MemoryModel


def main() -> None:
    model = MemoryModel()
    rows = []
    for name in PAPER_NETWORKS:
        stats = compile_network(build_network(name), network_input_shape(name))
        usage = model.training(stats, 64, is_server=True)
        rows.append(
            (
                name,
                format_bytes(model.pretraining(stats).total),
                format_bytes(usage.total),
                format_bytes(usage.activations),
                format_bytes(usage.workspace),
                model.max_batch_size(stats),
            )
        )
    print(
        render_table(
            ["Network", "Pre-train", "Train GPU0 @b64", "Activations",
             "Workspace", "Max batch"],
            rows,
            title="Memory plan per workload (server GPU)",
        )
    )

    # The paper's OOM: Inception-v3 cannot train above batch 64 per GPU.
    print("Attempting inception-v3 at batch 128 (paper: out of memory)...")
    try:
        train(TrainingConfig("inception-v3", 128, 4))
    except OutOfMemoryError as exc:
        print(f"  OutOfMemoryError: {exc}")

    print("Attempting inception-v3 at batch 64 (paper: trains fine)...")
    result = train(TrainingConfig("inception-v3", 64, 4))
    print(f"  ok: epoch = {result.epoch_time:.1f}s")


if __name__ == "__main__":
    main()
