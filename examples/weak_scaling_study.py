#!/usr/bin/env python3
"""Weak vs strong scaling study (paper Fig. 5 / Section V-E).

Strong scaling keeps the 256K-image dataset fixed as GPUs are added; weak
scaling grows it proportionally.  The per-run overheads (stream creation,
NCCL communicator setup) amortize over the larger weak-scaling epoch,
which is why LeNet gains the most.

Run:  python examples/weak_scaling_study.py
"""

from repro import CommMethodName, ScalingMode, TrainingConfig, train
from repro.experiments.tables import render_table

NETWORKS = ("lenet", "alexnet", "inception-v3")
GPU_COUNTS = (1, 2, 4, 8)


def main() -> None:
    for network in NETWORKS:
        rows = []
        baselines = {}
        for scaling in (ScalingMode.STRONG, ScalingMode.WEAK):
            for gpus in GPU_COUNTS:
                config = TrainingConfig(
                    network, 32, gpus,
                    comm_method=CommMethodName.NCCL, scaling=scaling,
                )
                result = train(config)
                if gpus == 1:
                    baselines[scaling] = result
                speedup = result.speedup_over(baselines[scaling])
                rows.append(
                    (
                        scaling.value,
                        gpus,
                        f"{result.config.total_images // 1024}K",
                        f"{result.epoch_time:.2f}",
                        f"x{speedup:.2f}",
                    )
                )
        print(
            render_table(
                ["Scaling", "GPUs", "Images", "Epoch (s)", "Speedup"],
                rows,
                title=f"{network}: weak vs strong scaling (batch 32, NCCL)",
            )
        )


if __name__ == "__main__":
    main()
