#!/usr/bin/env python3
"""Quickstart: simulate training GoogLeNet on the DGX-1 and read the results.

Run:  python examples/quickstart.py
"""

from repro import CommMethodName, TrainingConfig, train
from repro.core.units import format_seconds


def main() -> None:
    # One point of the paper's sweep: GoogLeNet, batch 32 per GPU,
    # 4 GPUs, NCCL-based weight updates, 256K ImageNet images per epoch.
    config = TrainingConfig(
        network="googlenet",
        batch_size=32,
        num_gpus=4,
        comm_method=CommMethodName.NCCL,
    )
    result = train(config)

    print(f"configuration    : {config.describe()}")
    print(f"iterations/epoch : {result.iterations_per_epoch}")
    print(f"iteration time   : {format_seconds(result.iteration_time)}")
    print(f"epoch time       : {format_seconds(result.epoch_time)}")
    print(f"throughput       : {result.images_per_second:.0f} images/s")
    print()
    print("per-iteration stage breakdown:")
    print(f"  forward prop    : {format_seconds(result.stages.fp)}")
    print(f"  backward prop   : {format_seconds(result.stages.bp)}")
    print(f"  weight update   : {format_seconds(result.stages.wu)} (exposed)")
    print()
    print("top CUDA APIs by wall time:")
    for name, seconds in result.apis.totals[:3]:
        print(f"  {name:24s} {100 * seconds / result.apis.total_time:5.1f}%")
    print()
    print("GPU busy fractions:", {g: f"{b:.0%}" for g, b in result.gpu_busy.items()})


if __name__ == "__main__":
    main()
