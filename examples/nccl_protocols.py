#!/usr/bin/env python3
"""Explore NCCL's algorithm/protocol selection space.

The paper measured NCCL with its algorithm fixed; real NCCL picks a
(Ring|Tree) x (Simple|LL|LL128) combination per message size.  This
example prints the auto-tuner's crossover table, then trains AlexNet
under the compat baseline, a pinned ring+Simple, and full auto-tuning to
show what message-size-aware selection buys end to end.

Run:  python examples/nccl_protocols.py [network]
"""

import sys

from repro.analysis import crossover_table, protocol_speedups, selection_table
from repro.core.config import CommMethodName, TrainingConfig
from repro.train import train


def main() -> None:
    network = sys.argv[1] if len(sys.argv) > 1 else "alexnet"

    print("Auto-tuner regimes over AllReduce message size (8-GPU DGX-1V):")
    for point in crossover_table():
        size = (f"{point.nbytes // (1 << 20)} MiB" if point.nbytes >= 1 << 20
                else f"{point.nbytes // (1 << 10)} KiB" if point.nbytes >= 1 << 10
                else f"{point.nbytes} B")
        print(f"  from {size:>8}: {point.algorithm}+{point.protocol} "
              f"({point.predicted * 1e6:.1f} us)")

    speedups = protocol_speedups(selection_table())
    small = min(speedups)
    print(f"\nAt {small // 1024} KiB the tuned choice is "
          f"{speedups[small]:.1f}x faster than pinned ring+Simple.\n")

    modes = (("compat", "compat"), ("ring", "simple"), ("auto", "auto"))
    print(f"Epoch time for {network}, batch 16, 4 GPUs:")
    for algorithm, protocol in modes:
        result = train(TrainingConfig(
            network, 16, 4, comm_method=CommMethodName.NCCL,
            nccl_algorithm=algorithm, nccl_protocol=protocol,
        ))
        print(f"  {algorithm}+{protocol:<8}: {result.epoch_time:8.2f} s")


if __name__ == "__main__":
    main()
