#!/usr/bin/env python3
"""Locate the P2P-vs-NCCL crossover with synthetic networks.

The paper observes that P2P wins for layer-poor networks and NCCL for
layer-rich ones.  This study sweeps a family of synthetic conv stacks of
increasing depth and finds the depth (= weight-array count) where NCCL's
pipelined collectives overtake P2P's per-array tree transfers.

Run:  python examples/crossover_study.py
"""

from repro.analysis import CrossoverStudy
from repro.experiments.tables import render_table


def main() -> None:
    study = CrossoverStudy(num_gpus=8, batch_size=16)
    result = study.run(depths=(2, 4, 8, 16, 32, 64))

    rows = [
        (
            p.depth,
            p.weight_arrays,
            f"{p.p2p_epoch:.2f}",
            f"{p.nccl_epoch:.2f}",
            f"x{p.nccl_advantage:.3f}",
            "NCCL" if p.nccl_advantage > 1 else "P2P",
        )
        for p in result.points
    ]
    print(
        render_table(
            ["Depth", "Weight arrays", "P2P (s)", "NCCL (s)", "P2P/NCCL", "Winner"],
            rows,
            title=f"Synthetic conv stacks, {result.num_gpus} GPUs, batch "
                  f"{result.batch_size}",
        )
    )
    if result.crossover_depth is None:
        print("NCCL never overtakes P2P in this sweep.")
    else:
        print(f"NCCL overtakes P2P at depth {result.crossover_depth}.")


if __name__ == "__main__":
    main()
