#!/usr/bin/env python3
"""Size an inference deployment on the DGX-1.

Uses the same V100 kernel model as the training simulation to answer
serving questions: per-batch latency, the latency/throughput batch curve,
and aggregate throughput with all eight GPUs serving as replicas.

Run:  python examples/inference_serving.py
"""

from repro.core.units import format_bytes
from repro.experiments.tables import render_table
from repro.train import InferenceEstimator

NETWORKS = ("resnet", "inception-v3", "vgg16")


def main() -> None:
    for network in NETWORKS:
        estimator = InferenceEstimator(network)
        rows = []
        for point in estimator.sweep(batches=(1, 4, 16, 64, 256)):
            rows.append(
                (
                    point.batch_size,
                    f"{point.latency * 1e3:.2f}",
                    f"{point.throughput_per_gpu:.0f}",
                    f"{point.throughput(8):.0f}",
                    format_bytes(point.memory_bytes),
                )
            )
        print(
            render_table(
                ["Batch", "Latency (ms)", "img/s per GPU", "img/s x8", "Memory"],
                rows,
                title=f"{network} serving profile (V100)",
            )
        )
        best = estimator.max_throughput_batch()
        print(f"-> {best.describe()}\n")


if __name__ == "__main__":
    main()
