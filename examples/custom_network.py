#!/usr/bin/env python3
"""Profile a custom architecture on the simulated DGX-1.

Builds a small VGG-style CNN with the network-builder DSL, inspects its
cost profile, and sweeps GPU counts under both communication methods --
the workflow a model designer would use to predict multi-GPU behaviour
before renting hardware.

Run:  python examples/custom_network.py
"""

from repro import CommMethodName, TrainingConfig, compile_network
from repro.dnn.builder import NetworkBuilder
from repro.dnn.shapes import Shape
from repro.experiments.tables import render_table
from repro.train import Trainer


def build_mini_vgg():
    """A VGG-ish stack: conv blocks with BN, then a wide classifier."""
    b = NetworkBuilder("mini-vgg")
    for block, (channels, convs) in enumerate(((64, 2), (128, 2), (256, 3)), start=1):
        for i in range(convs):
            b.conv(channels, 3, pad=1, bn=True, name=f"b{block}c{i + 1}",
                   module=f"block{block}")
        b.maxpool(2, name=f"pool{block}", module=f"block{block}")
    b.flatten()
    b.dense(2048, act="relu", name="fc1")
    b.dropout(0.5)
    b.dense(1000, name="fc2")
    b.softmax()
    return b.build()


def main() -> None:
    input_shape = Shape(3, 96, 96)
    network = build_mini_vgg()
    stats = compile_network(network, input_shape)

    print(f"network          : {stats.name}")
    print(f"parameters       : {stats.total_params / 1e6:.1f}M "
          f"({len(stats.weight_arrays)} weight arrays)")
    print(f"forward FLOPs    : {stats.forward_flops_per_sample / 1e9:.2f} G/image")
    print(f"activations      : {stats.materialized_activation_bytes_per_sample / 1e6:.1f} MB/image")
    print()

    rows = []
    for method in (CommMethodName.P2P, CommMethodName.NCCL):
        for gpus in (1, 2, 4, 8):
            config = TrainingConfig("mini-vgg", 32, gpus, comm_method=method)
            result = Trainer(config, network=network, input_shape=input_shape).run()
            rows.append(
                (
                    method.value,
                    gpus,
                    f"{result.epoch_time:.2f}",
                    f"{result.images_per_second:.0f}",
                    f"{100 * result.stages.wu / result.stages.iteration:.1f}%",
                )
            )
    print(
        render_table(
            ["Method", "GPUs", "Epoch (s)", "img/s", "Exposed WU"],
            rows,
            title="mini-vgg scaling forecast (batch 32)",
        )
    )


if __name__ == "__main__":
    main()
