#!/usr/bin/env python3
"""Export an nvprof-style timeline of a training run as a Chrome trace.

Open the resulting JSON in chrome://tracing or https://ui.perfetto.dev to
see kernels per GPU, P2P/NCCL transfers on the fabric, API calls, and the
FP/BP/WU stage spans.

Run:  python examples/profile_timeline.py [output.json]
"""

import sys

from repro import CommMethodName, SimulationConfig, TrainingConfig
from repro.profile import export_chrome_trace
from repro.train import Trainer


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "resnet_timeline.json"

    config = TrainingConfig("resnet", 16, 4, comm_method=CommMethodName.NCCL)
    trainer = Trainer(
        config,
        sim=SimulationConfig(warmup_iterations=1, measure_iterations=2),
        keep_profiler=True,
    )
    result = trainer.run()

    with open(out_path, "w") as fp:
        export_chrome_trace(result.profiler, fp)

    kernels = len(result.profiler.kernels)
    transfers = len(result.profiler.transfers)
    print(f"simulated {config.describe()}: iteration = {result.iteration_time*1e3:.2f} ms")
    print(f"wrote {out_path}: {kernels} kernels, {transfers} transfers")
    print("open it in chrome://tracing or https://ui.perfetto.dev")


if __name__ == "__main__":
    main()
