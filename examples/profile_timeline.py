#!/usr/bin/env python3
"""Profile a training run and export it three ways: Chrome trace,
Prometheus metrics, and a JSONL event log.

The run is observed through an ObsSession: every component publishes
typed events onto the session's bus, a bridge keeps labelled metrics
(per-NVLink byte/wait counters, ring-step histograms, queue depth), and
a recorder captures the raw stream. Open the trace in chrome://tracing
or https://ui.perfetto.dev to see kernels per GPU, fabric transfers,
API calls, and the FP/BP/WU stage spans in named lanes.

Run:  python examples/profile_timeline.py [output_prefix]
"""

import sys

from repro import CommMethodName, SimulationConfig, TrainingConfig
from repro.obs import ObsSession, render_prometheus
from repro.profile import export_chrome_trace
from repro.train import Trainer


def main() -> None:
    prefix = sys.argv[1] if len(sys.argv) > 1 else "resnet_profile"

    config = TrainingConfig("resnet", 16, 4, comm_method=CommMethodName.NCCL)
    obs = ObsSession()
    trainer = Trainer(
        config,
        sim=SimulationConfig(warmup_iterations=1, measure_iterations=2),
        keep_profiler=True,
        obs=obs,
    )
    result = trainer.run()
    profiler = result.profiler

    trace_path = f"{prefix}.trace.json"
    with open(trace_path, "w") as fp:
        export_chrome_trace(profiler, fp)

    prom_path = f"{prefix}.prom"
    with open(prom_path, "w") as fp:
        fp.write(render_prometheus(obs.registry))

    jsonl_path = f"{prefix}.jsonl"
    with open(jsonl_path, "w") as fp:
        events = obs.recorder.write(fp)

    print(f"simulated {config.describe()}: "
          f"iteration = {result.iteration_time*1e3:.2f} ms")
    print(f"wrote {trace_path}: {len(profiler.kernels)} kernels, "
          f"{len(profiler.transfers)} transfers "
          "(open in chrome://tracing or https://ui.perfetto.dev)")
    print(f"wrote {prom_path}: Prometheus text exposition")
    print(f"wrote {jsonl_path}: {events} raw bus events")

    # A taste of the metrics: bytes and contention wait per NVLink pair.
    print("\nNVLink traffic over the measured window:")
    for labels in obs.registry.label_sets("link_bytes_total"):
        if labels["link_type"] != "nvlink":
            continue
        nbytes = obs.registry.counter_value("link_bytes_total", **labels)
        wait = obs.registry.counter_value("link_wait_time_total", **labels)
        print(f"  {labels['src']} -> {labels['dst']}: "
              f"{nbytes/2**20:8.1f} MiB, waited {wait*1e3:.2f} ms")


if __name__ == "__main__":
    main()
