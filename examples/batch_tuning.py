#!/usr/bin/env python3
"""Find the throughput-optimal batch size for each workload.

Automates the trade-off the paper works through by hand in Sections V-A
and V-D: bigger batches cut the epoch time almost linearly until the
V100's 16 GiB runs out.

Run:  python examples/batch_tuning.py [network ...]
"""

import sys

from repro.analysis import tune_batch_size
from repro.analysis.batch_tuner import render


def main() -> None:
    networks = sys.argv[1:] or ["googlenet", "inception-v3", "lstm"]
    for network in networks:
        result = tune_batch_size(network, num_gpus=8)
        print(render(result))
        best = result.best
        print(
            f"-> train {network} at batch {best.batch_size}/GPU: "
            f"{best.images_per_second:.0f} samples/s "
            f"({result.gain_over(result.points[0].batch_size):.2f}x over batch "
            f"{result.points[0].batch_size})\n"
        )


if __name__ == "__main__":
    main()
