#!/usr/bin/env python3
"""Compare P2P and NCCL weight updates across GPU counts (paper Fig. 3).

Reproduces the paper's central comparison for two contrasting workloads:
AlexNet (few layers, huge gradient arrays -- P2P's sharded transfers win)
and Inception-v3 (many small arrays -- NCCL's pipelined collectives win at
4 and 8 GPUs).

Run:  python examples/compare_comm_methods.py [network ...]
"""

import sys

from repro import CommMethodName, TrainingConfig, train
from repro.experiments.tables import render_table

GPU_COUNTS = (1, 2, 4, 8)


def sweep(network: str, batch_size: int = 16):
    rows = []
    results = {}
    for method in (CommMethodName.P2P, CommMethodName.NCCL):
        for gpus in GPU_COUNTS:
            config = TrainingConfig(network, batch_size, gpus, comm_method=method)
            results[(method, gpus)] = train(config)

    for gpus in GPU_COUNTS:
        p2p = results[(CommMethodName.P2P, gpus)]
        nccl = results[(CommMethodName.NCCL, gpus)]
        winner = "P2P" if p2p.epoch_time < nccl.epoch_time else "NCCL"
        rows.append(
            (
                gpus,
                f"{p2p.epoch_time:.2f}",
                f"{nccl.epoch_time:.2f}",
                f"{p2p.epoch_time / nccl.epoch_time:.2f}",
                winner,
            )
        )
    return rows


def main() -> None:
    networks = sys.argv[1:] or ["alexnet", "inception-v3"]
    for network in networks:
        rows = sweep(network)
        print(
            render_table(
                ["GPUs", "P2P epoch (s)", "NCCL epoch (s)", "P2P/NCCL", "Winner"],
                rows,
                title=f"{network}: communication method comparison (batch 16)",
            )
        )


if __name__ == "__main__":
    main()
