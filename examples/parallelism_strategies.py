#!/usr/bin/env python3
"""Compare parallelization strategies: sync DP, async DP, model parallelism.

The paper's background (Sections I-II) argues data parallelism suits
convolutional networks while model parallelism suits FC-heavy ones, and
that asynchronous SGD trades gradient staleness for throughput.  This
example measures all three on the simulated DGX-1.

Run:  python examples/parallelism_strategies.py
"""

from repro import CommMethodName, TrainingConfig
from repro.experiments.tables import render_table
from repro.train import train, train_async, train_model_parallel

NETWORKS = ("alexnet", "resnet")
GPUS = 4
BATCH = 32


def main() -> None:
    rows = []
    for network in NETWORKS:
        config = TrainingConfig(network, BATCH, GPUS, comm_method=CommMethodName.P2P)

        sync = train(config)
        asyn = train_async(config)
        mp = train_model_parallel(config)
        mp_piped = train_model_parallel(config, pipeline_microbatches=4)

        rows.extend(
            [
                (network, "data-parallel sync (P2P)", f"{sync.epoch_time:.1f}",
                 f"{sync.images_per_second:.0f}", "-"),
                (network, "data-parallel async", f"{asyn.epoch_time:.1f}",
                 f"{asyn.images_per_second:.0f}",
                 f"staleness {asyn.staleness_mean:.1f}"),
                (network, "model-parallel", f"{mp.epoch_time:.1f}",
                 f"{mp.images_per_second:.0f}",
                 f"boundary {mp.communication_bytes_per_iteration / 1e6:.0f} MB/iter"),
                (network, "model-parallel, 4 microbatches",
                 f"{mp_piped.epoch_time:.1f}",
                 f"{mp_piped.images_per_second:.0f}",
                 f"balance {mp_piped.plan.balance:.2f}"),
            ]
        )
    print(
        render_table(
            ["Network", "Strategy", "Epoch (s)", "img/s", "Notes"],
            rows,
            title=f"Parallelization strategies ({GPUS} GPUs, batch {BATCH})",
            align_right_from=2,
        )
    )
    print("Reading: synchronous data parallelism wins overall.  Async removes")
    print("the barrier but pays whole-model pulls/pushes (and staleness), so it")
    print("only helps compute-bound models; model parallelism loses badly for")
    print("the conv-heavy network and is closest to viable for the FC-heavy one")
    print("(small boundary traffic, no gradient synchronization).")


if __name__ == "__main__":
    main()
