"""Layer-wise kernel-time breakdown (the Dong et al. style analysis).

The paper's related work highlights layer-by-layer profiling as the other
lens on DNN training cost; this module aggregates the profiler's kernel
records per layer and per stage, giving the nvprof "top kernels" view at
layer granularity.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.profile.profiler import Profiler


@dataclass(frozen=True)
class LayerProfile:
    """Aggregated kernel time of one layer over the measured window."""

    layer: str
    fp_time: float
    bp_time: float
    wu_time: float
    kernel_count: int

    @property
    def total(self) -> float:
        return self.fp_time + self.bp_time + self.wu_time


@dataclass(frozen=True)
class LayerwiseSummary:
    """Per-layer kernel-time profiles, descending by total."""

    profiles: Tuple[LayerProfile, ...]   # descending by total time

    @property
    def total_time(self) -> float:
        return sum(p.total for p in self.profiles)

    def top(self, k: int) -> Tuple[LayerProfile, ...]:
        return self.profiles[:k]

    def of(self, layer: str) -> LayerProfile:
        for p in self.profiles:
            if p.layer == layer:
                return p
        raise KeyError(layer)

    def share(self, layer: str) -> float:
        total = self.total_time
        return self.of(layer).total / total if total else 0.0


def summarize_layers(
    profiler: Profiler, gpu: Optional[int] = None
) -> LayerwiseSummary:
    """Aggregate kernel records by layer (optionally one GPU only)."""
    fp: Dict[str, float] = defaultdict(float)
    bp: Dict[str, float] = defaultdict(float)
    wu: Dict[str, float] = defaultdict(float)
    counts: Dict[str, int] = defaultdict(int)
    for record in profiler.kernels:
        if gpu is not None and record.gpu != gpu:
            continue
        counts[record.layer] += 1
        if record.stage == "fp":
            fp[record.layer] += record.duration
        elif record.stage == "bp":
            bp[record.layer] += record.duration
        else:
            wu[record.layer] += record.duration
    layers = set(counts)
    profiles = sorted(
        (
            LayerProfile(
                layer=name,
                fp_time=fp[name],
                bp_time=bp[name],
                wu_time=wu[name],
                kernel_count=counts[name],
            )
            for name in layers
        ),
        key=lambda p: p.total,
        reverse=True,
    )
    return LayerwiseSummary(profiles=tuple(profiles))


def render_layerwise(summary: LayerwiseSummary, top_k: int = 15) -> str:
    """nvprof-style text table of the hottest layers."""
    from repro.experiments.tables import render_table

    total = summary.total_time or 1.0
    rows = [
        (
            p.layer,
            f"{p.fp_time * 1e3:.3f}",
            f"{p.bp_time * 1e3:.3f}",
            f"{p.wu_time * 1e3:.3f}",
            p.kernel_count,
            f"{100 * p.total / total:.1f}%",
        )
        for p in summary.top(top_k)
    ]
    return render_table(
        ["Layer", "FP (ms)", "BP (ms)", "WU (ms)", "Kernels", "Share"],
        rows,
        title=f"Layer-wise kernel time (top {min(top_k, len(summary.profiles))})",
    )
