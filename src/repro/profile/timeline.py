"""Chrome-trace (about://tracing, Perfetto) export of a profiled run."""

from __future__ import annotations

import json
from typing import IO, List

from repro.profile.profiler import Profiler

_US = 1e6  # trace events are quoted in microseconds


def chrome_trace_events(profiler: Profiler) -> List[dict]:
    """The run as a list of Chrome trace-event dicts."""
    events: List[dict] = []
    for k in profiler.kernels:
        events.append(
            {
                "name": k.name,
                "cat": f"kernel,{k.stage}",
                "ph": "X",
                "ts": k.start * _US,
                "dur": k.duration * _US,
                "pid": "gpu",
                "tid": f"gpu{k.gpu}",
                "args": {"layer": k.layer, "stage": k.stage},
            }
        )
    for t in profiler.transfers:
        dst = "all" if t.dst < 0 else f"gpu{t.dst}"
        events.append(
            {
                "name": f"{t.kind}:{t.src}->{dst}",
                "cat": f"transfer,{t.kind}",
                "ph": "X",
                "ts": t.start * _US,
                "dur": t.duration * _US,
                "pid": "fabric",
                "tid": f"{t.kind}",
                "args": {"bytes": t.nbytes},
            }
        )
    for a in profiler.apis:
        events.append(
            {
                "name": a.name,
                "cat": "api",
                "ph": "X",
                "ts": a.start * _US,
                "dur": a.duration * _US,
                "pid": "host",
                "tid": f"engine{a.gpu}",
            }
        )
    for s in profiler.spans:
        events.append(
            {
                "name": s.name,
                "cat": "span",
                "ph": "X",
                "ts": s.start * _US,
                "dur": s.duration * _US,
                "pid": "stages",
                "tid": "global" if s.gpu < 0 else f"gpu{s.gpu}",
                "args": {"iteration": s.iteration},
            }
        )
    return events


def export_chrome_trace(profiler: Profiler, fp: IO[str]) -> None:
    """Write the run as a Chrome trace JSON file."""
    json.dump({"traceEvents": chrome_trace_events(profiler)}, fp)
