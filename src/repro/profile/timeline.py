"""Chrome-trace (about://tracing, Perfetto) export of a profiled run.

The trace groups activity into four processes with named lanes, emitted as
standard ``process_name``/``thread_name`` metadata events so the viewer
shows "GPU kernels / GPU 3" instead of raw ids:

=====  ===================  ============================================
pid    process              lanes (tid)
=====  ===================  ============================================
0      Host (CUDA APIs)     one engine thread per GPU
1      GPU kernels          one lane per GPU index
2      Fabric transfers     one lane per transfer kind; collectives
                            (``dst == -1``) get their own
                            "nccl collectives (all GPUs)" lane
3      Stages               one lane per GPU plus a "global" lane
4      Simulator self-time  one wall-clock lane (``repro.perf`` spans;
                            see :mod:`repro.perf.trace`)
=====  ===================  ============================================
"""

from __future__ import annotations

import json
from typing import IO, List

from repro.profile.profiler import Profiler

_US = 1e6  # trace events are quoted in microseconds

_PID_HOST = 0
_PID_GPU = 1
_PID_FABRIC = 2
_PID_STAGES = 3
_PID_SELF = 4  # simulator self-time (repro.perf), kept clear of sim lanes

#: Fixed lane ids within the fabric process.
_TRANSFER_LANES = {"p2p": 0, "h2d": 2, "d2h": 3}
_COLLECTIVE_LANE = 1
_GLOBAL_STAGE_LANE = 999


def _metadata(pid: int, name: str, tid: int = None) -> dict:
    event = {
        "name": "thread_name" if tid is not None else "process_name",
        "ph": "M",
        "pid": pid,
        "args": {"name": name},
    }
    if tid is not None:
        event["tid"] = tid
    return event


def chrome_trace_metadata(profiler: Profiler) -> List[dict]:
    """``process_name``/``thread_name`` metadata for the run's lanes."""
    events: List[dict] = [
        _metadata(_PID_HOST, "Host (CUDA APIs)"),
        _metadata(_PID_GPU, "GPU kernels"),
        _metadata(_PID_FABRIC, "Fabric transfers"),
        _metadata(_PID_STAGES, "Stages"),
    ]
    for gpu in sorted({k.gpu for k in profiler.kernels}):
        events.append(_metadata(_PID_GPU, f"GPU {gpu}", tid=gpu))
    for gpu in sorted({a.gpu for a in profiler.apis}):
        events.append(_metadata(_PID_HOST, f"engine thread {gpu}", tid=gpu))
    kinds = {
        t.kind for t in profiler.transfers if not (t.kind == "nccl" and t.dst < 0)
    }
    for kind in sorted(kinds):
        lane = _TRANSFER_LANES.get(kind, 10 + len(_TRANSFER_LANES))
        events.append(_metadata(_PID_FABRIC, kind, tid=lane))
    if any(t.kind == "nccl" and t.dst < 0 for t in profiler.transfers):
        events.append(_metadata(_PID_FABRIC, "nccl collectives (all GPUs)",
                                tid=_COLLECTIVE_LANE))
    span_gpus = sorted({s.gpu for s in profiler.spans if s.gpu >= 0})
    for gpu in span_gpus:
        events.append(_metadata(_PID_STAGES, f"GPU {gpu}", tid=gpu))
    if any(s.gpu < 0 for s in profiler.spans):
        events.append(_metadata(_PID_STAGES, "global", tid=_GLOBAL_STAGE_LANE))
    return events


def chrome_trace_events(profiler: Profiler) -> List[dict]:
    """The run's duration ("X") events as Chrome trace-event dicts."""
    events: List[dict] = []
    for k in profiler.kernels:
        events.append(
            {
                "name": k.name,
                "cat": f"kernel,{k.stage}",
                "ph": "X",
                "ts": k.start * _US,
                "dur": k.duration * _US,
                "pid": _PID_GPU,
                "tid": k.gpu,
                "args": {"layer": k.layer, "stage": k.stage},
            }
        )
    for t in profiler.transfers:
        if t.kind == "nccl" and t.dst < 0:
            # Collective involving every GPU: a dedicated lane, not a
            # bogus point-to-point one.
            name = f"{t.kind}:{t.src}->all"
            tid = _COLLECTIVE_LANE
        else:
            src = "host" if t.src < 0 else f"gpu{t.src}"
            dst = "host" if t.dst < 0 else f"gpu{t.dst}"
            name = f"{t.kind}:{src}->{dst}"
            tid = _TRANSFER_LANES.get(t.kind, 10 + len(_TRANSFER_LANES))
        events.append(
            {
                "name": name,
                "cat": f"transfer,{t.kind}",
                "ph": "X",
                "ts": t.start * _US,
                "dur": t.duration * _US,
                "pid": _PID_FABRIC,
                "tid": tid,
                "args": {"bytes": t.nbytes},
            }
        )
    for a in profiler.apis:
        events.append(
            {
                "name": a.name,
                "cat": "api",
                "ph": "X",
                "ts": a.start * _US,
                "dur": a.duration * _US,
                "pid": _PID_HOST,
                "tid": a.gpu,
            }
        )
    for s in profiler.spans:
        events.append(
            {
                "name": s.name,
                "cat": "span",
                "ph": "X",
                "ts": s.start * _US,
                "dur": s.duration * _US,
                "pid": _PID_STAGES,
                "tid": _GLOBAL_STAGE_LANE if s.gpu < 0 else s.gpu,
                "args": {"iteration": s.iteration},
            }
        )
    return events


def export_chrome_trace(profiler: Profiler, fp: IO[str], perf=None) -> None:
    """Write the run as a Chrome trace JSON file.

    ``perf`` optionally attaches a :class:`~repro.perf.spans.PerfProfiler`
    whose simulator self-time spans ride along on their own process lane
    (pid 4), so one Perfetto tab shows simulated time and the wall-clock
    spent producing it side by side.
    """
    events = chrome_trace_metadata(profiler) + chrome_trace_events(profiler)
    if perf is not None:
        from repro.perf.trace import perf_chrome_trace_events

        events += perf_chrome_trace_events(perf)
    json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, fp)
