"""Terminal rendering of a profiled iteration as per-GPU lanes.

A lightweight complement to the Chrome-trace exporter for quick looks:
each GPU gets a lane of fixed-width character cells over a time window;
cells show the dominant activity (``F`` forward, ``B`` backward, ``W``
weight-update kernels, ``.`` idle), with a transfer lane underneath.
"""

from __future__ import annotations

import io
from typing import Dict, List, Optional, Tuple

from repro.profile.profiler import Profiler

_STAGE_GLYPHS = {"fp": "F", "bp": "B", "wu": "W"}
_TRANSFER_GLYPHS = {"p2p": "p", "nccl": "n", "h2d": "h", "d2h": "d"}


def _dominant(intervals: List[Tuple[float, float, str]], t0: float, t1: float) -> str:
    """Glyph of the activity covering most of [t0, t1), or '.'."""
    best_glyph, best_cover = ".", 0.0
    for start, end, glyph in intervals:
        cover = min(end, t1) - max(start, t0)
        if cover > best_cover:
            best_glyph, best_cover = glyph, cover
    return best_glyph if best_cover > 0 else "."


def render_ascii_timeline(
    profiler: Profiler,
    width: int = 100,
    window: Optional[Tuple[float, float]] = None,
) -> str:
    """Render the profiled window as fixed-width per-GPU lanes."""
    events = profiler.kernels
    if not events:
        return "(no kernels recorded)\n"
    if window is None:
        start = min(k.start for k in events)
        end = max(k.end for k in events)
        for t in profiler.transfers:
            end = max(end, t.end)
    else:
        start, end = window
    span = max(end - start, 1e-12)
    cell = span / width

    lanes: Dict[int, List[Tuple[float, float, str]]] = {}
    for k in events:
        lanes.setdefault(k.gpu, []).append(
            (k.start, k.end, _STAGE_GLYPHS.get(k.stage, "?"))
        )
    transfers = [
        (t.start, t.end, _TRANSFER_GLYPHS.get(t.kind, "?"))
        for t in profiler.transfers
    ]

    out = io.StringIO()
    out.write(
        f"timeline {start * 1e3:.3f}ms .. {end * 1e3:.3f}ms "
        f"({span * 1e3:.3f}ms, {cell * 1e6:.1f}us/cell)\n"
    )
    out.write("legend: F=forward B=backward W=weight-update  "
              "p=p2p n=nccl h=h2d d=d2h  .=idle\n")
    for gpu in sorted(lanes):
        cells = [
            _dominant(lanes[gpu], start + i * cell, start + (i + 1) * cell)
            for i in range(width)
        ]
        out.write(f"gpu{gpu} |{''.join(cells)}|\n")
    if transfers:
        cells = [
            _dominant(transfers, start + i * cell, start + (i + 1) * cell)
            for i in range(width)
        ]
        out.write(f"xfer |{''.join(cells)}|\n")
    return out.getvalue()
