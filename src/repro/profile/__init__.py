"""nvprof/nvidia-smi style observability for simulated training runs.

The :class:`~repro.profile.profiler.Profiler` collects kernel, transfer,
API-call and stage-span intervals during simulation;
:mod:`repro.profile.summary` aggregates them into the quantities the paper
reports (FP/BP/WU breakdown, cudaStreamSynchronize percentages, per-GPU
busy time); :mod:`repro.profile.timeline` exports Chrome traces; and
:mod:`repro.profile.smi` produces nvidia-smi style memory readings.
"""

from repro.profile.ascii_timeline import render_ascii_timeline
from repro.profile.layerwise import LayerProfile, LayerwiseSummary, render_layerwise, summarize_layers
from repro.profile.profiler import Profiler
from repro.profile.records import ApiRecord, KernelRecord, SpanRecord, TransferRecord
from repro.profile.smi import MemoryMonitor, MemoryReading
from repro.profile.summary import ApiSummary, StageBreakdown, summarize_apis, summarize_stages
from repro.profile.timeline import export_chrome_trace

__all__ = [
    "ApiRecord",
    "ApiSummary",
    "KernelRecord",
    "LayerProfile",
    "LayerwiseSummary",
    "MemoryMonitor",
    "MemoryReading",
    "Profiler",
    "SpanRecord",
    "StageBreakdown",
    "TransferRecord",
    "export_chrome_trace",
    "render_ascii_timeline",
    "render_layerwise",
    "summarize_apis",
    "summarize_layers",
    "summarize_stages",
]
