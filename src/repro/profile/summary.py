"""Aggregation of profiler records into the paper's reported quantities."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.profile.profiler import Profiler


@dataclass(frozen=True)
class StageBreakdown:
    """Mean per-iteration stage times (seconds)."""

    fp: float
    bp: float
    wu: float
    iteration: float

    @property
    def fp_bp(self) -> float:
        """The paper's "computation" bucket."""
        return self.fp + self.bp

    @property
    def wu_fraction(self) -> float:
        return self.wu / self.iteration if self.iteration > 0 else 0.0


@dataclass(frozen=True)
class ApiSummary:
    """Total wall time per CUDA API over the measured window."""

    totals: Tuple[Tuple[str, float], ...]   # (api name, seconds), descending

    @property
    def total_time(self) -> float:
        return sum(t for _, t in self.totals)

    def time_of(self, name: str) -> float:
        for api, t in self.totals:
            if api == name:
                return t
        return 0.0

    def percent_of(self, name: str) -> float:
        """Share of total API time spent in ``name`` (nvprof's API view)."""
        total = self.total_time
        return 100.0 * self.time_of(name) / total if total > 0 else 0.0


def summarize_stages(profiler: Profiler) -> StageBreakdown:
    """Mean per-iteration FP / BP / WU spans across the measured window.

    FP and BP spans are recorded per GPU; each iteration's stage time is
    the max across GPUs (the straggler paces synchronous SGD).  The WU span
    is global: the exposed weight-update tail after compute finishes.
    """
    per_iter_stage: Dict[Tuple[int, str], List[float]] = defaultdict(list)
    iterations = set()
    for span in profiler.spans:
        per_iter_stage[(span.iteration, span.name)].append(span.duration)
        iterations.add(span.iteration)
    if not iterations:
        return StageBreakdown(0.0, 0.0, 0.0, 0.0)

    def mean_of(stage: str) -> float:
        values = []
        for it in iterations:
            durations = per_iter_stage.get((it, stage), [])
            if durations:
                values.append(max(durations))
        return sum(values) / len(values) if values else 0.0

    return StageBreakdown(
        fp=mean_of("fp"),
        bp=mean_of("bp"),
        wu=mean_of("wu"),
        iteration=mean_of("iteration"),
    )


def summarize_apis(profiler: Profiler) -> ApiSummary:
    """Total wall time per API name, descending."""
    totals: Dict[str, float] = defaultdict(float)
    for api in profiler.apis:
        totals[api.name] += api.duration
    ordered = tuple(sorted(totals.items(), key=lambda kv: kv[1], reverse=True))
    return ApiSummary(totals=ordered)


def gpu_busy_fractions(profiler: Profiler) -> Dict[int, float]:
    """Fraction of the measured window each GPU spent executing kernels."""
    window_start = min((s.start for s in profiler.spans), default=0.0)
    window_end = max((s.end for s in profiler.spans), default=0.0)
    window = window_end - window_start
    if window <= 0:
        return {}
    busy: Dict[int, float] = defaultdict(float)
    for k in profiler.kernels:
        busy[k.gpu] += k.duration
    return {gpu: t / window for gpu, t in sorted(busy.items())}
