"""Interval records captured during simulation."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class KernelRecord:
    """One kernel execution on one GPU."""

    gpu: int
    name: str
    layer: str
    stage: str       # "fp" | "bp" | "wu"
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class TransferRecord:
    """One inter-device data movement (P2P DMA, NCCL collective, HtoD)."""

    kind: str        # "p2p" | "nccl" | "h2d" | "d2h"
    src: int
    dst: int         # -1 for collectives involving all GPUs
    nbytes: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def bandwidth(self) -> float:
        return self.nbytes / self.duration if self.duration > 0 else 0.0


@dataclass(frozen=True)
class ApiRecord:
    """One CUDA runtime API call on the host (wall-clock interval)."""

    name: str        # e.g. "cudaStreamSynchronize", "cudaLaunchKernel"
    gpu: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class SpanRecord:
    """A labelled stage span (fp / bp / wu / iteration), per GPU or global."""

    name: str
    gpu: int         # -1 for global spans
    iteration: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start
