"""The profiler: collects interval records during a simulated run.

Measurement can be gated (``profiler.enabled``) so warm-up iterations do
not pollute the statistics, mirroring how nvprof sessions are windowed.
"""

from __future__ import annotations

from typing import List, Optional

from repro.gpu.kernel import KernelSpec
from repro.profile.records import ApiRecord, KernelRecord, SpanRecord, TransferRecord


class Profiler:
    """Collects kernel/transfer/API/span records."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.kernels: List[KernelRecord] = []
        self.transfers: List[TransferRecord] = []
        self.apis: List[ApiRecord] = []
        self.spans: List[SpanRecord] = []

    # ------------------------------------------------------------------
    # Recording hooks (called by devices, communicators, trainer)
    # ------------------------------------------------------------------
    def record_kernel(self, gpu: int, kernel: KernelSpec, start: float, end: float) -> None:
        if self.enabled:
            self.kernels.append(
                KernelRecord(
                    gpu=gpu,
                    name=kernel.name,
                    layer=kernel.layer,
                    stage=kernel.stage,
                    start=start,
                    end=end,
                )
            )

    def record_transfer(
        self, kind: str, src: int, dst: int, nbytes: int, start: float, end: float
    ) -> None:
        if self.enabled:
            self.transfers.append(
                TransferRecord(kind=kind, src=src, dst=dst, nbytes=nbytes,
                               start=start, end=end)
            )

    def record_api(self, name: str, gpu: int, start: float, end: float) -> None:
        if self.enabled:
            self.apis.append(ApiRecord(name=name, gpu=gpu, start=start, end=end))

    def record_span(
        self, name: str, gpu: int, iteration: int, start: float, end: float
    ) -> None:
        if self.enabled:
            self.spans.append(
                SpanRecord(name=name, gpu=gpu, iteration=iteration,
                           start=start, end=end)
            )

    # ------------------------------------------------------------------
    # Windowing
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop everything recorded so far (end of warm-up)."""
        self.kernels.clear()
        self.transfers.clear()
        self.apis.clear()
        self.spans.clear()

    # ------------------------------------------------------------------
    # Simple aggregates
    # ------------------------------------------------------------------
    def kernel_time(self, gpu: Optional[int] = None, stage: Optional[str] = None) -> float:
        """Total kernel busy time, optionally filtered."""
        return sum(
            k.duration
            for k in self.kernels
            if (gpu is None or k.gpu == gpu) and (stage is None or k.stage == stage)
        )

    def bytes_transferred(self, kind: Optional[str] = None) -> int:
        return sum(t.nbytes for t in self.transfers if kind is None or t.kind == kind)

    def api_time(self, name: Optional[str] = None) -> float:
        return sum(a.duration for a in self.apis if name is None or a.name == name)
