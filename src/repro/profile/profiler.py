"""The profiler: collects interval records during a simulated run.

Since the observability refactor the profiler is a thin gate in front of a
:class:`~repro.obs.bus.EventBus`: every ``record_*`` call constructs a
typed event (:class:`~repro.obs.events.KernelEvent`, ...) and publishes it
when measurement is enabled.  The familiar record lists (``.kernels``,
``.transfers``, ``.apis``, ``.spans``) are maintained by a built-in bus
subscriber, so existing aggregation code keeps working unchanged, while
any number of additional subscribers (metrics bridge, JSONL recorder) can
ride the same stream.

Measurement can be gated (``profiler.enabled``) so warm-up iterations do
not pollute the statistics, mirroring how nvprof sessions are windowed.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterator, List, Optional, Union

from repro.gpu.kernel import KernelSpec
from repro.obs.bus import EventBus
from repro.obs.events import (
    ApiEvent,
    KernelEvent,
    ObsEvent,
    SpanEvent,
    TransferEvent,
)
from repro.profile.records import ApiRecord, KernelRecord, SpanRecord, TransferRecord

#: A clock is anything with a ``now`` attribute (a simulation
#: :class:`~repro.sim.engine.Environment`) or a zero-argument callable.
Clock = Union[Callable[[], float], object]


class Profiler:
    """Collects kernel/transfer/API/span records and feeds the event bus."""

    def __init__(
        self,
        enabled: bool = True,
        bus: Optional[EventBus] = None,
        clock: Optional[Clock] = None,
    ) -> None:
        self.enabled = enabled
        self.bus = bus if bus is not None else EventBus()
        self.clock = clock
        self.kernels: List[KernelRecord] = []
        self.transfers: List[TransferRecord] = []
        self.apis: List[ApiRecord] = []
        self.spans: List[SpanRecord] = []
        # List accumulation is itself just one subscriber of the bus.
        self.bus.subscribe(KernelEvent, self._on_kernel)
        self.bus.subscribe(TransferEvent, self._on_transfer)
        self.bus.subscribe(ApiEvent, self._on_api)
        self.bus.subscribe(SpanEvent, self._on_span)

    # ------------------------------------------------------------------
    # Bus plumbing
    # ------------------------------------------------------------------
    def publish(self, event: ObsEvent) -> None:
        """Publish any typed event, honouring the measurement window."""
        if self.enabled:
            self.bus.publish(event)

    def bind_clock(self, clock: Clock) -> None:
        """Attach the time source :meth:`span` reads (normally the env)."""
        self.clock = clock

    def _now(self) -> float:
        if self.clock is None:
            raise ValueError(
                "Profiler.span() needs a clock; pass clock= to the "
                "constructor or call bind_clock(env)"
            )
        now = getattr(self.clock, "now", None)
        if now is not None:
            return float(now)
        return float(self.clock())

    def _on_kernel(self, e: KernelEvent) -> None:
        self.kernels.append(
            KernelRecord(gpu=e.gpu, name=e.name, layer=e.layer, stage=e.stage,
                         start=e.start, end=e.end)
        )

    def _on_transfer(self, e: TransferEvent) -> None:
        self.transfers.append(
            TransferRecord(kind=e.kind, src=e.src, dst=e.dst, nbytes=e.nbytes,
                           start=e.start, end=e.end)
        )

    def _on_api(self, e: ApiEvent) -> None:
        self.apis.append(ApiRecord(name=e.name, gpu=e.gpu, start=e.start, end=e.end))

    def _on_span(self, e: SpanEvent) -> None:
        self.spans.append(
            SpanRecord(name=e.name, gpu=e.gpu, iteration=e.iteration,
                       start=e.start, end=e.end)
        )

    # ------------------------------------------------------------------
    # Recording hooks (called by devices, communicators, trainer)
    # ------------------------------------------------------------------
    def record_kernel(self, gpu: int, kernel: KernelSpec, start: float, end: float) -> None:
        self.publish(
            KernelEvent(gpu=gpu, name=kernel.name, layer=kernel.layer,
                        stage=kernel.stage, start=start, end=end)
        )

    def record_transfer(
        self, kind: str, src: int, dst: int, nbytes: int, start: float, end: float
    ) -> None:
        self.publish(
            TransferEvent(kind=kind, src=src, dst=dst, nbytes=nbytes,
                          start=start, end=end)
        )

    def record_api(self, name: str, gpu: int, start: float, end: float) -> None:
        self.publish(ApiEvent(name=name, gpu=gpu, start=start, end=end))

    def record_span(
        self, name: str, gpu: int, iteration: int, start: float, end: float
    ) -> None:
        self.publish(
            SpanEvent(name=name, gpu=gpu, iteration=iteration,
                      start=start, end=end)
        )

    @contextlib.contextmanager
    def span(self, name: str, gpu: int = -1, iteration: int = 0) -> Iterator[None]:
        """Record the enclosed block as one span, reading the bound clock.

        Replaces hand-paired ``start = env.now ... record_span(..., start,
        env.now)`` call sites::

            with profiler.span("fp", gpu=dev.index, iteration=it):
                ... run forward kernels ...
        """
        start = self._now()
        try:
            yield
        finally:
            self.record_span(name, gpu, iteration, start, self._now())

    # ------------------------------------------------------------------
    # Windowing
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop everything recorded so far (end of warm-up)."""
        self.kernels.clear()
        self.transfers.clear()
        self.apis.clear()
        self.spans.clear()

    # ------------------------------------------------------------------
    # Simple aggregates
    # ------------------------------------------------------------------
    def kernel_time(self, gpu: Optional[int] = None, stage: Optional[str] = None) -> float:
        """Total kernel busy time, optionally filtered."""
        return sum(
            k.duration
            for k in self.kernels
            if (gpu is None or k.gpu == gpu) and (stage is None or k.stage == stage)
        )

    def bytes_transferred(self, kind: Optional[str] = None) -> int:
        return sum(t.nbytes for t in self.transfers if kind is None or t.kind == kind)

    def api_time(self, name: Optional[str] = None) -> float:
        return sum(a.duration for a in self.apis if name is None or a.name == name)
