"""nvidia-smi style memory readings for a training configuration.

The paper samples nvidia-smi during the pre-training and training phases
(Table IV); :class:`MemoryMonitor` produces the same two readings per GPU
from the analytical memory model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.constants import CALIBRATION, CalibrationConstants
from repro.dnn.stats import NetworkStats
from repro.gpu.memory import MemoryModel, MemoryUsage
from repro.gpu.spec import TESLA_V100, GpuSpec


@dataclass(frozen=True)
class MemoryReading:
    """One nvidia-smi sample for one GPU."""

    gpu: int
    phase: str            # "pretraining" | "training"
    usage: MemoryUsage

    @property
    def total_gb(self) -> float:
        return self.usage.total_gb


class MemoryMonitor:
    """Produces Table IV's per-GPU memory readings."""

    def __init__(
        self,
        spec: GpuSpec = TESLA_V100,
        constants: CalibrationConstants = CALIBRATION,
        **model_kwargs,
    ) -> None:
        self.model = MemoryModel(spec, constants, **model_kwargs)

    def sample(
        self, stats: NetworkStats, batch: int, num_gpus: int
    ) -> List[MemoryReading]:
        """Pre-training and training readings for every participating GPU.

        GPU0 is the KVStore server; its training reading includes the
        aggregation buffers.  All pre-training readings are identical, and
        all non-server training readings are identical -- exactly the
        structure of the paper's Table IV.
        """
        readings: List[MemoryReading] = []
        pre = self.model.pretraining(stats)
        for gpu in range(num_gpus):
            readings.append(MemoryReading(gpu=gpu, phase="pretraining", usage=pre))
        for gpu in range(num_gpus):
            usage = self.model.training(
                stats, batch, is_server=(gpu == 0 and num_gpus > 1)
            )
            readings.append(MemoryReading(gpu=gpu, phase="training", usage=usage))
        return readings
