"""The simulation environment: virtual clock plus event heap."""

from __future__ import annotations

import heapq
from typing import Any, Generator, List, Optional, Tuple

from repro.core.errors import SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Process, Timeout


class Environment:
    """Owns simulated time and executes events in timestamp order.

    Ties are broken by insertion order, which makes every run fully
    deterministic.
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = initial_time
        self._eid = 0
        self._queue: List[Tuple[float, int, Event]] = []
        self._observer = None
        self._observer_every = 1
        self._steps = 0
        self._dispatched = 0
        self._checks = None

    def set_checks(self, checks) -> None:
        """Attach a :class:`~repro.checks.CheckEngine` (or ``None``).

        When attached and enabled, every :meth:`step` fires the
        ``sim.event`` checkpoint (``temporal.event-monotone``) before the
        clock advances.
        """
        self._checks = checks if checks is not None and checks.enabled else None

    def set_observer(self, observer, every: int = 1) -> None:
        """Attach an ``observer(now, queue_depth)`` callback.

        Called after every ``every``-th :meth:`step` with the current
        simulated time and event-heap depth; used by the observability
        layer to sample ``sim_event_queue_depth``.  Pass ``None`` to
        detach.
        """
        if every < 1:
            raise SimulationError(f"observer interval must be >= 1, got {every}")
        self._observer = observer
        self._observer_every = every

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def dispatched(self) -> int:
        """Events processed so far (feeds the ``sim.events`` perf counter).

        Maintained unconditionally -- one integer increment per event is
        the cheapest instrumentation :mod:`repro.perf` can buy, far below
        the cost of a gating branch plus attribute lookups would be.
        """
        return self._dispatched

    # ------------------------------------------------------------------
    # Event factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create an untriggered event; trigger it with ``succeed``/``fail``."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any]) -> Process:
        """Start a new process from a generator."""
        return Process(self, generator)

    def all_of(self, events) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        return AnyOf(self, events)

    # ------------------------------------------------------------------
    # Scheduling and execution
    # ------------------------------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0) -> None:
        """Queue a triggered event for processing at ``now + delay``."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._eid += 1
        heapq.heappush(self._queue, (self._now + delay, self._eid, event))

    def step(self) -> None:
        """Process the single next event."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _, event = heapq.heappop(self._queue)
        if when < self._now:
            raise SimulationError("event scheduled in the past")
        if self._checks is not None:
            self._checks.check("sim.event", when=when, now=self._now)
        self._now = when
        self._dispatched += 1
        callbacks, event.callbacks = event.callbacks, []
        event._processed = True
        for callback in callbacks:
            callback(event)
        if self._observer is not None:
            self._steps += 1
            if self._steps % self._observer_every == 0:
                self._observer(self._now, len(self._queue))

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the queue drains, a deadline passes, or an event fires.

        ``until`` may be a simulated-time deadline (float) or an event; when
        an event is given its value is returned (or its exception raised).
        """
        if isinstance(until, Event):
            return self._run_until_event(until)
        deadline = float("inf") if until is None else float(until)
        if deadline < self._now:
            raise SimulationError(f"deadline {deadline} is in the past (now={self._now})")
        while self._queue and self._queue[0][0] <= deadline:
            self.step()
        if deadline != float("inf"):
            self._now = deadline
        return None

    def _run_until_event(self, until: Event) -> Any:
        if until.env is not self:
            raise SimulationError("run(until=...) got an event from another environment")
        while not (until.triggered and until._processed):
            if not self._queue:
                raise SimulationError("event queue drained before target event fired")
            self.step()
        if not until.ok:
            raise until.value
        return until.value

    def peek(self) -> float:
        """Timestamp of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")
