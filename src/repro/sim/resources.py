"""Shared-resource primitives for the event engine.

:class:`Resource` models FIFO mutual exclusion with a configurable capacity
(GPU execution engines, DMA copy engines, interconnect links).
:class:`Store` is an unbounded FIFO hand-off queue between processes (used
for CUDA stream work queues).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, TYPE_CHECKING

from repro.core.errors import SimulationError
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Environment


class Request(Event):
    """A pending claim on a :class:`Resource` slot."""

    def __init__(self, env: "Environment", resource: "Resource") -> None:
        super().__init__(env)
        self.resource = resource


class Resource:
    """A capacity-limited resource with FIFO granting.

    Usage inside a process generator::

        req = resource.request()
        yield req
        try:
            yield env.timeout(service_time)
        finally:
            resource.release(req)
    """

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._users: List[Request] = []
        self._waiting: Deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    def request(self) -> Request:
        """Claim a slot; the returned event fires once the slot is granted."""
        req = Request(self.env, self)
        if len(self._users) < self.capacity:
            self._users.append(req)
            req.succeed()
        else:
            self._waiting.append(req)
        return req

    def release(self, request: Request) -> None:
        """Return a previously granted slot and wake the next waiter."""
        try:
            self._users.remove(request)
        except ValueError:
            raise SimulationError("release() of a request that does not hold the resource")
        if self._waiting:
            nxt = self._waiting.popleft()
            self._users.append(nxt)
            nxt.succeed()

    def cancel(self, request: Request) -> None:
        """Withdraw a not-yet-granted request."""
        try:
            self._waiting.remove(request)
        except ValueError:
            raise SimulationError("cancel() of a request that is not waiting")


class Store:
    """Unbounded FIFO queue; ``get`` blocks until an item is available."""

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit ``item``; wakes the oldest blocked getter, if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event that fires with the next item."""
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event
