"""Event types for the discrete-event engine.

Events move through three states: *pending* (created), *triggered*
(scheduled on the environment's heap with a value) and *processed*
(callbacks ran).  Processes are events too, so a process can ``yield``
another process to join on its completion.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, Iterable, List, Optional

from repro.core.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Environment

#: Sentinel distinguishing "no value yet" from a legitimate ``None`` value.
_PENDING = object()


class Event:
    """A one-shot occurrence at a point in simulated time.

    Callbacks receive the event itself once it is processed.  ``succeed``
    and ``fail`` trigger the event; triggering twice is an error.
    """

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: List[Callable[["Event"], None]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._processed = False

    @property
    def triggered(self) -> bool:
        return self._value is not _PENDING

    @property
    def ok(self) -> bool:
        """Whether the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event value not available yet")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event value not available yet")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception; waiters will re-raise it."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self.triggered else "pending"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)


class Interrupt(Exception):
    """Raised inside a process that another process interrupted."""

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Process(Event):
    """Wraps a generator; completion of the generator triggers the event.

    The generator yields events; the process resumes when the yielded event
    is processed.  A failed event re-raises its exception inside the
    generator, letting simulation code use ordinary ``try``/``except``.
    """

    def __init__(self, env: "Environment", generator: Generator[Event, Any, Any]) -> None:
        super().__init__(env)
        if not hasattr(generator, "send"):
            raise SimulationError(f"process target must be a generator, got {generator!r}")
        self._generator = generator
        self._target: Optional[Event] = None
        # Kick the process off at the current simulation time.
        init = Event(env)
        init._ok = True
        init._value = None
        init.callbacks.append(self._resume)
        env.schedule(init)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            return
        # Detach from whatever the process currently waits for.
        if self._target is not None and self._resume in self._target.callbacks:
            self._target.callbacks.remove(self._resume)
        self._target = None
        poke = Event(self.env)
        poke._ok = False
        poke._value = Interrupt(cause)
        poke.callbacks.append(self._resume)
        self.env.schedule(poke)

    def _resume(self, trigger: Event) -> None:
        self._target = None
        try:
            if trigger.ok:
                next_event = self._generator.send(trigger.value)
            else:
                next_event = self._generator.throw(trigger.value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt:
            # Process chose not to handle the interrupt; treat as failure.
            self.fail(SimulationError("process terminated by unhandled interrupt"))
            return
        if not isinstance(next_event, Event):
            self.fail(SimulationError(f"process yielded non-event {next_event!r}"))
            return
        if next_event.env is not self.env:
            self.fail(SimulationError("process yielded event from another environment"))
            return
        self._target = next_event
        if next_event._processed:
            # Already-processed event: resume immediately (zero delay).
            poke = Event(self.env)
            poke._ok = next_event._ok
            poke._value = next_event._value
            poke.callbacks.append(self._resume)
            self.env.schedule(poke)
        else:
            next_event.callbacks.append(self._resume)


class AllOf(Event):
    """Succeeds when every constituent event has succeeded.

    Already-processed constituents count immediately; a failed constituent
    fails the combinator with the same exception.
    """

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        self._pending = 0
        for event in self._events:
            if event.env is not self.env:
                raise SimulationError("condition spans two environments")
        for event in self._events:
            if event._processed:
                if not event.ok and not self.triggered:
                    self.fail(event.value)
            else:
                self._pending += 1
                event.callbacks.append(self._on_event)
        if not self.triggered and self._pending == 0:
            self.succeed([e.value for e in self._events])

    def _on_event(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([e.value for e in self._events])


class AnyOf(Event):
    """Succeeds as soon as any constituent event succeeds.

    An empty event list succeeds immediately with ``None``.
    """

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        for event in self._events:
            if event.env is not self.env:
                raise SimulationError("condition spans two environments")
        if not self._events:
            self.succeed(None)
            return
        for event in self._events:
            if self.triggered:
                break
            if event._processed:
                if event.ok:
                    self.succeed(event.value)
                else:
                    self.fail(event.value)
            else:
                event.callbacks.append(self._on_event)

    def _on_event(self, event: Event) -> None:
        if self.triggered:
            return
        if event.ok:
            self.succeed(event.value)
        else:
            self.fail(event.value)
