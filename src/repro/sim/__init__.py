"""Discrete-event simulation kernel.

A small, deterministic, generator-based engine in the style of SimPy:

* :class:`~repro.sim.engine.Environment` owns the virtual clock and the
  event heap.
* Processes are plain Python generators that ``yield`` events
  (:class:`~repro.sim.events.Timeout`, other processes, ``AllOf``/``AnyOf``
  combinators, or bare :class:`~repro.sim.events.Event` instances).
* :class:`~repro.sim.resources.Resource` provides FIFO mutual exclusion used
  to model GPU execution engines, DMA copy engines and interconnect links.

The engine is intentionally minimal -- no real time, no threads -- so runs
are exactly reproducible.
"""

from repro.sim.engine import Environment
from repro.sim.events import AllOf, AnyOf, Event, Interrupt, Process, Timeout
from repro.sim.resources import Resource

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "Resource",
    "Timeout",
]
