"""Batch-size tuning under the GPU memory cap (paper Sections V-A/V-D).

The paper's twin findings -- "increasing batch size reduces training time
almost linearly" and "GPU memory limits the maximum batch" -- imply a
simple tuning procedure: sweep power-of-two batches up to the memory
limit and take the throughput knee.  (Following the paper, accuracy is
not treated as a limiting factor for batch growth.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.config import CommMethodName, SimulationConfig, TrainingConfig
from repro.core.errors import OutOfMemoryError
from repro.experiments.tables import render_table
from repro.runner import OomPolicy, SweepRunner, SweepSpec


@dataclass(frozen=True)
class BatchPoint:
    """One trainable batch size and its throughput/memory readings."""

    batch_size: int
    epoch_time: float
    images_per_second: float
    gpu0_memory_gb: float


@dataclass(frozen=True)
class BatchTuneResult:
    """The batch-size scan for one workload, with the OOM wall."""

    network: str
    comm_method: str
    num_gpus: int
    points: Tuple[BatchPoint, ...]
    oom_batch: Optional[int]            # first power-of-two batch that OOMed

    @property
    def best(self) -> BatchPoint:
        """The highest-throughput point that fits."""
        return max(self.points, key=lambda p: p.images_per_second)

    def gain_over(self, batch_size: int) -> float:
        """Throughput gain of the best point over a reference batch."""
        ref = next(p for p in self.points if p.batch_size == batch_size)
        return self.best.images_per_second / ref.images_per_second


def sweep_spec(
    network: str,
    num_gpus: int = 8,
    comm_method: CommMethodName = CommMethodName.NCCL,
    start_batch: int = 16,
    limit: int = 1024,
) -> SweepSpec:
    """Every power-of-two batch up to ``limit``; OOM points are recorded.

    Memory use grows monotonically with batch size, so the curve is the
    prefix of successful points up to the first recorded OOM.
    """
    batches = []
    batch = start_batch
    while batch <= limit:
        batches.append(batch)
        batch *= 2
    return SweepSpec.grid(
        f"tune-{network}",
        networks=(network,),
        batch_sizes=tuple(batches),
        gpu_counts=(num_gpus,),
        comm_methods=(comm_method,),
        oom_policy=OomPolicy.RECORD,
    )


def tune_batch_size(
    network: str,
    num_gpus: int = 8,
    comm_method: CommMethodName = CommMethodName.NCCL,
    start_batch: int = 16,
    limit: int = 1024,
    sim: Optional[SimulationConfig] = None,
    runner: Optional[SweepRunner] = None,
) -> BatchTuneResult:
    """Sweep power-of-two batches until OOM; return the curve and winner."""
    if runner is None:
        runner = SweepRunner(sim=sim or SimulationConfig())
    results = runner.run(
        sweep_spec(network, num_gpus, comm_method, start_batch, limit)
    )
    points: List[BatchPoint] = []
    oom_batch: Optional[int] = None
    for outcome in results:
        if outcome.oom is not None:
            oom_batch = outcome.point.config.batch_size
            break
        result = outcome.result
        gpu0 = next(
            m for m in result.memory if m.phase == "training" and m.gpu == 0
        )
        points.append(
            BatchPoint(
                batch_size=outcome.point.config.batch_size,
                epoch_time=result.epoch_time,
                images_per_second=result.images_per_second,
                gpu0_memory_gb=gpu0.total_gb,
            )
        )
    if not points:
        raise OutOfMemoryError("tuner", 0, 0)
    return BatchTuneResult(
        network=network,
        comm_method=comm_method.value,
        num_gpus=num_gpus,
        points=tuple(points),
        oom_batch=oom_batch,
    )


def render(result: BatchTuneResult) -> str:
    rows = [
        (
            p.batch_size,
            f"{p.epoch_time:.2f}",
            f"{p.images_per_second:.0f}",
            f"{p.gpu0_memory_gb:.2f}",
            "<-- best" if p == result.best else "",
        )
        for p in result.points
    ]
    table = render_table(
        ["Batch/GPU", "Epoch (s)", "img/s", "GPU0 mem (GB)", ""],
        rows,
        title=(
            f"Batch tuning: {result.network}, {result.num_gpus} GPUs, "
            f"{result.comm_method}"
        ),
    )
    if result.oom_batch is not None:
        table += f"batch {result.oom_batch}: out of memory\n"
    return table
