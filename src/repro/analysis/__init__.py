"""Post-processing analyses over training results.

:mod:`repro.analysis.scaling` fits and summarizes scaling behaviour
(speedup, efficiency, Amdahl/Karp-Flatt serial fractions);
:mod:`repro.analysis.crossover` locates the model-shape boundary where
NCCL overtakes P2P (generalizing the paper's five data points);
:mod:`repro.analysis.protocols` tabulates the NCCL algorithm/protocol
auto-tuner's per-message-size selections and regime crossovers;
:mod:`repro.analysis.serialization` persists results as JSON for external
plotting.
"""

from repro.analysis.batch_tuner import BatchTuneResult, tune_batch_size
from repro.analysis.crossover import CrossoverStudy, synthetic_conv_network
from repro.analysis.protocols import (
    CrossoverPoint,
    SelectionRow,
    crossover_table,
    protocol_speedups,
    regime_spans,
    selection_table,
)
from repro.analysis.scaling import (
    ScalingCurve,
    amdahl_serial_fraction,
    karp_flatt,
    scaling_curve,
)
from repro.analysis.serialization import (
    SCHEMA_VERSION,
    SchemaMismatchError,
    async_result_from_dict,
    async_result_to_dict,
    result_from_dict,
    result_to_dict,
)
from repro.analysis.validation import PAPER_ANCHORS, PaperAnchor, ValidationReport, validate

__all__ = [
    "BatchTuneResult",
    "CrossoverPoint",
    "CrossoverStudy",
    "PAPER_ANCHORS",
    "PaperAnchor",
    "SCHEMA_VERSION",
    "SchemaMismatchError",
    "SelectionRow",
    "ValidationReport",
    "ScalingCurve",
    "amdahl_serial_fraction",
    "async_result_from_dict",
    "async_result_to_dict",
    "crossover_table",
    "karp_flatt",
    "protocol_speedups",
    "regime_spans",
    "result_from_dict",
    "result_to_dict",
    "scaling_curve",
    "selection_table",
    "synthetic_conv_network",
    "tune_batch_size",
    "validate",
]
