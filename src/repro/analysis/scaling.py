"""Scaling-law summaries of multi-GPU training results.

These are the standard parallel-performance metrics applied to the
simulator's output: speedup and efficiency per GPU count, Amdahl-law
serial-fraction fits, and the Karp-Flatt experimentally determined serial
fraction -- the quantity that makes the paper's "LeNet cannot amortize its
overheads" observation precise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.core.errors import ConfigurationError
from repro.train.results import TrainingResult


@dataclass(frozen=True)
class ScalingCurve:
    """Speedup/efficiency across GPU counts for one configuration."""

    network: str
    comm_method: str
    batch_size: int
    gpu_counts: Tuple[int, ...]
    epoch_times: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.gpu_counts) != len(self.epoch_times):
            raise ConfigurationError("gpu_counts and epoch_times must align")
        if not self.gpu_counts or self.gpu_counts[0] != 1:
            raise ConfigurationError("a scaling curve starts at 1 GPU")

    def speedup(self, gpus: int) -> float:
        idx = self.gpu_counts.index(gpus)
        return self.epoch_times[0] / self.epoch_times[idx]

    def efficiency(self, gpus: int) -> float:
        """Parallel efficiency: speedup / GPU count."""
        return self.speedup(gpus) / gpus

    @property
    def speedups(self) -> Tuple[float, ...]:
        return tuple(self.speedup(g) for g in self.gpu_counts)

    @property
    def efficiencies(self) -> Tuple[float, ...]:
        return tuple(self.efficiency(g) for g in self.gpu_counts)

    def serial_fraction(self) -> float:
        """Amdahl serial fraction fitted over all multi-GPU points."""
        fractions = [
            karp_flatt(self.speedup(g), g) for g in self.gpu_counts if g > 1
        ]
        return sum(fractions) / len(fractions) if fractions else 0.0


def scaling_curve(results: Sequence[TrainingResult]) -> ScalingCurve:
    """Build a :class:`ScalingCurve` from runs of one config at many GPU counts."""
    if not results:
        raise ConfigurationError("need at least one result")
    tags = {
        (r.config.network, r.config.comm_method.value, r.config.batch_size)
        for r in results
    }
    if len(tags) != 1:
        raise ConfigurationError(
            f"results span multiple configurations: {sorted(tags)}"
        )
    ordered = sorted(results, key=lambda r: r.config.num_gpus)
    network, method, batch = next(iter(tags))
    return ScalingCurve(
        network=network,
        comm_method=method,
        batch_size=batch,
        gpu_counts=tuple(r.config.num_gpus for r in ordered),
        epoch_times=tuple(r.epoch_time for r in ordered),
    )


def karp_flatt(speedup: float, gpus: int) -> float:
    """Karp-Flatt experimentally determined serial fraction.

    ``e = (1/S - 1/N) / (1 - 1/N)`` -- 0 for perfect scaling, 1 for none.
    Values can exceed these bounds for superlinear or sub-1x speedups;
    they are clamped to keep downstream summaries sane.
    """
    if gpus <= 1:
        raise ConfigurationError("Karp-Flatt needs more than one GPU")
    if speedup <= 0:
        raise ConfigurationError("speedup must be positive")
    e = (1.0 / speedup - 1.0 / gpus) / (1.0 - 1.0 / gpus)
    return min(1.0, max(0.0, e))


def amdahl_serial_fraction(speedup: float, gpus: int) -> float:
    """Alias of :func:`karp_flatt` under its textbook name."""
    return karp_flatt(speedup, gpus)


def compare_efficiency(curves: Sequence[ScalingCurve], gpus: int) -> Dict[str, float]:
    """Parallel efficiency of several configurations at one GPU count."""
    return {
        f"{c.network}/{c.comm_method}/b{c.batch_size}": c.efficiency(gpus)
        for c in curves
    }
