"""Where does NCCL overtake P2P?  A synthetic-network crossover study.

The paper observes the crossover with five fixed networks: P2P wins for
LeNet/AlexNet (few weight arrays), NCCL wins for the layer-rich trio at 4
and 8 GPUs.  This module generalizes the observation: it sweeps a family
of synthetic convolutional networks whose *depth* (and therefore weight-
array count) varies while other knobs stay fixed, and locates the depth at
which NCCL's pipelined collectives overtake P2P's per-array tree
transfers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.config import CommMethodName, SimulationConfig, TrainingConfig
from repro.dnn.builder import NetworkBuilder
from repro.dnn.network import Network
from repro.dnn.shapes import Shape
from repro.runner import SweepPoint, SweepRunner, SweepSpec

#: Input resolution of the synthetic family.
SYNTHETIC_INPUT = Shape(3, 64, 64)


def synthetic_conv_network(depth: int, width: int = 64) -> Network:
    """A plain conv stack of ``depth`` 3x3 layers plus a classifier.

    Every conv carries batch norm, so each extra layer adds three weight
    arrays (weight, gamma, beta) -- the communication keys whose count
    drives the P2P-vs-NCCL crossover.
    """
    if depth < 1:
        raise ValueError("depth must be at least 1")
    b = NetworkBuilder(f"synth-d{depth}-w{width}")
    b.conv(width, 3, stride=2, pad=1, bn=True, name="stem")
    for i in range(depth - 1):
        b.conv(width, 3, pad=1, bn=True, name=f"conv{i + 2}")
    b.global_avgpool()
    b.dense(1000, name="fc")
    b.softmax()
    return b.build()


@dataclass(frozen=True)
class CrossoverPoint:
    """One synthetic network depth: P2P vs NCCL epoch times."""

    depth: int
    weight_arrays: int
    p2p_epoch: float
    nccl_epoch: float

    @property
    def nccl_advantage(self) -> float:
        return self.p2p_epoch / self.nccl_epoch


@dataclass(frozen=True)
class CrossoverStudyResult:
    """The depth sweep locating where NCCL overtakes P2P."""

    num_gpus: int
    batch_size: int
    points: Tuple[CrossoverPoint, ...]

    @property
    def crossover_depth(self) -> Optional[int]:
        """The first depth at which NCCL wins, or ``None`` if it never does."""
        for point in self.points:
            if point.nccl_advantage > 1.0:
                return point.depth
        return None


class CrossoverStudy:
    """Runs the synthetic sweep and locates the crossover."""

    def __init__(
        self,
        num_gpus: int = 8,
        batch_size: int = 16,
        sim: Optional[SimulationConfig] = None,
        runner: Optional[SweepRunner] = None,
    ) -> None:
        self.num_gpus = num_gpus
        self.batch_size = batch_size
        if runner is None:
            runner = SweepRunner(sim=sim or SimulationConfig())
        self.runner = runner

    def sweep_spec(
        self, depths: Tuple[int, ...] = (2, 4, 8, 16, 32, 64)
    ) -> SweepSpec:
        """P2P and NCCL points for each synthetic depth."""
        points: List[SweepPoint] = []
        for depth in depths:
            network = synthetic_conv_network(depth)
            for method in (CommMethodName.P2P, CommMethodName.NCCL):
                points.append(
                    SweepPoint.make(
                        TrainingConfig(
                            network.name, self.batch_size, self.num_gpus,
                            comm_method=method, custom_network=True,
                        ),
                        overrides={
                            "network": network,
                            "input_shape": SYNTHETIC_INPUT,
                            "check_memory": False,
                        },
                        tags={"depth": depth},
                    )
                )
        return SweepSpec.explicit("crossover", points)

    def run(self, depths: Tuple[int, ...] = (2, 4, 8, 16, 32, 64)) -> CrossoverStudyResult:
        from repro.dnn import compile_network

        results = self.runner.run(self.sweep_spec(depths))
        points: List[CrossoverPoint] = []
        for depth in depths:
            stats = compile_network(synthetic_conv_network(depth), SYNTHETIC_INPUT)
            points.append(
                CrossoverPoint(
                    depth=depth,
                    weight_arrays=len(stats.weight_arrays),
                    p2p_epoch=results.result(
                        depth=depth, comm_method=CommMethodName.P2P
                    ).epoch_time,
                    nccl_epoch=results.result(
                        depth=depth, comm_method=CommMethodName.NCCL
                    ).epoch_time,
                )
            )
        return CrossoverStudyResult(
            num_gpus=self.num_gpus, batch_size=self.batch_size, points=tuple(points)
        )
