"""NCCL algorithm/protocol selection analysis.

Thin, presentation-oriented wrappers over
:class:`~repro.comm.nccl.tuning.NcclTuner`: a per-size selection table
(every candidate's predicted time plus the winner) and a crossover
summary (the sizes at which the winning regime changes).  These are what
:mod:`repro.experiments.nccl_ablation` renders; they are exposed here so
notebooks and scripts can build the same tables without running a sweep.

>>> from repro.analysis.protocols import selection_table
>>> rows = selection_table(sizes=[4096, 64 * 1024 * 1024])
>>> [(r.nbytes, r.algorithm, r.protocol) for r in rows]
[(4096, 'tree', 'll'), (67108864, 'ring', 'simple')]
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.comm.nccl.tuning import NcclTuner, crossover_sizes


def default_sizes(lo_pow: int = 10, hi_pow: int = 28) -> List[int]:
    """Powers of two from ``2**lo_pow`` to ``2**hi_pow`` inclusive."""
    return [2 ** p for p in range(lo_pow, hi_pow + 1)]


@dataclass(frozen=True)
class SelectionRow:
    """One message size: the winning combo plus every candidate's cost."""

    nbytes: int
    algorithm: str
    protocol: str
    predicted: float
    #: predicted seconds per eligible ("algorithm", "protocol") combo
    candidates: Tuple[Tuple[str, str, float], ...]

    def candidate_time(self, algorithm: str, protocol: str) -> Optional[float]:
        """Predicted time of one combo, or ``None`` if ineligible."""
        for alg, proto, predicted in self.candidates:
            if (alg, proto) == (algorithm, protocol):
                return predicted
        return None


def selection_table(
    tuner: Optional[NcclTuner] = None,
    collective: str = "allreduce",
    sizes: Optional[Sequence[int]] = None,
) -> List[SelectionRow]:
    """The tuner's full decision table over ``sizes``.

    Defaults to an 8-GPU DGX-1V tuner in full-auto mode and the
    :func:`default_sizes` scan.
    """
    tuner = tuner if tuner is not None else NcclTuner.for_dgx1()
    sizes = list(sizes) if sizes is not None else default_sizes()
    rows: List[SelectionRow] = []
    for size in sizes:
        choice = tuner.select(collective, size)
        rows.append(SelectionRow(
            nbytes=size,
            algorithm=choice.algorithm.value,
            protocol=choice.protocol.value,
            predicted=choice.predicted,
            candidates=tuple(
                (alg.value, proto.value, predicted)
                for alg, proto, predicted in tuner.candidates(collective, size)
            ),
        ))
    return rows


@dataclass(frozen=True)
class CrossoverPoint:
    """First message size at which a new (algorithm, protocol) regime wins."""

    nbytes: int
    algorithm: str
    protocol: str
    predicted: float


def crossover_table(
    tuner: Optional[NcclTuner] = None,
    collective: str = "allreduce",
    sizes: Optional[Sequence[int]] = None,
) -> List[CrossoverPoint]:
    """The regime-change summary of :func:`selection_table`."""
    tuner = tuner if tuner is not None else NcclTuner.for_dgx1()
    return [
        CrossoverPoint(
            nbytes=size,
            algorithm=choice.algorithm.value,
            protocol=choice.protocol.value,
            predicted=choice.predicted,
        )
        for size, choice in crossover_sizes(tuner, collective, sizes)
    ]


def regime_spans(
    points: Sequence[CrossoverPoint], last_size: int
) -> List[Tuple[str, str, int, int]]:
    """Collapse crossover points into ``(algorithm, protocol, lo, hi)``
    inclusive size spans, ``hi`` of the final regime being ``last_size``."""
    spans: List[Tuple[str, str, int, int]] = []
    for i, point in enumerate(points):
        hi = points[i + 1].nbytes // 2 if i + 1 < len(points) else last_size
        spans.append((point.algorithm, point.protocol, point.nbytes, hi))
    return spans


def protocol_speedups(
    rows: Sequence[SelectionRow],
    baseline: Tuple[str, str] = ("ring", "simple"),
) -> Dict[int, float]:
    """Winner's speedup over a fixed baseline combo, per message size.

    Sizes where the baseline is ineligible are skipped.  With the default
    ring+Simple baseline this quantifies what the paper's fixed-algorithm
    NCCL measurement left on the table at small message sizes.
    """
    out: Dict[int, float] = {}
    for row in rows:
        base = row.candidate_time(*baseline)
        if base is not None and row.predicted > 0.0:
            out[row.nbytes] = base / row.predicted
    return out
