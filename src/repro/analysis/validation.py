"""Machine-checkable paper anchors.

Every quantitative claim the reproduction targets is encoded here as a
:class:`PaperAnchor` with its source in the paper, the expected value or
ordering, and a tolerance.  ``validate()`` evaluates all of them against a
:class:`~repro.runner.SweepRunner` and renders a verdict table -- the
programmatic counterpart of EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.config import CommMethodName, ScalingMode, TrainingConfig
from repro.dnn import build_network, compile_network, network_input_shape
from repro.experiments.tables import render_table
from repro.gpu import MemoryModel
from repro.runner import SweepPoint, SweepRunner, SweepSpec

#: Backwards-compatible alias (anchors were written against ``RunCache``).
RunCache = SweepRunner

P2P, NCCL = CommMethodName.P2P, CommMethodName.NCCL


@dataclass(frozen=True)
class PaperAnchor:
    """One claim from the paper, evaluated against simulation."""

    anchor_id: str
    source: str                      # e.g. "Fig.3 / Sec.V-A"
    description: str
    measure: Callable[[RunCache], float]
    expected: Optional[float] = None  # None for ordering-only anchors
    rel_tol: float = 0.15
    #: For ordering anchors: measured value must be positive.
    ordering: bool = False


@dataclass(frozen=True)
class AnchorVerdict:
    """One paper anchor's measured value and pass/fail verdict."""

    anchor: PaperAnchor
    measured: float

    @property
    def passed(self) -> bool:
        if self.anchor.ordering:
            return self.measured > 0
        assert self.anchor.expected is not None
        return abs(self.measured - self.anchor.expected) <= (
            self.anchor.rel_tol * abs(self.anchor.expected)
        )


@dataclass(frozen=True)
class ValidationReport:
    """All anchor verdicts from one validation run."""

    verdicts: Tuple[AnchorVerdict, ...]

    @property
    def passed(self) -> int:
        return sum(1 for v in self.verdicts if v.passed)

    @property
    def total(self) -> int:
        return len(self.verdicts)

    @property
    def all_passed(self) -> bool:
        return self.passed == self.total


def _speedup(cache: RunCache, net, batch, gpus, method,
             scaling=ScalingMode.STRONG) -> float:
    base = cache.get(net, batch, 1, method, scaling)
    return cache.get(net, batch, gpus, method, scaling).speedup_over(base)


def _advantage(cache: RunCache, net, gpus) -> float:
    p2p = cache.get(net, 16, gpus, P2P)
    nccl = cache.get(net, 16, gpus, NCCL)
    return p2p.epoch_time / nccl.epoch_time


def _t2_overhead(cache: RunCache, net, batch) -> float:
    p2p = cache.get(net, batch, 1, P2P)
    nccl = cache.get(net, batch, 1, NCCL)
    return 100.0 * (nccl.epoch_time / p2p.epoch_time - 1.0)


def _memory_gb(net: str, batch: int) -> float:
    stats = compile_network(build_network(net), network_input_shape(net))
    return MemoryModel().training(stats, batch, is_server=True).total_gb


PAPER_ANCHORS: Tuple[PaperAnchor, ...] = (
    PaperAnchor("f3-lenet-p2p-2", "Fig.3/Sec.V-A", "LeNet b16 P2P speedup @2 GPUs",
                lambda c: _speedup(c, "lenet", 16, 2, P2P), expected=1.62),
    PaperAnchor("f3-lenet-p2p-4", "Fig.3/Sec.V-A", "LeNet b16 P2P speedup @4 GPUs",
                lambda c: _speedup(c, "lenet", 16, 4, P2P), expected=2.37),
    PaperAnchor("f3-lenet-p2p-8", "Fig.3/Sec.V-A", "LeNet b16 P2P speedup @8 GPUs",
                lambda c: _speedup(c, "lenet", 16, 8, P2P), expected=3.36),
    PaperAnchor("f3-lenet-nccl-2", "Fig.3/Sec.V-A", "LeNet b16 NCCL speedup @2 GPUs",
                lambda c: _speedup(c, "lenet", 16, 2, NCCL), expected=1.56),
    PaperAnchor("f3-lenet-nccl-4", "Fig.3/Sec.V-A", "LeNet b16 NCCL speedup @4 GPUs",
                lambda c: _speedup(c, "lenet", 16, 4, NCCL), expected=2.27),
    PaperAnchor("f3-lenet-nccl-8", "Fig.3/Sec.V-A", "LeNet b16 NCCL speedup @8 GPUs",
                lambda c: _speedup(c, "lenet", 16, 8, NCCL), expected=2.77),
    PaperAnchor("f3-batch-32", "Sec.V-A", "LeNet g4 P2P epoch gain b16->b32",
                lambda c: (c.get("lenet", 16, 4, P2P).epoch_time
                           / c.get("lenet", 32, 4, P2P).epoch_time),
                expected=1.92, rel_tol=0.1),
    PaperAnchor("f3-batch-64", "Sec.V-A", "LeNet g4 P2P epoch gain b16->b64",
                lambda c: (c.get("lenet", 16, 4, P2P).epoch_time
                           / c.get("lenet", 64, 4, P2P).epoch_time),
                expected=3.67, rel_tol=0.12),
    PaperAnchor("f3-small-nets-p2p", "Sec.V-A",
                "P2P beats NCCL for LeNet & AlexNet @8 GPUs (margin > 0)",
                lambda c: min(
                    c.get(n, 16, 8, NCCL).epoch_time - c.get(n, 16, 8, P2P).epoch_time
                    for n in ("lenet", "alexnet")
                ), ordering=True),
    PaperAnchor("f3-googlenet-adv-8", "Sec.V-A",
                "NCCL advantage for GoogLeNet @8 GPUs",
                lambda c: _advantage(c, "googlenet", 8), expected=1.2, rel_tol=0.1),
    PaperAnchor("f3-inception-adv-8", "Sec.V-A",
                "NCCL advantage for Inception-v3 @8 GPUs",
                lambda c: _advantage(c, "inception-v3", 8), expected=1.25,
                rel_tol=0.12),
    PaperAnchor("t2-lenet-16", "Table II", "LeNet b16 single-GPU NCCL overhead (%)",
                lambda c: _t2_overhead(c, "lenet", 16), expected=21.8, rel_tol=0.25),
    PaperAnchor("t2-lenet-rising", "Table II",
                "LeNet NCCL overhead rises with batch (b64 - b16 > 0)",
                lambda c: _t2_overhead(c, "lenet", 64) - _t2_overhead(c, "lenet", 16),
                ordering=True),
    PaperAnchor("f4-inception-linear", "Sec.V-C",
                "Inception-v3 FP+BP per-epoch ratio 2->8 GPUs (ideal 4.0)",
                lambda c: (c.get("inception-v3", 16, 2, NCCL).epoch_fp_bp_time
                           / c.get("inception-v3", 16, 8, NCCL).epoch_fp_bp_time),
                expected=4.0, rel_tol=0.15),
    PaperAnchor("f4-lenet-nonlinear", "Sec.V-C",
                "LeNet FP+BP sub-linearity margin (3.5 - ratio > 0)",
                lambda c: 3.5 - (c.get("lenet", 16, 2, NCCL).epoch_fp_bp_time
                                 / c.get("lenet", 16, 8, NCCL).epoch_fp_bp_time),
                ordering=True),
    PaperAnchor("t4-alexnet-64", "Table IV/Sec.V-D",
                "AlexNet b64 GPU0 training memory (GB)",
                lambda c: _memory_gb("alexnet", 64), expected=2.37, rel_tol=0.08),
    PaperAnchor("t4-inception-64", "Table IV/Sec.V-D",
                "Inception-v3 b64 GPU0 training memory (GB)",
                lambda c: _memory_gb("inception-v3", 64), expected=11.0,
                rel_tol=0.15),
    PaperAnchor("f5-weak-lenet", "Fig.5/Sec.V-E",
                "LeNet weak-over-strong speedup margin @8 GPUs (> 0)",
                lambda c: (_speedup(c, "lenet", 16, 8, NCCL, ScalingMode.WEAK)
                           - _speedup(c, "lenet", 16, 8, NCCL)),
                ordering=True),
    PaperAnchor("f5-weak-bounded", "Sec.V-E",
                "Inception weak/strong gain below 17% (0.17 - gain > 0)",
                lambda c: 0.17 - (
                    _speedup(c, "inception-v3", 16, 8, NCCL, ScalingMode.WEAK)
                    / _speedup(c, "inception-v3", 16, 8, NCCL) - 1.0
                ),
                ordering=True),
)


#: Every (network, batch, gpus, method, scaling) the default anchors read.
_ANCHOR_CELLS: Tuple[Tuple[str, int, int, CommMethodName, ScalingMode], ...] = (
    tuple(
        ("lenet", 16, g, m, ScalingMode.STRONG)
        for m in (P2P, NCCL) for g in (1, 2, 4, 8)
    )
    + (
        ("lenet", 32, 4, P2P, ScalingMode.STRONG),
        ("lenet", 64, 4, P2P, ScalingMode.STRONG),
        ("lenet", 64, 1, P2P, ScalingMode.STRONG),
        ("lenet", 64, 1, NCCL, ScalingMode.STRONG),
        ("alexnet", 16, 8, P2P, ScalingMode.STRONG),
        ("alexnet", 16, 8, NCCL, ScalingMode.STRONG),
        ("googlenet", 16, 8, P2P, ScalingMode.STRONG),
        ("googlenet", 16, 8, NCCL, ScalingMode.STRONG),
        ("inception-v3", 16, 8, P2P, ScalingMode.STRONG),
        ("inception-v3", 16, 8, NCCL, ScalingMode.STRONG),
        ("inception-v3", 16, 1, NCCL, ScalingMode.STRONG),
        ("inception-v3", 16, 2, NCCL, ScalingMode.STRONG),
        ("lenet", 16, 1, NCCL, ScalingMode.WEAK),
        ("lenet", 16, 8, NCCL, ScalingMode.WEAK),
        ("inception-v3", 16, 1, NCCL, ScalingMode.WEAK),
        ("inception-v3", 16, 8, NCCL, ScalingMode.WEAK),
    )
)


def anchor_sweep_spec() -> SweepSpec:
    """All simulations the default anchor set reads, as one spec.

    Running this spec up front lets a parallel runner fan the anchor
    workload out before the (serial, memo-hitting) ``measure`` lambdas
    evaluate.
    """
    return SweepSpec.explicit(
        "anchors",
        [
            SweepPoint(config=TrainingConfig(
                network=net, batch_size=batch, num_gpus=gpus,
                comm_method=method, scaling=scaling,
            ))
            for net, batch, gpus, method, scaling in _ANCHOR_CELLS
        ],
    )


def validate(
    cache: Optional[SweepRunner] = None,
    anchors: Sequence[PaperAnchor] = PAPER_ANCHORS,
    prewarm: bool = True,
) -> ValidationReport:
    """Evaluate every anchor; OOM or model errors propagate loudly.

    With ``prewarm`` (the default) the full default-anchor sweep is
    executed through the runner first, so ``--jobs N`` parallelism and the
    persistent cache both apply; the measures then answer from the memo.
    """
    cache = cache if cache is not None else SweepRunner()
    if prewarm and anchors is PAPER_ANCHORS:
        cache.run(anchor_sweep_spec())
    verdicts = [
        AnchorVerdict(anchor=a, measured=a.measure(cache)) for a in anchors
    ]
    return ValidationReport(verdicts=tuple(verdicts))


def render(report: ValidationReport) -> str:
    rows = []
    for v in report.verdicts:
        a = v.anchor
        expected = "ordering" if a.ordering else f"{a.expected:g} ±{a.rel_tol:.0%}"
        rows.append(
            (
                a.anchor_id,
                a.source,
                a.description,
                expected,
                f"{v.measured:.3f}",
                "PASS" if v.passed else "FAIL",
            )
        )
    table = render_table(
        ["Anchor", "Source", "Claim", "Expected", "Measured", "Verdict"],
        rows,
        title="Paper-anchor validation",
        align_right_from=3,
    )
    return table + f"\n{report.passed}/{report.total} anchors passed\n"
