"""JSON serialization of training results.

Sweeps are cheap to re-run but expensive to re-plot; these helpers round-
trip :class:`~repro.train.results.TrainingResult` (minus the raw profiler,
which has its own Chrome-trace exporter) through plain dicts suitable for
``json.dump``.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.core.config import CommMethodName, ScalingMode, TrainingConfig
from repro.gpu.memory import MemoryUsage
from repro.profile.smi import MemoryReading
from repro.profile.summary import ApiSummary, StageBreakdown
from repro.train.results import TrainingResult

#: Schema version stamped into every exported dict.
SCHEMA_VERSION = 1


def result_to_dict(result: TrainingResult) -> Dict[str, Any]:
    """A JSON-serializable representation of ``result``."""
    c = result.config
    return {
        "schema": SCHEMA_VERSION,
        "config": {
            "network": c.network,
            "batch_size": c.batch_size,
            "num_gpus": c.num_gpus,
            "comm_method": c.comm_method.value,
            "scaling": c.scaling.value,
            "dataset_images": c.dataset_images,
            "overlap_bp_wu": c.overlap_bp_wu,
        },
        "iteration_time": result.iteration_time,
        "iteration_times": list(result.iteration_times),
        "epoch_time": result.epoch_time,
        "fixed_overhead": result.fixed_overhead,
        "stages": {
            "fp": result.stages.fp,
            "bp": result.stages.bp,
            "wu": result.stages.wu,
            "iteration": result.stages.iteration,
        },
        "apis": [[name, seconds] for name, seconds in result.apis.totals],
        "gpu_busy": {str(g): b for g, b in result.gpu_busy.items()},
        "compute_utilization": result.compute_utilization,
        "memory": [
            {
                "gpu": m.gpu,
                "phase": m.phase,
                "context": m.usage.context,
                "parameters": m.usage.parameters,
                "activations": m.usage.activations,
                "workspace": m.usage.workspace,
                "input_batch": m.usage.input_batch,
                "server_buffers": m.usage.server_buffers,
            }
            for m in result.memory
        ],
    }


def result_from_dict(data: Dict[str, Any]) -> TrainingResult:
    """Rebuild a :class:`TrainingResult` exported by :func:`result_to_dict`."""
    if data.get("schema") != SCHEMA_VERSION:
        raise ValueError(f"unsupported schema {data.get('schema')!r}")
    c = data["config"]
    config = TrainingConfig(
        network=c["network"],
        batch_size=c["batch_size"],
        num_gpus=c["num_gpus"],
        comm_method=CommMethodName(c["comm_method"]),
        scaling=ScalingMode(c["scaling"]),
        dataset_images=c["dataset_images"],
        overlap_bp_wu=c["overlap_bp_wu"],
    )
    stages = StageBreakdown(
        fp=data["stages"]["fp"],
        bp=data["stages"]["bp"],
        wu=data["stages"]["wu"],
        iteration=data["stages"]["iteration"],
    )
    apis = ApiSummary(totals=tuple((n, t) for n, t in data["apis"]))
    memory = tuple(
        MemoryReading(
            gpu=m["gpu"],
            phase=m["phase"],
            usage=MemoryUsage(
                context=m["context"],
                parameters=m["parameters"],
                activations=m["activations"],
                workspace=m["workspace"],
                input_batch=m["input_batch"],
                server_buffers=m["server_buffers"],
            ),
        )
        for m in data["memory"]
    )
    return TrainingResult(
        config=config,
        iteration_time=data["iteration_time"],
        iteration_times=tuple(data["iteration_times"]),
        epoch_time=data["epoch_time"],
        fixed_overhead=data["fixed_overhead"],
        stages=stages,
        apis=apis,
        gpu_busy={int(g): b for g, b in data["gpu_busy"].items()},
        compute_utilization=data["compute_utilization"],
        memory=memory,
        profiler=None,
    )
