"""JSON serialization of training results.

Sweeps are cheap to re-run but expensive to re-plot; these helpers round-
trip :class:`~repro.train.results.TrainingResult` (minus the raw profiler,
which has its own Chrome-trace exporter) and
:class:`~repro.train.async_trainer.AsyncResult` through plain dicts
suitable for ``json.dump``.  The persistent sweep cache
(:mod:`repro.runner.store`) stores exactly these dicts, so
``SCHEMA_VERSION`` doubles as the cache format version: bump it whenever
a field is added, removed or reinterpreted, and loads of mismatched data
are refused with :class:`SchemaMismatchError`.

Schema history
--------------
* 1 -- initial format (config missing ``cluster_nodes``,
  ``fp16_gradients``, ``optimizer``).
* 2 -- full :class:`TrainingConfig` coverage and ``AsyncResult`` support.
* 3 -- optional ``faults`` block (the
  :class:`~repro.faults.recovery.FaultSummary` of a fault-injected run).
* 4 -- ``violations`` list (invariant-violation records from
  :mod:`repro.checks`) and full config coverage (``custom_network``,
  ``nccl_algorithm``, ``nccl_protocol`` -- the tuning fields were
  previously dropped on round-trip).
* 5 -- strategy-registry support: the config ``strategy`` field and the
  optional ``async_stats`` block (staleness accounting when a
  :class:`TrainingResult` came from the ``async-update`` strategy).
* 6 -- cluster-tier support: the config ``cluster_fabric``,
  ``cluster_collective`` and ``cluster_fast_path`` fields (rail-aware
  inter-node fabrics and hierarchical collectives; see
  ``docs/SCALING.md``).
* 7 -- cluster-tier faults: the ``faults`` block gained
  ``crashed_node`` and per-segment ``rails_degraded`` (node crashes
  and NIC/rail degradation; see ``docs/FAULTS.md``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.checks.engine import Violation
from repro.core.config import CommMethodName, ScalingMode, TrainingConfig
from repro.faults.recovery import FaultSummary, SegmentReport
from repro.gpu.memory import MemoryUsage
from repro.profile.smi import MemoryReading
from repro.profile.summary import ApiSummary, StageBreakdown
from repro.train.async_trainer import AsyncResult
from repro.train.results import AsyncStats, TrainingResult

#: Schema version stamped into every exported dict (and hashed into every
#: persistent-cache key).
SCHEMA_VERSION = 7


class SchemaMismatchError(ValueError):
    """An exported dict was written by an incompatible schema version."""

    def __init__(self, found: Any) -> None:
        self.found = found
        super().__init__(
            f"unsupported result schema {found!r}: this library reads and "
            f"writes schema {SCHEMA_VERSION}; re-export the result (or clear "
            f"the sweep cache) with the current library version"
        )


def _check_schema(data: Dict[str, Any]) -> None:
    if data.get("schema") != SCHEMA_VERSION:
        raise SchemaMismatchError(data.get("schema"))


def _config_to_dict(c: TrainingConfig) -> Dict[str, Any]:
    return {
        "network": c.network,
        "batch_size": c.batch_size,
        "num_gpus": c.num_gpus,
        "comm_method": c.comm_method.value,
        "scaling": c.scaling.value,
        "dataset_images": c.dataset_images,
        "overlap_bp_wu": c.overlap_bp_wu,
        "cluster_nodes": c.cluster_nodes,
        "fp16_gradients": c.fp16_gradients,
        "optimizer": c.optimizer,
        "nccl_algorithm": c.nccl_algorithm,
        "nccl_protocol": c.nccl_protocol,
        "custom_network": c.custom_network,
        "strategy": c.strategy,
        "cluster_fabric": c.cluster_fabric,
        "cluster_collective": c.cluster_collective,
        "cluster_fast_path": c.cluster_fast_path,
    }


def _config_from_dict(c: Dict[str, Any]) -> TrainingConfig:
    return TrainingConfig(
        network=c["network"],
        batch_size=c["batch_size"],
        num_gpus=c["num_gpus"],
        comm_method=CommMethodName(c["comm_method"]),
        scaling=ScalingMode(c["scaling"]),
        dataset_images=c["dataset_images"],
        overlap_bp_wu=c["overlap_bp_wu"],
        cluster_nodes=c["cluster_nodes"],
        fp16_gradients=c["fp16_gradients"],
        optimizer=c["optimizer"],
        nccl_algorithm=c["nccl_algorithm"],
        nccl_protocol=c["nccl_protocol"],
        custom_network=c["custom_network"],
        strategy=c["strategy"],
        cluster_fabric=c["cluster_fabric"],
        cluster_collective=c["cluster_collective"],
        cluster_fast_path=c["cluster_fast_path"],
    )


def _violations_to_list(violations: Tuple[Violation, ...]) -> List[Dict[str, Any]]:
    return [
        {
            "invariant": v.invariant,
            "checkpoint": v.checkpoint,
            "message": v.message,
            "at": v.at,
        }
        for v in violations
    ]


def _violations_from_list(data: List[Dict[str, Any]]) -> Tuple[Violation, ...]:
    return tuple(
        Violation(
            invariant=v["invariant"],
            checkpoint=v["checkpoint"],
            message=v["message"],
            at=v["at"],
        )
        for v in data
    )


def _faults_to_dict(summary: Optional[FaultSummary]) -> Optional[Dict[str, Any]]:
    if summary is None:
        return None
    return {
        "policy": summary.policy,
        "segments": [
            {
                "index": s.index,
                "start_time": s.start_time,
                "start_iteration": s.start_iteration,
                "iterations": s.iterations,
                "mean_iteration": s.mean_iteration,
                "active": list(s.active),
                "ring_bandwidth": s.ring_bandwidth,
                "ring_uses_pcie": s.ring_uses_pcie,
                "gpus": s.gpus,
                "rails_degraded": s.rails_degraded,
            }
            for s in summary.segments
        ],
        "transition_cost": summary.transition_cost,
        "recovery_cost": summary.recovery_cost,
        "checkpoint_cost": summary.checkpoint_cost,
        "healthy_iteration": summary.healthy_iteration,
        "crashed_gpu": summary.crashed_gpu,
        "crash_iteration": summary.crash_iteration,
        "replayed_iterations": summary.replayed_iterations,
        "survivors": summary.survivors,
        "crashed_node": summary.crashed_node,
    }


def _faults_from_dict(data: Optional[Dict[str, Any]]) -> Optional[FaultSummary]:
    if data is None:
        return None
    return FaultSummary(
        policy=data["policy"],
        segments=tuple(
            SegmentReport(
                index=s["index"],
                start_time=s["start_time"],
                start_iteration=s["start_iteration"],
                iterations=s["iterations"],
                mean_iteration=s["mean_iteration"],
                active=tuple(s["active"]),
                ring_bandwidth=s["ring_bandwidth"],
                ring_uses_pcie=s["ring_uses_pcie"],
                gpus=s["gpus"],
                rails_degraded=s["rails_degraded"],
            )
            for s in data["segments"]
        ),
        transition_cost=data["transition_cost"],
        recovery_cost=data["recovery_cost"],
        checkpoint_cost=data["checkpoint_cost"],
        healthy_iteration=data["healthy_iteration"],
        crashed_gpu=data["crashed_gpu"],
        crash_iteration=data["crash_iteration"],
        replayed_iterations=data["replayed_iterations"],
        survivors=data["survivors"],
        crashed_node=data["crashed_node"],
    )


def _async_stats_to_dict(stats: Optional[AsyncStats]) -> Optional[Dict[str, Any]]:
    if stats is None:
        return None
    return {
        "staleness_mean": stats.staleness_mean,
        "staleness_max": stats.staleness_max,
        "staleness_samples": list(stats.staleness_samples),
        "server_updates": stats.server_updates,
    }


def _async_stats_from_dict(data: Optional[Dict[str, Any]]) -> Optional[AsyncStats]:
    if data is None:
        return None
    return AsyncStats(
        staleness_mean=data["staleness_mean"],
        staleness_max=data["staleness_max"],
        staleness_samples=tuple(data["staleness_samples"]),
        server_updates=data["server_updates"],
    )


def result_to_dict(result: TrainingResult) -> Dict[str, Any]:
    """A JSON-serializable representation of ``result``."""
    return {
        "schema": SCHEMA_VERSION,
        "config": _config_to_dict(result.config),
        "iteration_time": result.iteration_time,
        "iteration_times": list(result.iteration_times),
        "epoch_time": result.epoch_time,
        "fixed_overhead": result.fixed_overhead,
        "stages": {
            "fp": result.stages.fp,
            "bp": result.stages.bp,
            "wu": result.stages.wu,
            "iteration": result.stages.iteration,
        },
        "apis": [[name, seconds] for name, seconds in result.apis.totals],
        "gpu_busy": {str(g): b for g, b in result.gpu_busy.items()},
        "compute_utilization": result.compute_utilization,
        "memory": [
            {
                "gpu": m.gpu,
                "phase": m.phase,
                "context": m.usage.context,
                "parameters": m.usage.parameters,
                "activations": m.usage.activations,
                "workspace": m.usage.workspace,
                "input_batch": m.usage.input_batch,
                "server_buffers": m.usage.server_buffers,
            }
            for m in result.memory
        ],
        "faults": _faults_to_dict(result.faults),
        "violations": _violations_to_list(result.violations),
        "async_stats": _async_stats_to_dict(result.async_stats),
    }


def result_from_dict(data: Dict[str, Any]) -> TrainingResult:
    """Rebuild a :class:`TrainingResult` exported by :func:`result_to_dict`.

    Raises :class:`SchemaMismatchError` for dicts written by any other
    schema version.
    """
    _check_schema(data)
    config = _config_from_dict(data["config"])
    stages = StageBreakdown(
        fp=data["stages"]["fp"],
        bp=data["stages"]["bp"],
        wu=data["stages"]["wu"],
        iteration=data["stages"]["iteration"],
    )
    apis = ApiSummary(totals=tuple((n, t) for n, t in data["apis"]))
    memory = tuple(
        MemoryReading(
            gpu=m["gpu"],
            phase=m["phase"],
            usage=MemoryUsage(
                context=m["context"],
                parameters=m["parameters"],
                activations=m["activations"],
                workspace=m["workspace"],
                input_batch=m["input_batch"],
                server_buffers=m["server_buffers"],
            ),
        )
        for m in data["memory"]
    )
    return TrainingResult(
        config=config,
        iteration_time=data["iteration_time"],
        iteration_times=tuple(data["iteration_times"]),
        epoch_time=data["epoch_time"],
        fixed_overhead=data["fixed_overhead"],
        stages=stages,
        apis=apis,
        gpu_busy={int(g): b for g, b in data["gpu_busy"].items()},
        compute_utilization=data["compute_utilization"],
        memory=memory,
        profiler=None,
        faults=_faults_from_dict(data.get("faults")),
        violations=_violations_from_list(data.get("violations", [])),
        async_stats=_async_stats_from_dict(data.get("async_stats")),
    )


def async_result_to_dict(result: AsyncResult) -> Dict[str, Any]:
    """A JSON-serializable representation of an asynchronous run."""
    return {
        "schema": SCHEMA_VERSION,
        "config": _config_to_dict(result.config),
        "iteration_time": result.iteration_time,
        "epoch_time": result.epoch_time,
        "images_per_second": result.images_per_second,
        "staleness_mean": result.staleness_mean,
        "staleness_max": result.staleness_max,
        "staleness_samples": list(result.staleness_samples),
        "server_updates": result.server_updates,
    }


def async_result_from_dict(data: Dict[str, Any]) -> AsyncResult:
    """Rebuild an :class:`AsyncResult` exported by :func:`async_result_to_dict`."""
    _check_schema(data)
    return AsyncResult(
        config=_config_from_dict(data["config"]),
        iteration_time=data["iteration_time"],
        epoch_time=data["epoch_time"],
        images_per_second=data["images_per_second"],
        staleness_mean=data["staleness_mean"],
        staleness_max=data["staleness_max"],
        staleness_samples=tuple(data["staleness_samples"]),
        server_updates=data["server_updates"],
    )
