"""Admission control and the worker-pool circuit breaker.

Two small, independently testable policies the server composes:

* :class:`AdmissionController` decides whether a new request may enter
  at all -- per-client concurrency quotas (one slow client cannot
  monopolize the pool) and queue-depth watermarks (when the pool's
  backlog crosses ``queue_high`` the service answers 429-style ``busy``
  until it drains below ``queue_low``, classic hysteresis so admission
  does not flap at the boundary).
* :class:`CircuitBreaker` guards the process pool against crash loops:
  repeated worker deaths open the breaker for a cooldown, during which
  points are answered analytically (or refused) instead of feeding a
  dying pool; after the cooldown a single half-open probe decides
  whether to close it again.

Both are plain synchronous objects driven by the server's event loop --
no locks, no threads -- with an injectable clock for deterministic tests.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

#: Breaker states (string-valued for cheap JSON exposure in ``stats``).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class AdmissionController:
    """Quota and backpressure decisions for incoming sweep requests."""

    def __init__(
        self,
        max_inflight_per_client: int = 4,
        queue_high: int = 64,
        queue_low: int = 32,
    ) -> None:
        if max_inflight_per_client < 1:
            raise ValueError("max_inflight_per_client must be >= 1")
        if queue_high < 1:
            raise ValueError("queue_high must be >= 1")
        if not 0 <= queue_low <= queue_high:
            raise ValueError("queue_low must satisfy 0 <= low <= high")
        self.max_inflight_per_client = max_inflight_per_client
        self.queue_high = queue_high
        self.queue_low = queue_low
        self._inflight: Dict[str, int] = {}
        #: Latched true when depth crosses ``queue_high``; cleared only
        #: once it falls back below ``queue_low``.
        self._saturated = False

    def inflight(self, client: str) -> int:
        """Requests ``client`` currently has admitted."""
        return self._inflight.get(client, 0)

    def admit(self, client: str, queue_depth: int) -> Optional[str]:
        """Try to admit one request; returns a shed reason or ``None``.

        On ``None`` the caller *must* pair the admission with a later
        :meth:`release`.
        """
        if self._saturated:
            if queue_depth > self.queue_low:
                return "backpressure"
            self._saturated = False
        elif queue_depth >= self.queue_high:
            self._saturated = True
            return "backpressure"
        if self.inflight(client) >= self.max_inflight_per_client:
            return "quota"
        self._inflight[client] = self.inflight(client) + 1
        return None

    def release(self, client: str) -> None:
        """Return ``client``'s admission slot."""
        count = self._inflight.get(client, 0) - 1
        if count <= 0:
            self._inflight.pop(client, None)
        else:
            self._inflight[client] = count


class CircuitBreaker:
    """CLOSED -> OPEN -> HALF_OPEN protection around the worker pool.

    ``failure_threshold`` *consecutive* failures trip the breaker OPEN
    for ``cooldown`` seconds.  After the cooldown, :meth:`allow` admits
    exactly one probe (HALF_OPEN); the probe's success closes the
    breaker, its failure re-opens it for a fresh cooldown.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown < 0:
            raise ValueError("cooldown must be >= 0")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._clock = clock
        self.state = CLOSED
        self.failures = 0
        self._opened_at = 0.0
        self._probing = False

    def allow(self) -> bool:
        """Whether the pool may be used for the next execution."""
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if self._clock() - self._opened_at >= self.cooldown:
                self.state = HALF_OPEN
                self._probing = False
            else:
                return False
        # HALF_OPEN: admit a single probe at a time.
        if self._probing:
            return False
        self._probing = True
        return True

    def record_success(self) -> None:
        """A pool execution completed; close the breaker."""
        self.state = CLOSED
        self.failures = 0
        self._probing = False

    def record_failure(self) -> None:
        """A worker crashed; maybe trip (or re-trip) the breaker."""
        self.failures += 1
        if self.state == HALF_OPEN or self.failures >= self.failure_threshold:
            self.state = OPEN
            self._opened_at = self._clock()
            self._probing = False
