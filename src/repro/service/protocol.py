"""Wire protocol of the sweep service: newline-delimited JSON over TCP.

One request per line, one response per line.  Requests are JSON objects
with an ``op`` field:

``{"op": "ping"}``
    Liveness probe; answered with ``{"status": "ok", "pong": true}``.
``{"op": "stats"}``
    Service counters, queue depth, breaker state and worker pids.
``{"op": "drain"}``
    Begin graceful shutdown (same path as SIGTERM).
``{"op": "sweep", "client": ..., "points": [...], ...}``
    Simulate (or answer from cache / analytically) a list of sweep
    points.  Optional fields: ``budget`` (max points this request may
    *simulate*; beyond it points degrade to the analytic fast path),
    ``deadline`` (wall-clock seconds for the whole request; once
    exceeded, remaining points degrade), ``degrade`` (default true;
    set false to forbid analytic answers and get hard errors instead).

Each point is a flat JSON object of :class:`TrainingConfig` fields plus
``mode`` (``"sync"``/``"async"``); validation is eager, so a malformed
point is refused before anything simulates.  Responses carry ``status``
(``"ok"`` / ``"busy"`` / ``"rejected"`` / ``"error"``); ``busy`` and
``rejected`` add a machine-readable ``reason`` (``"quota"``,
``"budget"``, ``"backpressure"``, ``"draining"``).  See
``docs/SERVICE.md`` for the full grammar.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.config import CommMethodName, ScalingMode, TrainingConfig
from repro.core.errors import ConfigurationError, ReproError
from repro.runner.spec import FailureInfo, OomInfo, SweepPoint

#: Hard cap on one request line (a malicious/broken client must not make
#: the server buffer unbounded input).
MAX_LINE_BYTES = 1 << 20

#: TrainingConfig fields a point object may carry, with their coercions.
CONFIG_FIELDS: Dict[str, type] = {
    "network": str,
    "batch_size": int,
    "num_gpus": int,
    "dataset_images": int,
    "overlap_bp_wu": bool,
    "cluster_nodes": int,
    "fp16_gradients": bool,
    "optimizer": str,
    "nccl_algorithm": str,
    "nccl_protocol": str,
    "strategy": str,
    "cluster_fabric": str,
    "cluster_collective": str,
    "cluster_fast_path": str,
}


class ProtocolError(ReproError, ValueError):
    """A request line the service cannot parse or admit structurally."""


@dataclass(frozen=True)
class SweepRequest:
    """One parsed ``sweep`` request."""

    client: str
    points: Tuple[SweepPoint, ...]
    budget: Optional[int] = None
    deadline: Optional[float] = None
    degrade: bool = True


def point_from_dict(raw: Any) -> SweepPoint:
    """Build a :class:`SweepPoint` from one wire-format point object.

    Only whitelisted scalar :class:`TrainingConfig` fields are accepted
    (no overrides: clients cannot inject arbitrary trainer kwargs into
    the server process); enum fields coerce from their string values and
    the config's own eager validation rejects bad combinations.
    """
    if not isinstance(raw, dict):
        raise ProtocolError(f"point must be an object, got {type(raw).__name__}")
    data = dict(raw)
    mode = data.pop("mode", "sync")
    if mode not in ("sync", "async"):
        raise ProtocolError(f"point mode must be 'sync' or 'async', got {mode!r}")
    kwargs: Dict[str, Any] = {}
    try:
        if "comm_method" in data:
            kwargs["comm_method"] = CommMethodName(data.pop("comm_method"))
        if "scaling" in data:
            kwargs["scaling"] = ScalingMode(data.pop("scaling"))
    except ValueError as exc:
        raise ProtocolError(str(exc)) from exc
    for name, value in data.items():
        if name not in CONFIG_FIELDS:
            raise ProtocolError(f"unknown point field {name!r}")
        want = CONFIG_FIELDS[name]
        if want is bool:
            if not isinstance(value, bool):
                raise ProtocolError(f"point field {name!r} must be a boolean")
        elif want is int:
            if isinstance(value, bool) or not isinstance(value, int):
                raise ProtocolError(f"point field {name!r} must be an integer")
        elif not isinstance(value, want):
            raise ProtocolError(
                f"point field {name!r} must be a {want.__name__}")
        kwargs[name] = value
    if "network" not in kwargs or "batch_size" not in kwargs:
        raise ProtocolError("a point needs at least 'network' and 'batch_size'")
    kwargs.setdefault("num_gpus", 1)
    try:
        config = TrainingConfig(**kwargs)
    except (ConfigurationError, TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid point: {exc}") from exc
    return SweepPoint.make(config, mode=mode)


def point_to_dict(point: SweepPoint) -> Dict[str, Any]:
    """The wire-format object for ``point`` (the client-side inverse)."""
    cfg = point.config
    out: Dict[str, Any] = {
        "network": cfg.network,
        "batch_size": cfg.batch_size,
        "num_gpus": cfg.num_gpus,
        "comm_method": cfg.comm_method.value,
        "scaling": cfg.scaling.value,
    }
    if point.mode != "sync":
        out["mode"] = point.mode
    fields = TrainingConfig.__dataclass_fields__
    for name in CONFIG_FIELDS:
        if name in out:
            continue
        value = getattr(cfg, name)
        if value != fields[name].default:
            out[name] = value
    return out


def parse_request(line: str) -> Dict[str, Any]:
    """Decode one request line into its raw JSON object."""
    try:
        data = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise ProtocolError("request must be a JSON object")
    op = data.get("op")
    if op not in ("ping", "stats", "drain", "sweep"):
        raise ProtocolError(f"unknown op {op!r}")
    return data


def parse_sweep(data: Dict[str, Any]) -> SweepRequest:
    """Validate a raw ``sweep`` request object into a :class:`SweepRequest`."""
    client = data.get("client", "anonymous")
    if not isinstance(client, str) or not client:
        raise ProtocolError("'client' must be a non-empty string")
    raw_points = data.get("points")
    if not isinstance(raw_points, list) or not raw_points:
        raise ProtocolError("'points' must be a non-empty list")
    points = tuple(point_from_dict(p) for p in raw_points)
    budget = data.get("budget")
    if budget is not None:
        if isinstance(budget, bool) or not isinstance(budget, int) or budget < 0:
            raise ProtocolError("'budget' must be a non-negative integer")
    deadline = data.get("deadline")
    if deadline is not None:
        if isinstance(deadline, bool) or not isinstance(deadline, (int, float)):
            raise ProtocolError("'deadline' must be a number of seconds")
        deadline = float(deadline)
        if deadline <= 0:
            raise ProtocolError("'deadline' must be positive")
    degrade = data.get("degrade", True)
    if not isinstance(degrade, bool):
        raise ProtocolError("'degrade' must be a boolean")
    return SweepRequest(
        client=client, points=points, budget=budget,
        deadline=deadline, degrade=degrade,
    )


def value_payload(label: str, value: Any) -> Dict[str, Any]:
    """The deterministic per-point result object for a simulated value.

    Carries only modeled quantities (no wall-clock, no sourcing), so a
    warm-cache replay of the same request is byte-identical to the run
    that populated the cache -- the property the service-smoke CI job
    diffs on.
    """
    if isinstance(value, OomInfo):
        return {
            "label": label, "kind": "oom", "degraded": False,
            "device": value.device, "message": value.message,
        }
    if isinstance(value, FailureInfo):
        return {
            "label": label, "kind": "failed", "degraded": False,
            "error_type": value.error_type, "message": value.message,
            "attempts": value.attempts, "timed_out": value.timed_out,
        }
    payload: Dict[str, Any] = {
        "label": label,
        "kind": "async" if hasattr(value, "staleness_mean") else "training",
        "degraded": False,
        "iteration_time": value.iteration_time,
        "epoch_time": value.epoch_time,
        "images_per_second": value.images_per_second,
    }
    if hasattr(value, "staleness_mean"):
        payload["staleness_mean"] = value.staleness_mean
    return payload


def encode(message: Dict[str, Any]) -> bytes:
    """One response/request line (sorted keys: deterministic output)."""
    return (json.dumps(message, sort_keys=True) + "\n").encode("utf-8")


def error_response(status: str, reason: str = "", **extra: Any) -> Dict[str, Any]:
    """A non-``ok`` response object (``busy``/``rejected``/``error``)."""
    out: Dict[str, Any] = {"status": status}
    if reason:
        out["reason"] = reason
    out.update(extra)
    return out


def results_response(
    results: List[Dict[str, Any]], sourcing: Dict[str, Any],
) -> Dict[str, Any]:
    """The ``ok`` response for a served sweep.

    ``results`` is deterministic (see :func:`value_payload`);
    ``sourcing`` carries the per-request service stats (executed /
    disk hits / deduped / degraded / seconds avoided) that legitimately
    differ between a cold and a warm run.
    """
    return {"status": "ok", "results": results, "sourcing": sourcing}
