"""Resilient sweep service: a concurrent front-end over the runner.

ROADMAP item 4: the paper's characterization sweeps are exactly the
query shape a shared profiling backend must serve, so this package
promotes the :class:`~repro.runner.SweepRunner` machinery into a
long-running server that many concurrent clients can hit without
knocking it over.  Everything is stdlib ``asyncio`` -- a
newline-delimited JSON line protocol over TCP, no new dependencies.

* :mod:`repro.service.protocol`  -- the wire format: requests
  (``ping`` / ``stats`` / ``sweep`` / ``drain``), point parsing into
  :class:`~repro.core.config.TrainingConfig`, response payloads.
* :mod:`repro.service.admission` -- :class:`AdmissionController`
  (per-client concurrency quotas, per-request point budgets,
  queue-depth watermarks) and :class:`CircuitBreaker`
  (CLOSED/OPEN/HALF_OPEN over repeated worker crashes).
* :mod:`repro.service.dedup`     -- :class:`InflightRegistry`: identical
  points submitted by concurrent clients simulate exactly once.
* :mod:`repro.service.analytic`  -- the closed-form DAG estimate
  (Shi et al.) degraded requests are answered with, marked
  ``degraded: true``.
* :mod:`repro.service.executor`  -- the asyncio wrapper around the
  process pool: crash detection, single-flight pool rebuild, retry with
  jittered backoff.
* :mod:`repro.service.server`    -- :class:`SweepService` itself plus
  the ``repro-experiments serve`` entry point: sharded crash-safe
  store, obs metrics, graceful SIGTERM drain.
* :mod:`repro.service.client`    -- a small blocking client (library and
  ``python -m repro.service.client`` CLI) used by the CI smoke job and
  the chaos tests; import it explicitly (``from repro.service.client
  import ServiceClient``).

See ``docs/SERVICE.md`` for the protocol and the degradation semantics.
"""

from repro.service.admission import AdmissionController, CircuitBreaker
from repro.service.analytic import analytic_estimate
from repro.service.dedup import InflightRegistry
from repro.service.protocol import ProtocolError, SweepRequest
from repro.service.server import ServiceConfig, SweepService

# repro.service.client is deliberately not imported here: it is also an
# executable module (``python -m repro.service.client``), and importing
# it from the package __init__ would shadow that entry point.

__all__ = [
    "AdmissionController",
    "CircuitBreaker",
    "InflightRegistry",
    "ProtocolError",
    "ServiceConfig",
    "SweepRequest",
    "SweepService",
    "analytic_estimate",
]
