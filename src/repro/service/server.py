"""The sweep service itself: asyncio server + robustness envelope.

:class:`SweepService` accepts newline-delimited JSON requests
(:mod:`repro.service.protocol`) and serves each sweep point from, in
order: the sharded crash-safe store
(:class:`~repro.runner.ShardedResultStore`), the in-flight registry
(:class:`~repro.service.dedup.InflightRegistry` -- concurrent identical
points simulate once), or the process pool
(:class:`~repro.service.executor.PoolExecutor`).  Around that sit the
admission controller (quotas + queue watermarks -> ``busy``), the
circuit breaker (crash loops -> analytic answers while OPEN), budget
and deadline load-shedding (over-limit points degrade to
:func:`~repro.service.analytic.analytic_estimate`, marked
``degraded: true``), and a graceful SIGTERM/SIGINT drain that stops
admitting, finishes or abandons in-flight work, flushes the store
journal and exits 0.

Run it via ``repro-experiments serve`` (see :func:`main` for flags);
the line ``listening on <host>:<port>`` on stdout marks readiness.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import pathlib
import signal
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from concurrent.futures.process import BrokenProcessPool

from repro.core.config import SimulationConfig
from repro.core.constants import CALIBRATION, CalibrationConstants
from repro.obs.bus import EventBus
from repro.obs.events import ServiceRequestEvent
from repro.obs.export import JsonlRecorder, render_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.runner.fingerprint import point_fingerprint
from repro.runner.spec import FailureInfo, SweepPoint
from repro.runner.store import ResultStore, ShardedResultStore
from repro.service import protocol
from repro.service.admission import AdmissionController, CircuitBreaker
from repro.service.analytic import AnalyticUnsupported, analytic_estimate
from repro.service.dedup import InflightRegistry
from repro.service.executor import PoolExecutor


@dataclass
class ServiceConfig:
    """Everything tunable about one :class:`SweepService` instance."""

    host: str = "127.0.0.1"
    port: int = 0                      # 0 = ephemeral; real port is printed
    jobs: int = 2
    cache_dir: Optional[pathlib.Path] = pathlib.Path("results/service-cache")
    shards: int = 16
    sim: SimulationConfig = field(default_factory=SimulationConfig)
    constants: CalibrationConstants = CALIBRATION
    invariants: str = "off"
    max_inflight_per_client: int = 4
    queue_high: int = 64
    queue_low: int = 32
    default_budget: Optional[int] = None
    breaker_threshold: int = 3
    breaker_cooldown: float = 5.0
    retries: int = 1
    retry_backoff: float = 0.05
    retry_jitter: float = 0.5
    retry_seed: Optional[int] = 0
    drain_timeout: float = 10.0


def install_service_metrics(registry: MetricsRegistry) -> Dict[str, Any]:
    """Create the service instrument set on ``registry``.

    Kept separate from :func:`~repro.obs.bridge.install_default_metrics`
    so per-run training sessions (and their golden exporter files) are
    unaffected; the service merges both sets into one registry.
    """
    return {
        "requests": registry.counter(
            "service_requests_total",
            "Sweep-service requests by final status", ("status",)),
        "points": registry.counter(
            "service_points_total",
            "Sweep points served, by source", ("source",)),
        "shed": registry.counter(
            "service_shed_total",
            "Requests shed by admission/load-shedding, by reason",
            ("reason",)),
        "queue_depth": registry.gauge(
            "service_queue_depth",
            "Points submitted to the worker pool and not yet finished"),
        "request_seconds": registry.histogram(
            "service_request_seconds",
            "Wall-clock latency of sweep requests"),
        "saved_seconds": registry.counter(
            "service_saved_seconds_total",
            "Simulation seconds avoided by cache hits and dedup"),
        "rebuilds": registry.counter(
            "service_pool_rebuilds_total",
            "Process-pool rebuilds after worker crashes"),
    }


@dataclass
class _Tally:
    """Per-request sourcing counters (what the response reports)."""

    executed: int = 0
    disk_hits: int = 0
    deduped: int = 0
    degraded: int = 0
    sim_seconds: float = 0.0
    saved_seconds: float = 0.0

    def sourcing(self) -> Dict[str, Any]:
        return {
            "executed": self.executed,
            "disk_hits": self.disk_hits,
            "deduped": self.deduped,
            "degraded": self.degraded,
            "sim_seconds": round(self.sim_seconds, 6),
            "saved_seconds": round(self.saved_seconds, 6),
        }


class SweepService:
    """One resilient sweep server (see the module docstring)."""

    def __init__(
        self,
        config: ServiceConfig = ServiceConfig(),
        bus: Optional[EventBus] = None,
        registry: Optional[MetricsRegistry] = None,
        store: Optional[ResultStore] = None,
    ) -> None:
        self.config = config
        self.bus = bus if bus is not None else EventBus()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.metrics = install_service_metrics(self.registry)
        if store is not None:
            self.store: Optional[ResultStore] = store
        elif config.cache_dir is not None:
            self.store = ShardedResultStore(config.cache_dir, config.shards)
        else:
            self.store = None
        self.admission = AdmissionController(
            max_inflight_per_client=config.max_inflight_per_client,
            queue_high=config.queue_high,
            queue_low=config.queue_low,
        )
        self.breaker = CircuitBreaker(
            failure_threshold=config.breaker_threshold,
            cooldown=config.breaker_cooldown,
        )
        self.executor = PoolExecutor(
            jobs=config.jobs,
            sim=config.sim,
            constants=config.constants,
            invariants=config.invariants,
            retries=config.retries,
            retry_backoff=config.retry_backoff,
            retry_jitter=config.retry_jitter,
            retry_seed=config.retry_seed,
            breaker=self.breaker,
        )
        self.dedup = InflightRegistry()
        self.draining = False
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopped: Optional[asyncio.Event] = None
        self._drain_task: Optional[asyncio.Task] = None
        #: Connection-handler tasks with a request mid-dispatch, plus the
        #: count of such requests; ``_idle`` is set whenever the count is
        #: zero so drain can await quiescence without polling.
        self._active: Set[asyncio.Task] = set()
        self._busy = 0
        self._idle: Optional[asyncio.Event] = None
        self.port: Optional[int] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listening socket and prestart the worker pool."""
        self._stopped = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self.executor.prestart()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port,
            limit=protocol.MAX_LINE_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def run(self) -> int:
        """Serve until drained; returns the process exit status (0)."""
        await self.start()
        print(f"listening on {self.config.host}:{self.port}", flush=True)
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, ValueError):
                loop.add_signal_handler(sig, self.request_drain)
        assert self._stopped is not None
        await self._stopped.wait()
        return 0

    def request_drain(self) -> None:
        """Begin graceful shutdown (idempotent; signal-handler safe)."""
        if self._drain_task is None:
            self.draining = True
            self._drain_task = asyncio.get_running_loop().create_task(
                self._drain())

    async def _drain(self) -> None:
        """Stop admitting, settle in-flight work, flush, and stop."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        hung = False
        assert self._idle is not None
        try:
            await asyncio.wait_for(
                self._idle.wait(), timeout=self.config.drain_timeout)
        except asyncio.TimeoutError:
            hung = True
            pending = {t for t in self._active if not t.done()}
            for task in pending:
                task.cancel()
            await asyncio.gather(*pending, return_exceptions=True)
        self.dedup.abandon_all(
            ConnectionResetError("service drained before completion"))
        # A hung simulation cannot be joined; kill its worker outright
        # (the runner's timeout path has the same abandonment contract).
        self.executor.shutdown(kill_workers=hung)
        if self.store is not None:
            self.store.flush()
            self.store.close()
        print("drained: journal flushed, exiting", file=sys.stderr, flush=True)
        if self._stopped is not None:
            self._stopped.set()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(protocol.encode(protocol.error_response(
                        "error", error="request line too long")))
                    await writer.drain()
                    break
                if not line:
                    break
                task = asyncio.current_task()
                assert task is not None and self._idle is not None
                self._active.add(task)
                self._busy += 1
                self._idle.clear()
                try:
                    response = await self._dispatch(line.decode("utf-8"))
                finally:
                    self._active.discard(task)
                    self._busy -= 1
                    if self._busy == 0:
                        self._idle.set()
                writer.write(protocol.encode(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(Exception, asyncio.CancelledError):
                await writer.wait_closed()

    async def _dispatch(self, line: str) -> Dict[str, Any]:
        try:
            data = protocol.parse_request(line)
        except protocol.ProtocolError as exc:
            self.metrics["requests"].labels(status="error").inc()
            return protocol.error_response("error", error=str(exc))
        op = data["op"]
        if op == "ping":
            return {"status": "ok", "pong": True}
        if op == "stats":
            return {"status": "ok", "stats": self.service_stats()}
        if op == "drain":
            self.request_drain()
            return {"status": "ok", "draining": True}
        try:
            request = protocol.parse_sweep(data)
        except protocol.ProtocolError as exc:
            self.metrics["requests"].labels(status="error").inc()
            return protocol.error_response("error", error=str(exc))
        return await self._handle_sweep(request)

    def service_stats(self) -> Dict[str, Any]:
        """The ``stats`` op payload (also used by tests and the client)."""
        reg = self.registry
        return {
            "admitted": reg.counter_value(
                "service_requests_total", status="ok"),
            "busy": reg.counter_value("service_requests_total", status="busy"),
            "rejected": reg.counter_value(
                "service_requests_total", status="rejected"),
            "points_executed": reg.counter_value(
                "service_points_total", source="executed"),
            "points_disk": reg.counter_value(
                "service_points_total", source="disk"),
            "points_deduped": reg.counter_value(
                "service_points_total", source="dedup"),
            "points_degraded": reg.counter_value(
                "service_points_total", source="degraded"),
            "saved_seconds": self.metrics["saved_seconds"].value,
            "queue_depth": self.executor.inflight,
            "inflight_keys": len(self.dedup),
            "breaker": self.breaker.state,
            "rebuilds": self.executor.rebuilds,
            "workers": self.executor.worker_pids(),
            "store_entries": len(self.store) if self.store is not None else 0,
            "draining": self.draining,
        }

    # ------------------------------------------------------------------
    # Sweep serving
    # ------------------------------------------------------------------
    def _shed(
        self, request: protocol.SweepRequest, reason: str, status: str,
        started: float,
    ) -> Dict[str, Any]:
        """Account and build a non-``ok`` response."""
        self.metrics["requests"].labels(status=status).inc()
        self.metrics["shed"].labels(reason=reason).inc()
        self.bus.publish(ServiceRequestEvent(
            client=request.client, status=status, points=len(request.points),
            executed=0, disk_hits=0, deduped=0, degraded=0,
            shed_reason=reason, elapsed=time.monotonic() - started,
        ))
        return protocol.error_response(status, reason=reason)

    async def _handle_sweep(
        self, request: protocol.SweepRequest,
    ) -> Dict[str, Any]:
        started = time.monotonic()
        if self.draining:
            return self._shed(request, "draining", "rejected", started)
        shed = self.admission.admit(request.client, self.executor.inflight)
        if shed is not None:
            return self._shed(request, shed, "busy", started)
        try:
            return await self._serve_admitted(request, started)
        finally:
            self.admission.release(request.client)
            self.metrics["queue_depth"].set(self.executor.inflight)

    async def _serve_admitted(
        self, request: protocol.SweepRequest, started: float,
    ) -> Dict[str, Any]:
        cfg = self.config
        deadline_at = (
            started + request.deadline if request.deadline is not None else None
        )
        tally = _Tally()
        results: List[Optional[Dict[str, Any]]] = [None] * len(request.points)

        # Pass 1: committed results from the sharded store.
        misses: List[Tuple[int, SweepPoint, Optional[str]]] = []
        for index, point in enumerate(request.points):
            key = point_fingerprint(point, cfg.sim, cfg.constants)
            entry = (
                self.store.load_entry(key)
                if self.store is not None and key is not None else None
            )
            if entry is not None:
                results[index] = protocol.value_payload(
                    point.describe(), entry.value)
                tally.disk_hits += 1
                tally.saved_seconds += entry.elapsed
                self.metrics["points"].labels(source="disk").inc()
            else:
                misses.append((index, point, key))

        # Pass 2: budget classification.  Points beyond the simulation
        # budget degrade to the analytic fast path; if any of them
        # cannot degrade (async mode, degradation forbidden), the whole
        # request is refused up front rather than partially executed.
        budget = (
            request.budget if request.budget is not None
            else cfg.default_budget
        )
        quota = budget if budget is not None else len(misses)
        over = misses[quota:]
        if over and (not request.degrade
                     or any(p.mode != "sync" for _, p, _ in over)):
            return self._shed(request, "budget", "rejected", started)

        async def serve_point(
            rank: int, index: int, point: SweepPoint, key: Optional[str],
        ) -> None:
            may_simulate = (
                rank < quota
                and (deadline_at is None or time.monotonic() < deadline_at)
                and self.breaker.allow()
            )
            if may_simulate:
                payload = await self._simulate_point(point, key, tally)
            else:
                payload = self._degrade_point(point, request, tally)
            results[index] = payload
            self.metrics["queue_depth"].set(self.executor.inflight)

        await asyncio.gather(*(
            serve_point(rank, index, point, key)
            for rank, (index, point, key) in enumerate(misses)
        ))
        self.metrics["requests"].labels(status="ok").inc()
        elapsed = time.monotonic() - started
        self.metrics["request_seconds"].observe(elapsed)
        self.metrics["saved_seconds"].inc(tally.saved_seconds)
        self.bus.publish(ServiceRequestEvent(
            client=request.client, status="ok", points=len(request.points),
            executed=tally.executed, disk_hits=tally.disk_hits,
            deduped=tally.deduped, degraded=tally.degraded,
            shed_reason="", elapsed=elapsed,
        ))
        return protocol.results_response(
            [r for r in results if r is not None], tally.sourcing())

    async def _simulate_point(
        self, point: SweepPoint, key: Optional[str], tally: _Tally,
    ) -> Dict[str, Any]:
        """Serve one cache miss: dedup onto in-flight work, else execute."""
        label = point.describe()
        if key is None:
            value, elapsed, _stats = await self._execute(point)
            tally.executed += 1
            tally.sim_seconds += elapsed
            self.metrics["points"].labels(source="executed").inc()
            return protocol.value_payload(label, value)
        leader, future = self.dedup.claim(key)
        if not leader:
            try:
                value, elapsed = await asyncio.shield(future)
            except (ConnectionResetError, BrokenProcessPool) as exc:
                return protocol.value_payload(label, FailureInfo(
                    error_type=type(exc).__name__, message=str(exc),
                    attempts=1,
                ))
            tally.deduped += 1
            tally.saved_seconds += elapsed
            self.metrics["points"].labels(source="dedup").inc()
            return protocol.value_payload(label, value)
        try:
            value, elapsed, stats = await self._execute(point)
        except BaseException as exc:
            self.dedup.fail(key, exc)
            raise
        if self.store is not None and not isinstance(value, FailureInfo):
            self.store.store(key, value, elapsed=elapsed,
                             check_stats=stats or None)
        self.dedup.resolve(key, (value, elapsed))
        tally.executed += 1
        tally.sim_seconds += elapsed
        self.metrics["points"].labels(source="executed").inc()
        return protocol.value_payload(label, value)

    async def _execute(
        self, point: SweepPoint,
    ) -> Tuple[Any, float, Dict[str, Any]]:
        """Run one point on the pool; a dead pool becomes a FailureInfo."""
        before = self.executor.rebuilds
        try:
            value, elapsed, stats = await self.executor.execute(point)
        except BrokenProcessPool as exc:
            value = FailureInfo(
                error_type="WorkerCrashError",
                message=f"worker pool broke repeatedly: {exc}",
                attempts=self.config.retries + 1,
            )
            elapsed, stats = 0.0, {}
        if self.executor.rebuilds > before:
            self.metrics["rebuilds"].inc(self.executor.rebuilds - before)
        return value, elapsed, stats

    def _degrade_point(
        self, point: SweepPoint, request: protocol.SweepRequest, tally: _Tally,
    ) -> Dict[str, Any]:
        """Answer one shed point analytically (or record why not)."""
        if request.degrade:
            try:
                payload = analytic_estimate(point, self.config.constants)
            except AnalyticUnsupported as exc:
                payload = protocol.value_payload(
                    point.describe(), FailureInfo(
                        error_type="Shed", message=str(exc), attempts=0))
            else:
                tally.degraded += 1
                self.metrics["points"].labels(source="degraded").inc()
            return payload
        return protocol.value_payload(point.describe(), FailureInfo(
            error_type="Shed",
            message="load shed (degradation disabled by the request)",
            attempts=0,
        ))


def main(argv: Optional[List[str]] = None) -> int:
    """``repro-experiments serve``: run a sweep service until drained."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments serve",
        description="Serve sweep simulations over a newline-delimited "
                    "JSON TCP protocol with admission control, in-flight "
                    "dedup, a crash-safe sharded cache and graceful "
                    "degradation (see docs/SERVICE.md).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (default: 0 = ephemeral, printed "
                             "on startup)")
    parser.add_argument("--jobs", type=int, default=2, metavar="N",
                        help="worker processes (default: 2)")
    parser.add_argument("--cache-dir", type=pathlib.Path,
                        default=pathlib.Path("results/service-cache"),
                        metavar="DIR",
                        help="sharded result store root "
                             "(default: results/service-cache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="serve without a persistent store")
    parser.add_argument("--shards", type=int, default=16,
                        help="store shard directories (default: 16)")
    parser.add_argument("--warmup", type=int, default=1,
                        help="simulation warm-up iterations (default: 1)")
    parser.add_argument("--iterations", type=int, default=3,
                        help="measured iterations per point (default: 3)")
    parser.add_argument("--invariants", choices=("off", "warn", "strict"),
                        default="off",
                        help="invariant verification for executed points")
    parser.add_argument("--max-inflight-per-client", type=int, default=4,
                        metavar="N",
                        help="concurrent admitted requests per client id")
    parser.add_argument("--queue-high", type=int, default=64, metavar="N",
                        help="pool backlog that starts returning busy")
    parser.add_argument("--queue-low", type=int, default=32, metavar="N",
                        help="backlog that resumes admission")
    parser.add_argument("--budget", type=int, default=None, metavar="N",
                        help="default per-request simulation budget "
                             "(points beyond it degrade analytically)")
    parser.add_argument("--breaker-threshold", type=int, default=3,
                        metavar="N",
                        help="consecutive worker crashes that open the "
                             "circuit breaker")
    parser.add_argument("--breaker-cooldown", type=float, default=5.0,
                        metavar="SECONDS",
                        help="seconds the breaker stays open")
    parser.add_argument("--drain-timeout", type=float, default=10.0,
                        metavar="SECONDS",
                        help="grace period for in-flight requests on "
                             "SIGTERM before workers are killed")
    parser.add_argument("--obs-jsonl", type=pathlib.Path, default=None,
                        metavar="PATH",
                        help="stream service events (one JSON object per "
                             "line) to PATH")
    parser.add_argument("--prom", type=pathlib.Path, default=None,
                        metavar="PATH",
                        help="write Prometheus text metrics to PATH on exit")
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")

    config = ServiceConfig(
        host=args.host, port=args.port, jobs=args.jobs,
        cache_dir=None if args.no_cache else args.cache_dir,
        shards=args.shards,
        sim=SimulationConfig(warmup_iterations=args.warmup,
                             measure_iterations=args.iterations),
        invariants=args.invariants,
        max_inflight_per_client=args.max_inflight_per_client,
        queue_high=args.queue_high, queue_low=args.queue_low,
        default_budget=args.budget,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
        drain_timeout=args.drain_timeout,
    )
    service = SweepService(config)
    jsonl_fp = None
    if args.obs_jsonl is not None:
        args.obs_jsonl.parent.mkdir(parents=True, exist_ok=True)
        jsonl_fp = args.obs_jsonl.open("w")
        JsonlRecorder(service.bus, stream=jsonl_fp)
    try:
        status = asyncio.run(service.run())
    except KeyboardInterrupt:
        # The signal handler normally converts SIGINT into a drain; this
        # only fires if the interrupt lands outside the loop's control.
        status = 0
    finally:
        if jsonl_fp is not None:
            jsonl_fp.close()
        if args.prom is not None:
            args.prom.parent.mkdir(parents=True, exist_ok=True)
            args.prom.write_text(render_prometheus(service.registry))
    return status


if __name__ == "__main__":
    sys.exit(main())
