"""In-flight deduplication: identical points simulate exactly once.

Concurrent clients sweeping overlapping grids are the normal case for a
shared profiling backend (the Alibaba-PAI query mix in PAPERS.md), so
the service coalesces identical points *while they run*: the first
request to claim a fingerprint becomes its leader and executes it;
every later claimant awaits the leader's future instead of resubmitting
the same simulation to the pool.  The persistent store already dedupes
*completed* work across time; this registry closes the window between
submission and completion.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Tuple


class InflightRegistry:
    """Fingerprint -> future map for point executions in flight."""

    def __init__(self) -> None:
        self._inflight: Dict[str, asyncio.Future] = {}

    def __len__(self) -> int:
        return len(self._inflight)

    def claim(self, key: str) -> Tuple[bool, "asyncio.Future[Any]"]:
        """Claim ``key``; returns ``(leader, future)``.

        The leader (first claimant) must eventually call :meth:`resolve`
        or :meth:`fail` with the same key; followers just await the
        future.  Futures are handed out shielded-by-convention: a
        follower cancelling its own request must not cancel the leader's
        execution, so followers await ``asyncio.shield(future)``.
        """
        future = self._inflight.get(key)
        if future is not None:
            return False, future
        future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        return True, future

    def resolve(self, key: str, value: Any) -> None:
        """Publish the leader's result to every waiting follower."""
        future = self._inflight.pop(key, None)
        if future is not None and not future.done():
            future.set_result(value)

    def fail(self, key: str, exc: BaseException) -> None:
        """Propagate the leader's failure to every waiting follower."""
        future = self._inflight.pop(key, None)
        if future is not None and not future.done():
            future.set_exception(exc)

    def abandon_all(self, exc: BaseException) -> int:
        """Fail every outstanding future (drain/shutdown); returns count."""
        count = 0
        for key in list(self._inflight):
            self.fail(key, exc)
            count += 1
        return count
