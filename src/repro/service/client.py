"""Blocking client for the sweep service (library + tiny CLI).

The library half is what the chaos tests drive::

    with ServiceClient("127.0.0.1", port) as c:
        response = c.sweep(points, client="ci-a")

The CLI half is what the ``service-smoke`` CI job drives -- results on
stdout (deterministic: a warm-cache replay of the same request is
byte-identical), sourcing stats on stderr::

    python -m repro.service.client --port 4242 sweep \\
        --network lenet --batches 16,32 --gpus 1,4 --comm p2p
    python -m repro.service.client --port 4242 stats
    python -m repro.service.client --port 4242 drain
"""

from __future__ import annotations

import argparse
import json
import socket
import sys
from typing import Any, Dict, List, Optional, Sequence

from repro.service.protocol import MAX_LINE_BYTES, ProtocolError


class ServiceClient:
    """One TCP connection speaking the line protocol."""

    def __init__(
        self, host: str, port: int, timeout: Optional[float] = 60.0,
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._fp = self._sock.makefile("rwb")

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        try:
            self._fp.close()
        finally:
            self._sock.close()

    def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request object; block for its response object."""
        self._fp.write((json.dumps(message) + "\n").encode("utf-8"))
        self._fp.flush()
        line = self._fp.readline(MAX_LINE_BYTES)
        if not line:
            raise ConnectionError("server closed the connection")
        response = json.loads(line.decode("utf-8"))
        if not isinstance(response, dict):
            raise ProtocolError("response is not a JSON object")
        return response

    def ping(self) -> Dict[str, Any]:
        return self.request({"op": "ping"})

    def stats(self) -> Dict[str, Any]:
        return self.request({"op": "stats"})

    def drain(self) -> Dict[str, Any]:
        return self.request({"op": "drain"})

    def sweep(
        self,
        points: Sequence[Dict[str, Any]],
        client: str = "anonymous",
        budget: Optional[int] = None,
        deadline: Optional[float] = None,
        degrade: bool = True,
    ) -> Dict[str, Any]:
        message: Dict[str, Any] = {
            "op": "sweep", "client": client, "points": list(points),
            "degrade": degrade,
        }
        if budget is not None:
            message["budget"] = budget
        if deadline is not None:
            message["deadline"] = deadline
        return self.request(message)


def render_result(result: Dict[str, Any]) -> str:
    """One deterministic stdout line per served point."""
    label = result.get("label", "?")
    kind = result.get("kind", "?")
    if kind == "oom":
        return f"{label}: OOM ({result.get('message', '')})"
    if kind == "failed":
        return (f"{label}: FAILED {result.get('error_type', '?')}: "
                f"{result.get('message', '')}")
    suffix = " [analytic]" if result.get("degraded") else ""
    return (f"{label}: iteration={result['iteration_time']:.6f}s "
            f"epoch={result['epoch_time']:.3f}s "
            f"({result['images_per_second']:.0f} img/s){suffix}")


def render_sourcing(sourcing: Dict[str, Any]) -> str:
    """The stderr sourcing summary (reports the seconds avoided)."""
    return (f"sourcing: {sourcing.get('executed', 0)} executed, "
            f"{sourcing.get('disk_hits', 0)} disk hit(s), "
            f"{sourcing.get('deduped', 0)} deduped, "
            f"{sourcing.get('degraded', 0)} degraded, "
            f"~{sourcing.get('saved_seconds', 0.0):.2f}s avoided")


def _parse_int_list(text: str) -> List[int]:
    return [int(part) for part in text.split(",") if part.strip()]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.client",
        description="Talk to a running sweep service (docs/SERVICE.md).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--timeout", type=float, default=300.0,
                        help="socket timeout in seconds (default: 300)")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("ping")
    sub.add_parser("stats")
    sub.add_parser("drain")
    sweep = sub.add_parser("sweep")
    sweep.add_argument("--client", default="cli",
                       help="client identity for quota accounting")
    sweep.add_argument("--network", default="lenet")
    sweep.add_argument("--batches", default="16",
                       help="comma list of batch sizes")
    sweep.add_argument("--gpus", default="1",
                       help="comma list of GPU counts")
    sweep.add_argument("--comm", default="p2p",
                       help="communication method")
    sweep.add_argument("--budget", type=int, default=None,
                       help="simulation budget (extra points degrade)")
    sweep.add_argument("--deadline", type=float, default=None,
                       help="request deadline in seconds")
    sweep.add_argument("--no-degrade", action="store_true",
                       help="forbid analytic degraded answers")
    args = parser.parse_args(argv)

    with ServiceClient(args.host, args.port, timeout=args.timeout) as client:
        if args.command == "ping":
            print(json.dumps(client.ping(), sort_keys=True))
            return 0
        if args.command == "stats":
            print(json.dumps(client.stats(), sort_keys=True))
            return 0
        if args.command == "drain":
            print(json.dumps(client.drain(), sort_keys=True))
            return 0
        points = [
            {"network": args.network, "batch_size": batch,
             "num_gpus": gpus, "comm_method": args.comm}
            for batch in _parse_int_list(args.batches)
            for gpus in _parse_int_list(args.gpus)
        ]
        response = client.sweep(
            points, client=args.client, budget=args.budget,
            deadline=args.deadline, degrade=not args.no_degrade,
        )
    status = response.get("status")
    if status != "ok":
        print(f"{status}: {response.get('reason', response.get('error', ''))}",
              file=sys.stderr)
        return 3
    for result in response["results"]:
        print(render_result(result))
    print(render_sourcing(response.get("sourcing", {})), file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
