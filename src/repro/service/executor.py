"""Asyncio wrapper around the simulation process pool.

The service shares the runner's module-level pool worker
(:func:`repro.runner.runner._execute_point` -- OOM and crashes come back
as data, invariant stats as a plain dict), but drives it from the event
loop: each point execution is ``loop.run_in_executor`` on a
:class:`~concurrent.futures.ProcessPoolExecutor`, so the server keeps
accepting connections while simulations run.

Worker death (SIGKILL, segfault) surfaces as
:class:`~concurrent.futures.process.BrokenProcessPool` on *every*
in-flight future.  Recovery is single-flight: the first coroutine to
observe the break swaps in a fresh pool (every other one re-checks and
reuses it), reports the crash to the circuit breaker, sleeps a jittered
backoff -- the satellite jitter knob, seeded for determinism -- and
retries its point up to ``retries`` times.
"""

from __future__ import annotations

import asyncio
import functools
import random
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.core.config import SimulationConfig
from repro.core.constants import CALIBRATION, CalibrationConstants
from repro.runner.runner import _execute_point
from repro.runner.spec import SweepPoint
from repro.service.admission import CircuitBreaker


class PoolExecutor:
    """Crash-tolerant point execution on a process pool."""

    def __init__(
        self,
        jobs: int = 2,
        sim: SimulationConfig = SimulationConfig(),
        constants: CalibrationConstants = CALIBRATION,
        trainer_kwargs: Optional[Mapping[str, Any]] = None,
        invariants: str = "off",
        retries: int = 1,
        retry_backoff: float = 0.05,
        retry_jitter: float = 0.5,
        retry_seed: Optional[int] = 0,
        breaker: Optional[CircuitBreaker] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.sim = sim
        self.constants = constants
        self.trainer_kwargs: Dict[str, Any] = dict(trainer_kwargs or {})
        self.invariants = invariants
        self.retries = retries
        self.retry_backoff = retry_backoff
        self.retry_jitter = retry_jitter
        self._rng = random.Random(retry_seed)
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._rebuild_lock: Optional[asyncio.Lock] = None
        #: Points submitted but not yet finished -- the queue-depth gauge.
        self.inflight = 0
        #: Pools this executor had to rebuild after a worker crash.
        self.rebuilds = 0

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def worker_pids(self) -> List[int]:
        """Pids of the live pool workers (spawned lazily on first use)."""
        pool = self._pool
        if pool is None or pool._processes is None:
            return []
        return [p.pid for p in pool._processes.values() if p.pid is not None]

    def prestart(self) -> None:
        """Spawn the pool eagerly so ``stats`` can report worker pids."""
        pool = self._ensure_pool()
        # Submitting a trivial task forces worker creation on all
        # Python versions (3.8's pool spawns lazily per task).
        pool.submit(int, 0).result()

    async def _rebuild(self, broken: ProcessPoolExecutor) -> None:
        """Replace a broken pool exactly once (single-flight)."""
        if self._rebuild_lock is None:
            self._rebuild_lock = asyncio.Lock()
        async with self._rebuild_lock:
            if self._pool is broken:
                broken.shutdown(wait=False, cancel_futures=True)
                self._pool = ProcessPoolExecutor(max_workers=self.jobs)
                self.rebuilds += 1

    def _backoff(self, attempt: int) -> float:
        backoff = self.retry_backoff * (2 ** (attempt - 1))
        if self.retry_jitter:
            backoff *= 1.0 + self._rng.random() * self.retry_jitter
        return backoff

    async def execute(
        self, point: SweepPoint,
    ) -> Tuple[Any, float, Dict[str, Tuple[int, int]]]:
        """Run one point; returns ``(value, elapsed, check_stats)``.

        A worker crash is retried (on a rebuilt pool) up to ``retries``
        times; the final failure propagates as
        :class:`BrokenProcessPool` for the server to convert into a
        failed-point payload.
        """
        loop = asyncio.get_running_loop()
        task = functools.partial(
            _execute_point, point, self.sim, self.constants,
            self.trainer_kwargs, self.invariants,
        )
        self.inflight += 1
        try:
            attempt = 0
            while True:
                attempt += 1
                pool = self._ensure_pool()
                try:
                    result = await loop.run_in_executor(pool, task)
                except BrokenProcessPool:
                    self.breaker.record_failure()
                    await self._rebuild(pool)
                    if attempt > self.retries:
                        raise
                    await asyncio.sleep(self._backoff(attempt))
                    continue
                self.breaker.record_success()
                return result
        finally:
            self.inflight -= 1

    def shutdown(self, kill_workers: bool = False) -> None:
        """Tear the pool down (used by graceful drain).

        ``kill_workers=True`` terminates worker processes outright --
        the drain path's last resort for a hung simulation, mirroring
        the runner's timeout-abandonment semantics.
        """
        pool = self._pool
        self._pool = None
        if pool is None:
            return
        if kill_workers and pool._processes:
            for proc in list(pool._processes.values()):
                proc.terminate()
        pool.shutdown(wait=not kill_workers, cancel_futures=True)
