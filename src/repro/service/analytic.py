"""The analytic fast path degraded requests are answered with.

When the service must shed load -- a request over its point budget,
past its deadline, or arriving while the circuit breaker is open -- it
does not refuse: it answers from the closed-form DAG model of S-SGD
(Shi et al., the same model :mod:`repro.checks.dag` uses as a
cross-check oracle)::

    iteration >= max(input + compute, wire) + host

The estimate reuses the trainer's own compilation (kernel schedules,
gradient arrays, topology) but runs *no event simulation*, so it costs
microseconds instead of seconds.  Because the floors are lower bounds,
the answer is a sound optimistic estimate of the simulated number --
clearly marked ``degraded: true`` with its floor breakdown so clients
can tell an analytic answer from a measured one.

Only synchronous points degrade: the DAG model has no notion of
parameter-server staleness, so async points past their budget are
refused instead of answered wrongly.
"""

from __future__ import annotations

import functools
from typing import Any, Dict

from repro.checks.dag import (
    aggregate_peak_bandwidth,
    critical_path_floor,
    device_factor_floor,
)
from repro.checks.expect import expected_sync_bytes
from repro.core.config import TrainingConfig
from repro.core.constants import CALIBRATION, CalibrationConstants
from repro.runner.spec import SweepPoint


class AnalyticUnsupported(ValueError):
    """The point cannot be answered analytically (e.g. async mode)."""


@functools.lru_cache(maxsize=256)
def _estimate(
    config: TrainingConfig, constants: CalibrationConstants,
) -> Dict[str, float]:
    """The cached floor breakdown for one configuration.

    Builds a trainer (compilation only -- schedules, cost model, memory
    model) and assembles its system once to read the communicator's
    per-iteration overhead and the topology's aggregate bandwidth;
    nothing is simulated.
    """
    from repro.train.trainer import Trainer

    trainer = Trainer(config, constants=constants, check_memory=False)
    _env, _profiler, fabric, _router, devices, comm = trainer._build_system()
    compute = trainer._kernel_seconds * max(
        (device_factor_floor(dev) for dev in devices), default=1.0
    )
    input_floor = (
        constants.input_pipeline_residual
        + constants.input_cost_per_image * config.batch_size
    )
    host = (
        constants.framework_iteration_overhead
        + len(devices) * constants.stream_sync_overhead
        + comm.per_iteration_overhead()
    )
    wire = 0.0
    expected = expected_sync_bytes(
        comm.name,
        trainer._sync_arrays(),
        len(devices),
        gradient_bytes_scale=comm.gradient_bytes_scale,
    )
    if expected:
        agg = aggregate_peak_bandwidth(fabric.topology)
        if agg > 0.0:
            wire = expected / agg
    return {
        "compute": compute, "input": input_floor,
        "wire": wire, "host": host,
    }


def analytic_estimate(
    point: SweepPoint,
    constants: CalibrationConstants = CALIBRATION,
) -> Dict[str, Any]:
    """The degraded (analytic) per-point response payload for ``point``.

    Raises :class:`AnalyticUnsupported` for async points.
    """
    if point.mode != "sync":
        raise AnalyticUnsupported(
            "the analytic DAG model covers synchronous SGD only; "
            "async points cannot degrade"
        )
    if point.overrides:
        raise AnalyticUnsupported(
            "points with trainer overrides cannot degrade analytically"
        )
    floors = _estimate(point.config, constants)
    iteration = critical_path_floor(
        floors["compute"], floors["input"], floors["wire"], floors["host"],
    )
    config = point.config
    epoch = iteration * config.iterations_per_epoch
    return {
        "label": point.describe(),
        "kind": "analytic",
        "degraded": True,
        "path": "analytic-dag",
        "iteration_time": iteration,
        "epoch_time": epoch,
        "images_per_second": (
            config.global_batch_size / iteration if iteration > 0 else 0.0
        ),
        "floors": dict(floors),
    }
