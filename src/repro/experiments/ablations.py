"""Ablation studies for the design choices DESIGN.md calls out.

Four ablations, each isolating one mechanism the paper's conclusions rest
on:

* **BP/WU overlap** -- disable MXNet's pipelining of backward propagation
  with weight update; shows how much communication latency hiding buys.
* **Fabric** -- replace NVLink with PCIe-only transfers; the paper's claim
  that bandwidth alone does not remove the communication bottleneck.
* **Link asymmetry** -- collapse dual NVLinks to singles; quantifies the
  benefit of the aggregated 50 GB/s connections.
* **Tensor cores** -- disable them; compute-side sensitivity.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.config import CommMethodName, SimulationConfig, TrainingConfig
from repro.experiments.tables import render_table
from repro.runner import SweepPoint, SweepRunner, SweepSpec
from repro.topology import build_dgx1v


@dataclass(frozen=True)
class AblationRow:
    """One ablated configuration's epoch time versus baseline."""

    name: str
    network: str
    comm_method: str
    num_gpus: int
    baseline_epoch: float
    ablated_epoch: float

    @property
    def slowdown(self) -> float:
        return self.ablated_epoch / self.baseline_epoch


@dataclass(frozen=True)
class AblationResult:
    """Every ablation row, addressable by (name, network)."""

    rows: Tuple[AblationRow, ...]

    def row(self, name: str, network: str) -> AblationRow:
        for r in self.rows:
            if (r.name, r.network) == (name, network):
                return r
        raise KeyError((name, network))


#: Ablation labels per communication method, in reporting order.
_ABLATIONS = {
    CommMethodName.P2P: ("no-overlap", "pcie-fabric", "single-links"),
    CommMethodName.NCCL: ("no-overlap", "no-tensor-cores"),
}


def sweep_spec(
    networks: Tuple[str, ...] = ("alexnet", "inception-v3"),
    batch_size: int = 32,
    num_gpus: int = 8,
) -> SweepSpec:
    """Explicit points: the baseline plus each ablated variant, tagged."""
    points: List[SweepPoint] = []
    for network in networks:
        for method in (CommMethodName.P2P, CommMethodName.NCCL):
            base_config = TrainingConfig(network, batch_size, num_gpus,
                                         comm_method=method)
            variants = {
                "baseline": SweepPoint.make(
                    base_config, tags={"ablation": "baseline"}),
                "no-overlap": SweepPoint.make(
                    TrainingConfig(network, batch_size, num_gpus,
                                   comm_method=method, overlap_bp_wu=False),
                    tags={"ablation": "no-overlap"}),
                "pcie-fabric": SweepPoint.make(
                    base_config,
                    overrides={"topology_builder": functools.partial(
                        build_dgx1v, nvlink=False)},
                    tags={"ablation": "pcie-fabric"}),
                "single-links": SweepPoint.make(
                    base_config,
                    overrides={"topology_builder": functools.partial(
                        build_dgx1v, uniform_link_width=1)},
                    tags={"ablation": "single-links"}),
                "no-tensor-cores": SweepPoint.make(
                    base_config,
                    overrides={"use_tensor_cores": False},
                    tags={"ablation": "no-tensor-cores"}),
            }
            points.append(variants["baseline"])
            points.extend(variants[label] for label in _ABLATIONS[method])
    return SweepSpec.explicit("ablations", points)


def run(
    networks: Tuple[str, ...] = ("alexnet", "inception-v3"),
    batch_size: int = 32,
    num_gpus: int = 8,
    sim: Optional[SimulationConfig] = None,
    runner: Optional[SweepRunner] = None,
) -> AblationResult:
    if runner is None:
        runner = SweepRunner(sim=sim or SimulationConfig())
    results = runner.run(sweep_spec(networks, batch_size, num_gpus))
    rows: List[AblationRow] = []
    for network in networks:
        for method in (CommMethodName.P2P, CommMethodName.NCCL):
            baseline = results.result(
                network=network, comm_method=method, ablation="baseline"
            ).epoch_time
            for label in _ABLATIONS[method]:
                ablated = results.result(
                    network=network, comm_method=method, ablation=label
                ).epoch_time
                rows.append(AblationRow(
                    name=f"{label}/{method.value}", network=network,
                    comm_method=method.value, num_gpus=num_gpus,
                    baseline_epoch=baseline,
                    ablated_epoch=ablated,
                ))
    return AblationResult(rows=tuple(rows))


def render(result: AblationResult) -> str:
    return render_table(
        ["Ablation", "Network", "GPUs", "Baseline (s)", "Ablated (s)", "Slowdown"],
        [
            (
                r.name,
                r.network,
                r.num_gpus,
                f"{r.baseline_epoch:.2f}",
                f"{r.ablated_epoch:.2f}",
                f"x{r.slowdown:.2f}",
            )
            for r in result.rows
        ],
        title="Ablations (batch 32, 8 GPUs)",
    )
