"""Ablation studies for the design choices DESIGN.md calls out.

Four ablations, each isolating one mechanism the paper's conclusions rest
on:

* **BP/WU overlap** -- disable MXNet's pipelining of backward propagation
  with weight update; shows how much communication latency hiding buys.
* **Fabric** -- replace NVLink with PCIe-only transfers; the paper's claim
  that bandwidth alone does not remove the communication bottleneck.
* **Link asymmetry** -- collapse dual NVLinks to singles; quantifies the
  benefit of the aggregated 50 GB/s connections.
* **Tensor cores** -- disable them; compute-side sensitivity.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.config import CommMethodName, SimulationConfig, TrainingConfig
from repro.experiments.tables import render_table
from repro.topology import build_dgx1v
from repro.train import Trainer


@dataclass(frozen=True)
class AblationRow:
    name: str
    network: str
    comm_method: str
    num_gpus: int
    baseline_epoch: float
    ablated_epoch: float

    @property
    def slowdown(self) -> float:
        return self.ablated_epoch / self.baseline_epoch


@dataclass(frozen=True)
class AblationResult:
    rows: Tuple[AblationRow, ...]

    def row(self, name: str, network: str) -> AblationRow:
        for r in self.rows:
            if (r.name, r.network) == (name, network):
                return r
        raise KeyError((name, network))


def _epoch(config: TrainingConfig, sim: SimulationConfig, **kwargs) -> float:
    return Trainer(config, sim=sim, **kwargs).run().epoch_time


def run(
    networks: Tuple[str, ...] = ("alexnet", "inception-v3"),
    batch_size: int = 32,
    num_gpus: int = 8,
    sim: Optional[SimulationConfig] = None,
) -> AblationResult:
    sim = sim or SimulationConfig()
    rows: List[AblationRow] = []
    for network in networks:
        for method in (CommMethodName.P2P, CommMethodName.NCCL):
            base_config = TrainingConfig(network, batch_size, num_gpus,
                                         comm_method=method)
            baseline = _epoch(base_config, sim)

            no_overlap = TrainingConfig(network, batch_size, num_gpus,
                                        comm_method=method, overlap_bp_wu=False)
            rows.append(AblationRow(
                name=f"no-overlap/{method.value}", network=network,
                comm_method=method.value, num_gpus=num_gpus,
                baseline_epoch=baseline,
                ablated_epoch=_epoch(no_overlap, sim),
            ))

            if method is CommMethodName.P2P:
                pcie_only = functools.partial(build_dgx1v, nvlink=False)
                rows.append(AblationRow(
                    name="pcie-fabric/p2p", network=network,
                    comm_method=method.value, num_gpus=num_gpus,
                    baseline_epoch=baseline,
                    ablated_epoch=_epoch(base_config, sim,
                                         topology_builder=pcie_only),
                ))
                uniform = functools.partial(build_dgx1v, uniform_link_width=1)
                rows.append(AblationRow(
                    name="single-links/p2p", network=network,
                    comm_method=method.value, num_gpus=num_gpus,
                    baseline_epoch=baseline,
                    ablated_epoch=_epoch(base_config, sim,
                                         topology_builder=uniform),
                ))

            if method is CommMethodName.NCCL:
                rows.append(AblationRow(
                    name="no-tensor-cores/nccl", network=network,
                    comm_method=method.value, num_gpus=num_gpus,
                    baseline_epoch=baseline,
                    ablated_epoch=_epoch(base_config, sim,
                                         use_tensor_cores=False),
                ))
    return AblationResult(rows=tuple(rows))


def render(result: AblationResult) -> str:
    return render_table(
        ["Ablation", "Network", "GPUs", "Baseline (s)", "Ablated (s)", "Slowdown"],
        [
            (
                r.name,
                r.network,
                r.num_gpus,
                f"{r.baseline_epoch:.2f}",
                f"{r.ablated_epoch:.2f}",
                f"x{r.slowdown:.2f}",
            )
            for r in result.rows
        ],
        title="Ablations (batch 32, 8 GPUs)",
    )
