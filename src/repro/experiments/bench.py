"""``repro-experiments bench``: time the simulator, record the trajectory.

Runs the registered bench workloads (:mod:`repro.perf.harness`) with
warmup/repeat/min-of-N discipline and either prints a summary table or
writes the schema-versioned ``BENCH_*.json`` document::

    repro-experiments bench --profile fast
    repro-experiments bench --profile all -o BENCH_6.json   # the baseline
    repro-experiments bench --profile fast --repeats 1      # CI smoke

The committed ``BENCH_<PR>.json`` files form the repository's performance
trajectory: one document per PR, compared by ``tools/check_bench.py``
(:mod:`repro.perf.gate`) with machine-speed normalization.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Any, Dict, Optional


def _summarize(name: str, record: Dict[str, Any]) -> str:
    """One streamed stderr line per finished workload."""
    spans = record.get("spans", {})
    top = ""
    if spans:
        widest = max(spans, key=lambda path: spans[path]["total"])
        top = f", top span {widest} ({spans[widest]['total']:.3f}s)"
    return (
        f"  {name}: {record['wall_clock']:.3f}s "
        f"(min of {record['repeats']}{top})"
    )


def render_summary(document: Dict[str, Any]) -> str:
    """Fixed-width table of every workload in one bench document."""
    lines = [
        f"bench profile={document['profile']} "
        f"calibration={document['calibration']['score']:g} ops/s",
        f"{'workload':<22} {'profile':>8} {'repeats':>8} {'wall s':>10}",
    ]
    for name, record in document["workloads"].items():
        lines.append(
            f"{name:<22} {record['profile']:>8} {record['repeats']:>8} "
            f"{record['wall_clock']:>10.3f}"
        )
    return "\n".join(lines)


def main(argv: Optional[list] = None) -> int:
    """Entry point for the ``bench`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments bench",
        description="Benchmark the simulator's canonical workloads and "
                    "write a schema-versioned BENCH_*.json document "
                    "(the committed per-PR performance trajectory).",
    )
    parser.add_argument("--profile", default="fast",
                        choices=("fast", "full", "all"),
                        help="workload set: fast (CI-sized, default), full "
                             "(paper scale) or all (both; used for the "
                             "committed baseline)")
    parser.add_argument("--repeats", type=int, default=None, metavar="N",
                        help="override each workload's timed repeat count")
    parser.add_argument("-o", "--output", type=pathlib.Path, default=None,
                        metavar="PATH",
                        help="write the validated bench document to PATH "
                             "(default: print the document to stdout)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-workload progress on stderr")
    args = parser.parse_args(argv)
    if args.repeats is not None and args.repeats < 1:
        parser.error(f"--repeats must be >= 1, got {args.repeats}")

    from repro.core.errors import ReproError
    from repro.perf.harness import run_harness, write_bench

    def progress(name: str, record: Dict[str, Any]) -> None:
        if not args.quiet:
            print(_summarize(name, record), file=sys.stderr)

    try:
        document = run_harness(
            profile=args.profile, repeats=args.repeats, progress=progress,
        )
        if args.output is not None:
            path = write_bench(args.output, document)
            print(render_summary(document), file=sys.stderr)
            print(f"wrote {path}", file=sys.stderr)
        else:
            print(json.dumps(document, indent=2))
            print(render_summary(document), file=sys.stderr)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
