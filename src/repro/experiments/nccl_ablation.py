"""NCCL algorithm/protocol ablation: what the paper's fixed ring left behind.

The paper measured NCCL as MXNet shipped it -- one ring algorithm, one
wire protocol.  Real NCCL auto-tunes over {Ring, Tree} x {Simple, LL,
LL128} per message size.  This experiment reports that selection space
from two angles:

* **Selection table** -- the pure cost model scanned over message sizes
  (256 B .. 256 MiB): which combo the tuner picks, its predicted time,
  and its speedup over the pinned ring+Simple baseline.  The crossover
  summary reports the first size of each regime: LL wins the small
  latency-bound messages, ring+Simple the large bandwidth-bound ones.
* **End-to-end sweep** -- full training simulations over a grid of
  pinned (algorithm, protocol) combos plus ``auto`` and the ``compat``
  baseline, run through the shared :class:`~repro.runner.SweepRunner`
  so the results cache and parallelize like every other artifact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.analysis.protocols import (
    CrossoverPoint,
    SelectionRow,
    crossover_table,
    protocol_speedups,
    selection_table,
)
from repro.comm.nccl.tuning import NcclTuner
from repro.core.config import CommMethodName, TrainingConfig
from repro.experiments.tables import render_table
from repro.runner import SweepPoint, SweepRunner, SweepSpec

#: (algorithm, protocol) combos the end-to-end sweep trains under.
#: ``compat`` is the paper-calibrated baseline; the pinned combos span
#: both algorithms and all three protocols; ``auto`` is the tuner.
SWEEP_COMBOS: Tuple[Tuple[str, str], ...] = (
    ("compat", "compat"),
    ("ring", "simple"),
    ("ring", "ll"),
    ("ring", "ll128"),
    ("tree", "simple"),
    ("tree", "ll"),
    ("auto", "auto"),
)

DEFAULT_NETWORKS = ("alexnet", "resnet")
DEFAULT_SIZES = tuple(2 ** p for p in range(8, 29))  # 256 B .. 256 MiB


@dataclass(frozen=True)
class EpochRow:
    """One network's epoch time under one (algorithm, protocol) combo."""

    network: str
    algorithm: str
    protocol: str
    epoch_time: float


@dataclass(frozen=True)
class NcclAblationResult:
    """Selection table, crossovers and per-combo epoch times."""

    selection: Tuple[SelectionRow, ...]
    crossovers: Tuple[CrossoverPoint, ...]
    epochs: Tuple[EpochRow, ...]
    batch_size: int
    num_gpus: int

    def epoch(self, network: str, algorithm: str, protocol: str) -> float:
        for row in self.epochs:
            if (row.network, row.algorithm, row.protocol) == (
                    network, algorithm, protocol):
                return row.epoch_time
        raise KeyError((network, algorithm, protocol))


def sweep_spec(
    networks: Sequence[str] = DEFAULT_NETWORKS,
    batch_size: int = 16,
    num_gpus: int = 4,
    combos: Sequence[Tuple[str, str]] = SWEEP_COMBOS,
) -> SweepSpec:
    """The end-to-end (algorithm, protocol) training grid."""
    points = [
        SweepPoint.make(
            TrainingConfig(
                network=network,
                batch_size=batch_size,
                num_gpus=num_gpus,
                comm_method=CommMethodName.NCCL,
                nccl_algorithm=algorithm,
                nccl_protocol=protocol,
            ),
        )
        for network in networks
        for algorithm, protocol in combos
    ]
    return SweepSpec.explicit("nccl_ablation", points)


def run(
    runner: Optional[SweepRunner] = None,
    networks: Sequence[str] = DEFAULT_NETWORKS,
    batch_size: int = 16,
    num_gpus: int = 4,
    sizes: Sequence[int] = DEFAULT_SIZES,
) -> NcclAblationResult:
    runner = runner if runner is not None else SweepRunner()
    tuner = NcclTuner.for_dgx1(num_gpus=max(num_gpus, 2))
    selection = tuple(selection_table(tuner, sizes=sizes))
    crossovers = tuple(crossover_table(tuner, sizes=sizes))

    results = runner.run(sweep_spec(networks, batch_size, num_gpus))
    rows: List[EpochRow] = []
    for network in networks:
        for algorithm, protocol in SWEEP_COMBOS:
            result = results.result(
                network=network,
                nccl_algorithm=algorithm,
                nccl_protocol=protocol,
            )
            rows.append(EpochRow(
                network=network,
                algorithm=algorithm,
                protocol=protocol,
                epoch_time=result.epoch_time,
            ))
    return NcclAblationResult(
        selection=selection,
        crossovers=tuple(crossovers),
        epochs=tuple(rows),
        batch_size=batch_size,
        num_gpus=num_gpus,
    )


def _fmt_size(nbytes: int) -> str:
    for unit, scale in (("MiB", 1 << 20), ("KiB", 1 << 10)):
        if nbytes >= scale:
            value = nbytes / scale
            return f"{value:g} {unit}"
    return f"{nbytes} B"


def render(result: NcclAblationResult) -> str:
    speedups = protocol_speedups(result.selection)
    blocks: List[str] = []

    blocks.append(render_table(
        ["Message size", "Algorithm", "Protocol", "Predicted (us)",
         "vs ring+Simple"],
        [
            (
                _fmt_size(row.nbytes),
                row.algorithm,
                row.protocol,
                f"{row.predicted * 1e6:.1f}",
                f"{speedups[row.nbytes]:.2f}x" if row.nbytes in speedups
                else "--",
            )
            for row in result.selection
        ],
        title="NCCL auto-tuner selection by AllReduce message size "
              f"({max(result.num_gpus, 2)} GPUs)",
    ))

    blocks.append(render_table(
        ["From size", "Algorithm", "Protocol"],
        [
            (_fmt_size(point.nbytes), point.algorithm, point.protocol)
            for point in result.crossovers
        ],
        title="Regime crossovers (first size each combo wins)",
    ))

    networks = []
    for row in result.epochs:
        if row.network not in networks:
            networks.append(row.network)
    blocks.append(render_table(
        ["Network"] + [f"{a}+{p}" for a, p in SWEEP_COMBOS],
        [
            tuple([network] + [
                f"{result.epoch(network, a, p):.2f}" for a, p in SWEEP_COMBOS
            ])
            for network in networks
        ],
        title="Epoch time (s) by NCCL algorithm+protocol "
              f"(batch {result.batch_size}, {result.num_gpus} GPUs)",
    ))
    return "\n".join(blocks)
