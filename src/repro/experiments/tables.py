"""Plain-text table rendering used by every experiment."""

from __future__ import annotations

import io
from typing import Callable, Iterable, List, Optional, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
    align_right_from: int = 1,
    max_col_width: Optional[int] = None,
) -> str:
    """Render an aligned text table.

    Columns from index ``align_right_from`` onward are right-aligned
    (numeric convention); earlier columns are left-aligned.  When
    ``max_col_width`` is given, any cell longer than that is truncated
    with ``..`` so a wide grid (e.g. 128-node scaling rows) cannot blow
    out its columns.
    """
    str_rows: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    if max_col_width is not None:
        if max_col_width < 3:
            raise ValueError(f"max_col_width must be >= 3, got {max_col_width}")
        str_rows = [
            [_clip(cell, max_col_width) for cell in row] for row in str_rows
        ]
        headers = [_clip(h, max_col_width) for h in headers]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(row: Sequence[str]) -> str:
        cells = []
        for i, cell in enumerate(row):
            if i >= align_right_from:
                cells.append(cell.rjust(widths[i]))
            else:
                cells.append(cell.ljust(widths[i]))
        return "  ".join(cells).rstrip()

    out = io.StringIO()
    if title:
        out.write(title + "\n")
    header_line = fmt(list(headers))
    out.write(header_line + "\n")
    out.write("-" * len(header_line) + "\n")
    for row in str_rows:
        out.write(fmt(row) + "\n")
    return out.getvalue()


def render_per_network_grid(
    cells: Sequence[object],
    value: Callable[[object], str],
    title: str,
    missing: str = "OOM",
) -> str:
    """One table per network: rows are (method, batch), columns GPU counts.

    Figures 3 and 5 share this exact layout; ``cells`` are any objects
    with ``network`` / ``comm_method`` / ``batch_size`` / ``num_gpus``
    attributes, ``value`` formats one cell, and ``title`` is a format
    string receiving ``network``.  Missing grid cells (e.g. OOM'd
    configurations) render as ``missing``.  Networks and methods keep
    first-appearance order; batches and GPU counts sort ascending.
    """
    cells = list(cells)
    networks = list(dict.fromkeys(c.network for c in cells))
    methods = list(dict.fromkeys(c.comm_method for c in cells))
    batches = sorted({c.batch_size for c in cells})
    gpu_counts = sorted({c.num_gpus for c in cells})
    index = {
        (c.network, c.comm_method, c.batch_size, c.num_gpus): c for c in cells
    }
    out = []
    for network in networks:
        rows: List[List[object]] = []
        for method in methods:
            for batch in batches:
                row: List[object] = [method, batch]
                for gpus in gpu_counts:
                    cell = index.get((network, method, batch, gpus))
                    row.append(missing if cell is None else value(cell))
                rows.append(row)
        out.append(
            render_table(
                ["Method", "Batch", *[f"{g} GPU" for g in gpu_counts]],
                rows,
                title=title.format(network=network),
            )
        )
    return "\n".join(out)


def render_csv(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """The same data as CSV (for plotting outside the library)."""
    lines = [",".join(headers)]
    for row in rows:
        lines.append(",".join(_cell(v) for v in row))
    return "\n".join(lines) + "\n"


def _clip(cell: str, limit: int) -> str:
    return cell if len(cell) <= limit else cell[: limit - 2] + ".."


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.1f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)
