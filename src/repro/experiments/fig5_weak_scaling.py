"""Figure 5: weak scaling.

The dataset grows with GPU count (256K/512K/1024K/2048K images for
1/2/4/8 GPUs), so per-GPU work per epoch is constant and speedup is
measured in throughput (images/second).  The paper's findings: weak
scaling beats strong scaling for every workload, dramatically for
LeNet/AlexNet (the per-epoch CUDA/framework overheads amortize over more
batches) and by less than ~17% for the three large networks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.config import (
    PAPER_BATCH_SIZES,
    PAPER_GPU_COUNTS,
    CommMethodName,
    ScalingMode,
)
from repro.dnn.zoo import PAPER_NETWORKS
from repro.experiments.tables import render_per_network_grid
from repro.runner import SweepRunner, SweepSpec


@dataclass(frozen=True)
class Fig5Cell:
    """One weak-scaling epoch-time measurement."""

    network: str
    comm_method: str
    batch_size: int
    num_gpus: int
    weak_epoch_time: float       # epoch over N x 256K images
    weak_speedup: float          # throughput vs 1 GPU
    strong_speedup: float        # same config under strong scaling


@dataclass(frozen=True)
class Fig5Result:
    """The Figure 5 weak-scaling grid, addressable per cell."""

    cells: Tuple[Fig5Cell, ...]

    def cell(self, network: str, method: str, batch: int, gpus: int) -> Fig5Cell:
        for c in self.cells:
            if (c.network, c.comm_method, c.batch_size, c.num_gpus) == (
                network, method, batch, gpus,
            ):
                return c
        raise KeyError((network, method, batch, gpus))


def sweep_spec(
    networks: Tuple[str, ...] = PAPER_NETWORKS,
    batch_sizes: Tuple[int, ...] = PAPER_BATCH_SIZES,
    gpu_counts: Tuple[int, ...] = PAPER_GPU_COUNTS,
    methods: Tuple[CommMethodName, ...] = (CommMethodName.P2P, CommMethodName.NCCL),
) -> SweepSpec:
    """The weak *and* strong grid (Fig. 5 compares the two per cell)."""
    return SweepSpec.grid(
        "fig5",
        networks=networks,
        comm_methods=methods,
        scalings=(ScalingMode.WEAK, ScalingMode.STRONG),
        batch_sizes=batch_sizes,
        gpu_counts=gpu_counts,
    )


def run(
    runner: Optional[SweepRunner] = None,
    networks: Tuple[str, ...] = PAPER_NETWORKS,
    batch_sizes: Tuple[int, ...] = PAPER_BATCH_SIZES,
    gpu_counts: Tuple[int, ...] = PAPER_GPU_COUNTS,
    methods: Tuple[CommMethodName, ...] = (CommMethodName.P2P, CommMethodName.NCCL),
) -> Fig5Result:
    runner = runner if runner is not None else SweepRunner()
    results = runner.run(sweep_spec(networks, batch_sizes, gpu_counts, methods))
    cells: List[Fig5Cell] = []
    for network in networks:
        for method in methods:
            for batch in batch_sizes:
                weak_base = None
                strong_base = None
                for gpus in gpu_counts:
                    weak = results.result(
                        network=network, comm_method=method, batch_size=batch,
                        num_gpus=gpus, scaling=ScalingMode.WEAK,
                    )
                    strong = results.result(
                        network=network, comm_method=method, batch_size=batch,
                        num_gpus=gpus, scaling=ScalingMode.STRONG,
                    )
                    if weak_base is None:
                        weak_base, strong_base = weak, strong
                    cells.append(
                        Fig5Cell(
                            network=network,
                            comm_method=method.value,
                            batch_size=batch,
                            num_gpus=gpus,
                            weak_epoch_time=weak.epoch_time,
                            weak_speedup=weak.speedup_over(weak_base),
                            strong_speedup=strong.speedup_over(strong_base),
                        )
                    )
    return Fig5Result(cells=tuple(cells))


def render(result: Fig5Result) -> str:
    return render_per_network_grid(
        result.cells,
        lambda c: f"weak x{c.weak_speedup:.2f} / strong x{c.strong_speedup:.2f}",
        title="Figure 5: {network} weak vs strong scaling speedup",
    )
