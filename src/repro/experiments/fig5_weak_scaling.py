"""Figure 5: weak scaling.

The dataset grows with GPU count (256K/512K/1024K/2048K images for
1/2/4/8 GPUs), so per-GPU work per epoch is constant and speedup is
measured in throughput (images/second).  The paper's findings: weak
scaling beats strong scaling for every workload, dramatically for
LeNet/AlexNet (the per-epoch CUDA/framework overheads amortize over more
batches) and by less than ~17% for the three large networks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.config import (
    PAPER_BATCH_SIZES,
    PAPER_GPU_COUNTS,
    CommMethodName,
    ScalingMode,
)
from repro.dnn.zoo import PAPER_NETWORKS
from repro.experiments.runner import RunCache
from repro.experiments.tables import render_table


@dataclass(frozen=True)
class Fig5Cell:
    network: str
    comm_method: str
    batch_size: int
    num_gpus: int
    weak_epoch_time: float       # epoch over N x 256K images
    weak_speedup: float          # throughput vs 1 GPU
    strong_speedup: float        # same config under strong scaling


@dataclass(frozen=True)
class Fig5Result:
    cells: Tuple[Fig5Cell, ...]

    def cell(self, network: str, method: str, batch: int, gpus: int) -> Fig5Cell:
        for c in self.cells:
            if (c.network, c.comm_method, c.batch_size, c.num_gpus) == (
                network, method, batch, gpus,
            ):
                return c
        raise KeyError((network, method, batch, gpus))


def run(
    cache: Optional[RunCache] = None,
    networks: Tuple[str, ...] = PAPER_NETWORKS,
    batch_sizes: Tuple[int, ...] = PAPER_BATCH_SIZES,
    gpu_counts: Tuple[int, ...] = PAPER_GPU_COUNTS,
    methods: Tuple[CommMethodName, ...] = (CommMethodName.P2P, CommMethodName.NCCL),
) -> Fig5Result:
    cache = cache if cache is not None else RunCache()
    cells: List[Fig5Cell] = []
    for network in networks:
        for method in methods:
            for batch in batch_sizes:
                weak_base = None
                strong_base = None
                for gpus in gpu_counts:
                    weak = cache.get(network, batch, gpus, method, ScalingMode.WEAK)
                    strong = cache.get(network, batch, gpus, method, ScalingMode.STRONG)
                    if weak_base is None:
                        weak_base, strong_base = weak, strong
                    cells.append(
                        Fig5Cell(
                            network=network,
                            comm_method=method.value,
                            batch_size=batch,
                            num_gpus=gpus,
                            weak_epoch_time=weak.epoch_time,
                            weak_speedup=weak.speedup_over(weak_base),
                            strong_speedup=strong.speedup_over(strong_base),
                        )
                    )
    return Fig5Result(cells=tuple(cells))


def render(result: Fig5Result) -> str:
    out = []
    networks = list(dict.fromkeys(c.network for c in result.cells))
    methods = list(dict.fromkeys(c.comm_method for c in result.cells))
    batches = sorted({c.batch_size for c in result.cells})
    gpu_counts = sorted({c.num_gpus for c in result.cells})
    for network in networks:
        rows = []
        for method in methods:
            for batch in batches:
                row: List[object] = [method, batch]
                for gpus in gpu_counts:
                    c = result.cell(network, method, batch, gpus)
                    row.append(
                        f"weak x{c.weak_speedup:.2f} / strong x{c.strong_speedup:.2f}"
                    )
                rows.append(row)
        out.append(
            render_table(
                ["Method", "Batch", *[f"{g} GPU" for g in gpu_counts]],
                rows,
                title=f"Figure 5: {network} weak vs strong scaling speedup",
            )
        )
    return "\n".join(out)
