"""Figure 4: breakdown of training time into FP+BP and WU (NCCL).

For every network, batch size and multi-GPU count, the per-epoch time is
split into computation (forward + backward propagation) and communication
(the exposed weight-update stage).  Following the paper, single-GPU WU is
not reported (it is two orders of magnitude below FP+BP) and only the
NCCL-based communication method is profiled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.config import PAPER_BATCH_SIZES, CommMethodName
from repro.dnn.zoo import PAPER_NETWORKS
from repro.experiments.tables import render_table
from repro.runner import SweepRunner, SweepSpec

#: Fig. 4 plots 1-8 GPUs but only reports WU for multi-GPU runs.
FIG4_GPU_COUNTS = (1, 2, 4, 8)


@dataclass(frozen=True)
class Fig4Cell:
    """FP+BP vs WU epoch split for one configuration."""

    network: str
    batch_size: int
    num_gpus: int
    fp_bp_epoch: float
    wu_epoch: float
    sync_percent: float          # cudaStreamSynchronize share of API time

    @property
    def total(self) -> float:
        return self.fp_bp_epoch + self.wu_epoch

    @property
    def wu_share(self) -> float:
        return self.wu_epoch / self.total if self.total else 0.0


@dataclass(frozen=True)
class Fig4Result:
    """The Figure 4 breakdown grid, addressable per cell."""

    cells: Tuple[Fig4Cell, ...]

    def cell(self, network: str, batch: int, gpus: int) -> Fig4Cell:
        for c in self.cells:
            if (c.network, c.batch_size, c.num_gpus) == (network, batch, gpus):
                return c
        raise KeyError((network, batch, gpus))


def sweep_spec(
    networks: Tuple[str, ...] = PAPER_NETWORKS,
    batch_sizes: Tuple[int, ...] = PAPER_BATCH_SIZES,
    gpu_counts: Tuple[int, ...] = FIG4_GPU_COUNTS,
) -> SweepSpec:
    """The declarative grid behind Figure 4 (NCCL only)."""
    return SweepSpec.grid(
        "fig4",
        networks=networks,
        comm_methods=(CommMethodName.NCCL,),
        batch_sizes=batch_sizes,
        gpu_counts=gpu_counts,
    )


def run(
    runner: Optional[SweepRunner] = None,
    networks: Tuple[str, ...] = PAPER_NETWORKS,
    batch_sizes: Tuple[int, ...] = PAPER_BATCH_SIZES,
    gpu_counts: Tuple[int, ...] = FIG4_GPU_COUNTS,
) -> Fig4Result:
    runner = runner if runner is not None else SweepRunner()
    results = runner.run(sweep_spec(networks, batch_sizes, gpu_counts))
    cells: List[Fig4Cell] = []
    for outcome in results:
        c = outcome.point.config
        result = outcome.result
        wu = result.epoch_wu_time if c.num_gpus > 1 else 0.0
        cells.append(
            Fig4Cell(
                network=c.network,
                batch_size=c.batch_size,
                num_gpus=c.num_gpus,
                fp_bp_epoch=result.epoch_fp_bp_time,
                wu_epoch=wu,
                sync_percent=result.apis.percent_of("cudaStreamSynchronize"),
            )
        )
    return Fig4Result(cells=tuple(cells))


def render(result: Fig4Result) -> str:
    out = []
    networks = list(dict.fromkeys(c.network for c in result.cells))
    for network in networks:
        rows = []
        for cell in result.cells:
            if cell.network != network:
                continue
            rows.append(
                (
                    f"({cell.num_gpus},{cell.batch_size})",
                    f"{cell.fp_bp_epoch:.2f}",
                    f"{cell.wu_epoch:.2f}" if cell.num_gpus > 1 else "-",
                    f"{100 * cell.wu_share:.1f}%" if cell.num_gpus > 1 else "-",
                )
            )
        out.append(
            render_table(
                ["(GPUs, Batch)", "FP+BP (s)", "WU (s)", "WU share"],
                rows,
                title=f"Figure 4: {network} computation vs communication per epoch",
            )
        )
    return "\n".join(out)
