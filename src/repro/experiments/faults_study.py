"""Extension study: degradation sensitivity under injected faults.

The paper profiles a *healthy* DGX-1V; production clusters are not.  This
study replays the paper's NCCL training sweep under the
:mod:`repro.faults` scenarios -- degraded and failed NVLinks (forcing an
NCCL re-ring, in the worst case onto the PCIe tree), thermal stragglers,
ECC-retry storms, and a mid-epoch worker crash under each resilience
policy -- and reports how epoch time and the communication (WU) share
respond per network and GPU count.

Every scenario is an explicit, deterministic :class:`FaultPlan`:
mid-epoch activation times are derived from the *healthy* epoch time of
the same configuration (itself deterministic), so the whole study is
reproducible bit-for-bit and caches cleanly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.config import CommMethodName, SimulationConfig, TrainingConfig
from repro.experiments.tables import render_table
from repro.faults import (
    CrashFault,
    EccFault,
    FaultPlan,
    LinkFault,
    ResiliencePolicy,
    StragglerFault,
)
from repro.runner import SweepPoint, SweepRunner, SweepSpec
from repro.topology import build_dgx1v
from repro.topology.links import LinkType

#: Fraction of the healthy epoch at which mid-epoch faults activate.
FAULT_AT_FRACTION = 0.3

#: Link bandwidth-degradation severities swept (0.0 = outright failure).
LINK_SEVERITIES = (0.5, 0.25, 0.0)

#: Straggler slowdown factors swept.
STRAGGLER_SEVERITIES = (1.5, 2.0)


@dataclass(frozen=True)
class FaultCell:
    """One (configuration, scenario) outcome."""

    network: str
    num_gpus: int
    scenario: str
    epoch_time: float
    wu_share: float              # exposed-WU fraction of the epoch
    overhead: float              # transition + recovery + checkpoint seconds
    segments: int                # constant-fault-set windows simulated
    uses_pcie: bool              # final ring fell back to the PCIe tree
    policy: str                  # resilience policy label ("-" if unused)

    @property
    def key(self) -> Tuple[str, int, str]:
        return (self.network, self.num_gpus, self.scenario)


@dataclass(frozen=True)
class FaultsStudyResult:
    """The degradation-sensitivity grid, addressable per cell."""

    batch_size: int
    cells: Tuple[FaultCell, ...]

    def cell(self, network: str, gpus: int, scenario: str) -> FaultCell:
        for c in self.cells:
            if c.key == (network, gpus, scenario):
                return c
        raise KeyError((network, gpus, scenario))

    def slowdown(self, cell: FaultCell) -> float:
        """Epoch-time ratio of ``cell`` over its healthy twin."""
        healthy = self.cell(cell.network, cell.num_gpus, "healthy")
        return cell.epoch_time / healthy.epoch_time if healthy.epoch_time else 0.0


def _ring_link(topology, a: int = 0, b: int = 1) -> str:
    """A deterministic NVLink between two adjacent GPUs (sorted-first)."""
    node_a, node_b = topology.gpu(a), topology.gpu(b)
    names = sorted(
        link.name
        for link in topology.links_of(node_a)
        if link.link_type is LinkType.NVLINK and node_b in link.endpoints()
    )
    if not names:
        raise KeyError(f"no NVLink between gpu{a} and gpu{b}")
    return names[0]


def scenarios(
    topology, num_gpus: int, at: float, crash_iteration: int,
) -> Tuple[Tuple[str, Optional[FaultPlan]], ...]:
    """The ordered (label, plan) scenario list for one configuration.

    ``at`` is the mid-epoch activation time (seconds); link and crash
    scenarios need more than one GPU and are skipped on a single GPU.
    """
    out: List[Tuple[str, Optional[FaultPlan]]] = [("healthy", None)]
    link = _ring_link(topology) if num_gpus > 1 else None
    if link is not None:
        for scale in LINK_SEVERITIES:
            label = "link down" if scale == 0.0 else f"link x{scale:g}"
            out.append(
                (label, FaultPlan.single_link(link, bandwidth_scale=scale, at=at))
            )
        out.append(
            ("gpu0 isolated", FaultPlan.isolate_gpu(topology, 0, at=at))
        )
    for factor in STRAGGLER_SEVERITIES:
        out.append((
            f"straggler x{factor:g}",
            FaultPlan(stragglers=(StragglerFault(gpu=0, factor=factor, at=at),)),
        ))
    out.append((
        "ecc storm",
        FaultPlan(ecc_faults=(EccFault(gpu=0, at=at),)),
    ))
    if num_gpus > 1:
        crash = CrashFault(gpu=num_gpus - 1, at_iteration=crash_iteration)
        out.append((
            "crash->shrink",
            FaultPlan(crashes=(crash,), policy=ResiliencePolicy.SHRINK),
        ))
        out.append((
            "crash->restart",
            FaultPlan(crashes=(crash,),
                      policy=ResiliencePolicy.CHECKPOINT_RESTART),
        ))
    return tuple(out)


def healthy_spec(
    networks: Tuple[str, ...],
    gpu_counts: Tuple[int, ...],
    batch_size: int,
) -> SweepSpec:
    """Phase 1: the healthy baselines the fault times are derived from."""
    return SweepSpec.grid(
        "faults-healthy",
        networks=networks,
        comm_methods=(CommMethodName.NCCL,),
        batch_sizes=(batch_size,),
        gpu_counts=gpu_counts,
    )


def fault_spec(
    networks: Tuple[str, ...],
    gpu_counts: Tuple[int, ...],
    batch_size: int,
    healthy_epochs: Dict[Tuple[str, int], float],
) -> SweepSpec:
    """Phase 2: every fault scenario as an explicit sweep point."""
    topology = build_dgx1v()
    points = []
    for network in networks:
        for gpus in gpu_counts:
            config = TrainingConfig(network, batch_size, gpus,
                                    comm_method=CommMethodName.NCCL)
            at = round(healthy_epochs[(network, gpus)] * FAULT_AT_FRACTION, 3)
            crash_iteration = max(1, config.iterations_per_epoch // 2)
            for label, plan in scenarios(topology, gpus, at, crash_iteration):
                if plan is None:
                    continue  # healthy baseline already ran in phase 1
                points.append(SweepPoint.make(
                    config,
                    overrides={"faults": plan},
                    tags={"scenario": label},
                ))
    return SweepSpec.explicit("faults", points)


def run(
    networks: Tuple[str, ...] = ("alexnet", "resnet"),
    gpu_counts: Tuple[int, ...] = (4, 8),
    batch_size: int = 16,
    sim: Optional[SimulationConfig] = None,
    runner: Optional[SweepRunner] = None,
) -> FaultsStudyResult:
    if runner is None:
        runner = SweepRunner(sim=sim or SimulationConfig())

    cells: List[FaultCell] = []
    healthy_epochs: Dict[Tuple[str, int], float] = {}
    for outcome in runner.run(healthy_spec(networks, gpu_counts, batch_size)):
        c = outcome.point.config
        r = outcome.result
        healthy_epochs[(c.network, c.num_gpus)] = r.epoch_time
        cells.append(FaultCell(
            network=c.network, num_gpus=c.num_gpus, scenario="healthy",
            epoch_time=r.epoch_time,
            wu_share=r.stages.wu / r.iteration_time if r.iteration_time else 0.0,
            overhead=0.0, segments=1, uses_pcie=False, policy="-",
        ))

    spec = fault_spec(networks, gpu_counts, batch_size, healthy_epochs)
    for outcome in runner.run(spec):
        c = outcome.point.config
        r = outcome.result
        summary = r.faults
        uses_pcie = bool(summary.segments and summary.segments[-1].ring_uses_pcie)
        policy = (str(summary.policy)
                  if summary.crashed_gpu is not None else "-")
        # Stage means come from the dominant segment, so the WU share is
        # taken against that segment's own mean iteration (the
        # cross-segment epoch mean would let the ratio exceed 100%).
        dominant = max(summary.segments, key=lambda s: s.iterations)
        cells.append(FaultCell(
            network=c.network, num_gpus=c.num_gpus,
            scenario=outcome.point.tag_dict()["scenario"],
            epoch_time=r.epoch_time,
            wu_share=(r.stages.wu / dominant.mean_iteration
                      if dominant.mean_iteration else 0.0),
            overhead=summary.overhead,
            segments=len(summary.segments),
            uses_pcie=uses_pcie,
            policy=policy,
        ))
    return FaultsStudyResult(batch_size=batch_size, cells=tuple(cells))


def render(result: FaultsStudyResult) -> str:
    out = []
    combos = list(dict.fromkeys((c.network, c.num_gpus) for c in result.cells))
    for network, gpus in combos:
        rows = []
        for cell in result.cells:
            if (cell.network, cell.num_gpus) != (network, gpus):
                continue
            rows.append((
                cell.scenario,
                f"{cell.epoch_time:8.2f}",
                f"x{result.slowdown(cell):.2f}",
                f"{100 * cell.wu_share:5.1f}%",
                f"{cell.overhead:6.2f}",
                str(cell.segments),
                "pcie" if cell.uses_pcie else "nvlink",
                cell.policy,
            ))
        out.append(render_table(
            ["Scenario", "Epoch (s)", "vs healthy", "WU share",
             "Overhead (s)", "Segs", "Ring", "Policy"],
            rows,
            title=(
                f"Fault degradation sensitivity: {network}, {gpus} GPUs, "
                f"batch {result.batch_size} (NCCL)"
            ),
            align_right_from=1,
        ))
    return "\n".join(out)
