"""Command-line driver: regenerate any table or figure of the paper.

Usage::

    repro-experiments table1 fig2          # specific artifacts
    repro-experiments all                  # everything
    repro-experiments fig3 --fast          # reduced sweep for a quick look
    repro-experiments fig4 -o results/     # also write the text output
    repro-experiments all --jobs 4         # simulate on 4 worker processes
    repro-experiments all --no-cache       # ignore the persistent cache

``--fast`` restricts sweeps to batch 16 and {1, 4} GPUs, which keeps the
whole run under a few seconds while preserving the qualitative shapes.

Every sweep executes through one shared :class:`~repro.runner.SweepRunner`:
``--jobs N`` fans simulations out over a process pool (the simulator is
deterministic, so output is identical to a serial run), and results are
persisted as JSON under ``--cache-dir`` (default ``results/cache``) keyed
by a content hash of the full configuration -- a second invocation
re-renders every table without running a single simulation.  Timing and
cache statistics go to stderr; stdout carries only the artifacts.

The ``obs`` (alias ``trace``) subcommand profiles one training run with
the full observability stack and exports it in any combination of
formats::

    repro-experiments obs --network resnet --gpus 4 --comm nccl \\
        --formats prometheus,jsonl,chrome,csv -o results/obs
    repro-experiments trace --network alexnet --print-gpu-summary

The ``selfcheck`` subcommand re-runs the paper's headline sweeps under
strict physical-invariant verification (:mod:`repro.checks`) and prints
a per-invariant pass/violation report::

    repro-experiments selfcheck --fast

The ``bench`` subcommand times the simulator itself (:mod:`repro.perf`)
and writes the ``BENCH_*.json`` performance-trajectory document, while
``--self-profile TRACE`` profiles any experiment run and exports a
Chrome trace of simulator self-time::

    repro-experiments bench --profile all -o BENCH_6.json
    repro-experiments fig3 --fast --self-profile self.trace.json
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time
from typing import Callable, Dict, Optional

from repro.experiments import (
    ablations,
    async_study,
    bandwidth_sweep,
    capacity_study,
    cluster_faults,
    cluster_scaling,
    faults_study,
    multinode_study,
    nccl_ablation,
    strategies as strategies_study,
    fig2_topology,
    fig3_training_time,
    fig4_breakdown,
    fig5_weak_scaling,
    table1_networks,
    table2_nccl_overhead,
    table3_sync_overhead,
    table4_memory,
)
from repro.runner import ResultStore, SweepRunner

FAST_BATCHES = (16,)
FAST_GPUS = (1, 4)

DEFAULT_CACHE_DIR = pathlib.Path("results/cache")


def _run_experiment(name: str, cache: SweepRunner, fast: bool) -> str:
    if name == "table1":
        return table1_networks.render(table1_networks.run())
    if name == "fig2":
        return fig2_topology.render(fig2_topology.run())
    if name == "fig3":
        kwargs = dict(batch_sizes=FAST_BATCHES, gpu_counts=FAST_GPUS) if fast else {}
        return fig3_training_time.render(fig3_training_time.run(cache, **kwargs))
    if name == "table2":
        kwargs = dict(batch_sizes=FAST_BATCHES) if fast else {}
        return table2_nccl_overhead.render(table2_nccl_overhead.run(cache, **kwargs))
    if name == "fig4":
        kwargs = dict(batch_sizes=FAST_BATCHES, gpu_counts=FAST_GPUS) if fast else {}
        return fig4_breakdown.render(fig4_breakdown.run(cache, **kwargs))
    if name == "table3":
        kwargs = dict(batch_sizes=FAST_BATCHES, gpu_counts=FAST_GPUS) if fast else {}
        return table3_sync_overhead.render(table3_sync_overhead.run(cache, **kwargs))
    if name == "table4":
        return table4_memory.render(table4_memory.run(runner=cache))
    if name == "fig5":
        kwargs = dict(batch_sizes=FAST_BATCHES, gpu_counts=FAST_GPUS) if fast else {}
        return fig5_weak_scaling.render(fig5_weak_scaling.run(cache, **kwargs))
    if name == "ablate":
        networks = ("alexnet",) if fast else ("alexnet", "inception-v3")
        return ablations.render(ablations.run(networks=networks, runner=cache))
    if name == "async":
        kwargs = dict(networks=("lenet",), gpu_counts=(2, 4)) if fast else {}
        return async_study.render(async_study.run(runner=cache, **kwargs))
    if name == "capacity":
        kwargs = dict(networks=("resnet",), num_gpus=4) if fast else {}
        return capacity_study.render(capacity_study.run(runner=cache, **kwargs))
    if name == "faults":
        kwargs = (
            dict(networks=("alexnet",), gpu_counts=(4,)) if fast else {}
        )
        return faults_study.render(faults_study.run(runner=cache, **kwargs))
    if name == "report":
        from repro.experiments import report as report_module

        return report_module.generate(cache, fast=fast)
    if name == "multinode":
        kwargs = dict(networks=("resnet",), node_counts=(1, 2)) if fast else {}
        return multinode_study.render(multinode_study.run(runner=cache, **kwargs))
    if name == "cluster":
        kwargs = (
            dict(networks=("resnet",), node_counts=(1, 2, 128)) if fast else {}
        )
        return cluster_scaling.render(
            cluster_scaling.run(runner=cache, **kwargs))
    if name == "cluster-faults":
        kwargs = (
            dict(networks=("alexnet",), node_counts=(2,)) if fast else {}
        )
        return cluster_faults.render(
            cluster_faults.run(runner=cache, **kwargs))
    if name == "nccl":
        kwargs = dict(networks=("alexnet",)) if fast else {}
        return nccl_ablation.render(nccl_ablation.run(runner=cache, **kwargs))
    if name == "strategies":
        kwargs = (
            dict(networks=("lenet", "alexnet"), batch_size=16)
            if fast else {}
        )
        return strategies_study.render(
            strategies_study.run(runner=cache, **kwargs))
    if name == "validate":
        from repro.analysis import validation

        report = validation.validate(cache)
        return validation.render(report)
    if name == "bandwidth":
        kwargs = (
            dict(networks=("alexnet",), scales=(1.0, 4.0), num_gpus=4)
            if fast else {}
        )
        return bandwidth_sweep.render(bandwidth_sweep.run(runner=cache, **kwargs))
    raise SystemExit(f"unknown experiment {name!r}")


EXPERIMENTS = (
    "table1", "fig2", "fig3", "table2", "fig4", "table3", "table4", "fig5",
    "ablate", "async", "bandwidth", "capacity", "cluster", "cluster-faults",
    "faults", "multinode", "nccl", "strategies", "validate", "report",
)

OBS_FORMATS = ("prometheus", "jsonl", "chrome", "csv", "summary")


def all_subcommands() -> tuple:
    """Every name ``repro-experiments`` accepts as its first argument.

    The docs gate (``tools/check_docs.py``) compares this list against the
    CLI reference in ``docs/API.md``, so the two cannot drift apart.
    """
    return EXPERIMENTS + ("all", "obs", "trace", "selfcheck", "bench", "serve")


def obs_main(argv: Optional[list] = None) -> int:
    """``repro-experiments obs``: profile one run, export every format."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments obs",
        description="Profile one training run with the repro.obs stack and "
                    "export metrics/events (Prometheus, JSONL, Chrome trace, "
                    "CSV, nvprof-style summary).",
    )
    parser.add_argument("--network", default="resnet",
                        help="network to train (default: resnet)")
    parser.add_argument("--batch", type=int, default=16, help="batch size")
    parser.add_argument("--gpus", type=int, default=4, help="GPU count")
    parser.add_argument("--comm", default="nccl",
                        help="communication method (p2p, nccl, nccl-allreduce)")
    parser.add_argument("--warmup", type=int, default=1,
                        help="warm-up iterations excluded from measurement")
    parser.add_argument("--iterations", type=int, default=2,
                        help="measured iterations")
    parser.add_argument("--formats", default="prometheus,jsonl,chrome",
                        help=f"comma list of {', '.join(OBS_FORMATS)}, or 'all'")
    parser.add_argument("--print-gpu-summary", action="store_true",
                        help="print the nvprof-style GPU summary report")
    parser.add_argument("-o", "--output-dir", type=pathlib.Path,
                        default=pathlib.Path("results/obs"),
                        help="directory for exported artifacts")
    parser.add_argument("--debug", action="store_true",
                        help="show the full traceback on simulation errors "
                             "instead of a one-line message")
    args = parser.parse_args(argv)

    formats = (
        list(OBS_FORMATS) if args.formats == "all"
        else [f.strip() for f in args.formats.split(",") if f.strip()]
    )
    for fmt in formats:
        if fmt not in OBS_FORMATS:
            parser.error(f"unknown format {fmt!r}; choose from {OBS_FORMATS}")

    from repro.core.config import CommMethodName, SimulationConfig, TrainingConfig
    from repro.core.errors import ReproError
    from repro.obs import (
        ObsSession,
        render_gpu_summary,
        render_prometheus,
        write_profile_csv,
    )
    from repro.profile import export_chrome_trace
    from repro.train import Trainer

    try:
        comm = CommMethodName(args.comm)
    except ValueError:
        parser.error(f"unknown comm method {args.comm!r}; choose from "
                     f"{tuple(m.value for m in CommMethodName)}")
    session = ObsSession()
    try:
        config = TrainingConfig(args.network, args.batch, args.gpus,
                                comm_method=comm)
        trainer = Trainer(
            config,
            sim=SimulationConfig(warmup_iterations=args.warmup,
                                 measure_iterations=args.iterations),
            keep_profiler=True,
            obs=session,
        )
        result = trainer.run()
    except ReproError as exc:
        if args.debug:
            raise
        print(f"error: {exc}", file=sys.stderr)
        return 2
    profiler = result.profiler

    stem = f"{args.network}_b{args.batch}_g{args.gpus}_{args.comm}"
    out_dir = args.output_dir
    out_dir.mkdir(parents=True, exist_ok=True)
    print(f"profiled {config.describe()}: "
          f"iteration = {result.iteration_time * 1e3:.2f} ms, "
          f"{len(profiler.kernels)} kernels, "
          f"{len(profiler.transfers)} transfers, "
          f"{len(session.recorder.events)} bus events")

    if "prometheus" in formats:
        path = out_dir / f"{stem}.prom"
        path.write_text(render_prometheus(session.registry))
        print(f"wrote {path} (Prometheus text format)")
    if "jsonl" in formats:
        path = out_dir / f"{stem}.jsonl"
        with path.open("w") as fp:
            lines = session.recorder.write(fp)
        print(f"wrote {path} ({lines} events)")
    if "chrome" in formats:
        path = out_dir / f"{stem}.trace.json"
        with path.open("w") as fp:
            export_chrome_trace(profiler, fp)
        print(f"wrote {path} (open in chrome://tracing or ui.perfetto.dev)")
    if "csv" in formats:
        path = out_dir / f"{stem}.csv"
        with path.open("w") as fp:
            rows = write_profile_csv(profiler, fp)
        print(f"wrote {path} ({rows} rows)")
    if "summary" in formats or args.print_gpu_summary:
        print(render_gpu_summary(profiler))
    return 0


def main(argv: Optional[list] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] in ("obs", "trace"):
        return obs_main(list(argv[1:]))
    if argv and argv[0] == "selfcheck":
        from repro.experiments import selfcheck

        return selfcheck.main(list(argv[1:]))
    if argv and argv[0] == "bench":
        from repro.experiments import bench

        return bench.main(list(argv[1:]))
    if argv and argv[0] == "serve":
        from repro.service import server

        return server.main(list(argv[1:]))
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures from simulation "
                    "(or profile one run via the 'obs'/'trace' subcommand). "
                    "All sweeps share one runner: --jobs parallelizes the "
                    "simulations, and finished results are cached on disk so "
                    "repeat invocations are instant.",
    )
    parser.add_argument(
        "experiments", nargs="+",
        help=f"any of {', '.join(EXPERIMENTS)}, or 'all' "
             "(or: obs/trace [--help] for the observability exporter, "
             "selfcheck [--help] for strict invariant verification, "
             "bench [--help] for the simulator bench harness, "
             "serve [--help] for the resilient sweep service)",
    )
    parser.add_argument("--fast", action="store_true",
                        help="reduced sweep (batch 16, 1 and 4 GPUs)")
    parser.add_argument("-o", "--output-dir", type=pathlib.Path, default=None,
                        help="also write each artifact to <dir>/<name>.txt")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="run simulations on N worker processes "
                             "(default: 1, serial; output is identical)")
    parser.add_argument("--cache-dir", type=pathlib.Path,
                        default=DEFAULT_CACHE_DIR, metavar="DIR",
                        help="persistent result cache directory "
                             f"(default: {DEFAULT_CACHE_DIR})")
    parser.add_argument("--no-cache", action="store_true",
                        help="neither read nor write the persistent cache")
    parser.add_argument("--progress", action="store_true",
                        help="print per-simulation progress (with live "
                             "throughput and ETA) to stderr")
    parser.add_argument("--self-profile", type=pathlib.Path, default=None,
                        metavar="TRACE",
                        help="profile the simulator itself: write a Chrome "
                             "trace of simulator self-time to TRACE and "
                             "print a span report to stderr")
    parser.add_argument("--invariants", choices=("off", "warn", "strict"),
                        default="off", metavar="MODE",
                        help="physical-invariant verification for executed "
                             "simulations: off (default), warn (record and "
                             "report violations) or strict (a violation "
                             "fails the point)")
    parser.add_argument("--strict-invariants", action="store_true",
                        help="shorthand for --invariants strict")
    parser.add_argument("--debug", action="store_true",
                        help="show the full traceback on simulation errors "
                             "instead of a one-line message")
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    invariants = "strict" if args.strict_invariants else args.invariants

    names = list(EXPERIMENTS) if "all" in args.experiments else args.experiments
    for name in names:
        if name not in EXPERIMENTS:
            parser.error(f"unknown experiment {name!r}; choose from {EXPERIMENTS}")

    from repro.core.errors import ReproError, SweepInterrupted

    if args.self_profile is not None:
        from repro.perf.spans import PERF

        PERF.reset()
        PERF.enable()
    cache = _build_runner(args.jobs, args.cache_dir, args.no_cache,
                          args.progress, invariants)
    try:
        for name in names:
            start = time.perf_counter()
            text = _run_experiment(name, cache, args.fast)
            elapsed = time.perf_counter() - start
            print(f"==== {name} " + "=" * 40)
            print(text)
            print(f"{name}: {elapsed:.1f}s ({cache.stats.describe()})",
                  file=sys.stderr)
            if args.output_dir is not None:
                args.output_dir.mkdir(parents=True, exist_ok=True)
                (args.output_dir / f"{name}.txt").write_text(text)
    except (SweepInterrupted, KeyboardInterrupt) as exc:
        # The runner already flushed completed points and reported the
        # partial tally; use the conventional SIGINT exit status.
        if isinstance(exc, SweepInterrupted):
            print(f"interrupted: {exc}", file=sys.stderr)
        return 130
    except ReproError as exc:
        if args.debug:
            raise
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"total: {cache.stats.describe()}", file=sys.stderr)
    timing = cache.stats.describe_timing()
    if timing is not None:
        print(timing, file=sys.stderr)
    fault_line = cache.stats.describe_faults()
    if fault_line is not None:
        print(fault_line, file=sys.stderr)
    if invariants != "off":
        violated = sum(v[1] for v in cache.check_stats.values())
        checked = sum(v[0] for v in cache.check_stats.values())
        print(f"invariants ({invariants}): {checked} checks, "
              f"{violated} violation(s)", file=sys.stderr)
    if args.self_profile is not None:
        _write_self_profile(args.self_profile)
    return 0


def _write_self_profile(path: pathlib.Path) -> None:
    """Export the enabled :data:`PERF` profiler and report to stderr."""
    from repro.perf.spans import PERF, render_perf_report
    from repro.perf.trace import export_perf_chrome_trace

    if path.parent != pathlib.Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fp:
        export_perf_chrome_trace(PERF, fp)
    print(render_perf_report(PERF, top=15), file=sys.stderr)
    print(f"self-profile trace: {path} (open in ui.perfetto.dev)",
          file=sys.stderr)
    PERF.disable()


def _build_runner(jobs: int, cache_dir: pathlib.Path, no_cache: bool,
                  progress: bool, invariants: str = "off") -> SweepRunner:
    """One shared runner for every requested experiment."""
    store = None if no_cache else ResultStore(cache_dir)
    bus = None
    if progress:
        from repro.obs.bus import EventBus
        from repro.obs.events import SweepPointDone, SweepPointOom

        bus = EventBus()
        printer = _ProgressPrinter()
        bus.subscribe(SweepPointDone, printer)
        bus.subscribe(SweepPointOom, printer)
    return SweepRunner(jobs=jobs, store=store, bus=bus, invariants=invariants)


class _ProgressPrinter:
    """Per-point progress lines with live throughput and ETA.

    One instance is subscribed to both ``SweepPointDone`` and
    ``SweepPointOom``; it keeps a wall-clock anchor per sweep name, so
    throughput is points finished since that sweep's first completion and
    the ETA extrapolates it over the points still outstanding.
    """

    def __init__(self) -> None:
        self._anchors: Dict[str, float] = {}
        self._finished: Dict[str, int] = {}

    def _pace(self, event) -> str:
        anchor = self._anchors.setdefault(event.sweep, time.perf_counter())
        done = self._finished.get(event.sweep, 0) + 1
        self._finished[event.sweep] = done
        window = time.perf_counter() - anchor
        if done < 2 or window <= 0:
            return ""
        # The anchor is the *first* completion, so pace covers done-1 points.
        rate = (done - 1) / window
        remaining = event.total - (event.index + 1)
        if remaining <= 0:
            return f" [{rate:.1f} pt/s]"
        return f" [{rate:.1f} pt/s, ETA {remaining / rate:.0f}s]"

    def __call__(self, event) -> None:
        from repro.obs.events import SweepPointOom

        status = ("OOM" if isinstance(event, SweepPointOom)
                  else event.source if event.source != "executed"
                  else f"{event.elapsed:.2f}s")
        print(f"  [{event.sweep} {event.index + 1}/{event.total}] "
              f"{event.label}: {status}{self._pace(event)}", file=sys.stderr)


def _print_progress(event) -> None:
    """One stateless progress line (kept for ad-hoc bus subscribers)."""
    _ProgressPrinter()(event)


if __name__ == "__main__":
    sys.exit(main())
