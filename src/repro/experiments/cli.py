"""Command-line driver: regenerate any table or figure of the paper.

Usage::

    repro-experiments table1 fig2          # specific artifacts
    repro-experiments all                  # everything
    repro-experiments fig3 --fast          # reduced sweep for a quick look
    repro-experiments fig4 -o results/     # also write the text output

``--fast`` restricts sweeps to batch 16 and {1, 4} GPUs, which keeps the
whole run under a few seconds while preserving the qualitative shapes.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time
from typing import Callable, Dict, Optional

from repro.experiments import (
    ablations,
    async_study,
    bandwidth_sweep,
    capacity_study,
    multinode_study,
    fig2_topology,
    fig3_training_time,
    fig4_breakdown,
    fig5_weak_scaling,
    table1_networks,
    table2_nccl_overhead,
    table3_sync_overhead,
    table4_memory,
)
from repro.experiments.runner import RunCache

FAST_BATCHES = (16,)
FAST_GPUS = (1, 4)


def _run_experiment(name: str, cache: RunCache, fast: bool) -> str:
    if name == "table1":
        return table1_networks.render(table1_networks.run())
    if name == "fig2":
        return fig2_topology.render(fig2_topology.run())
    if name == "fig3":
        kwargs = dict(batch_sizes=FAST_BATCHES, gpu_counts=FAST_GPUS) if fast else {}
        return fig3_training_time.render(fig3_training_time.run(cache, **kwargs))
    if name == "table2":
        kwargs = dict(batch_sizes=FAST_BATCHES) if fast else {}
        return table2_nccl_overhead.render(table2_nccl_overhead.run(cache, **kwargs))
    if name == "fig4":
        kwargs = dict(batch_sizes=FAST_BATCHES, gpu_counts=FAST_GPUS) if fast else {}
        return fig4_breakdown.render(fig4_breakdown.run(cache, **kwargs))
    if name == "table3":
        kwargs = dict(batch_sizes=FAST_BATCHES, gpu_counts=FAST_GPUS) if fast else {}
        return table3_sync_overhead.render(table3_sync_overhead.run(cache, **kwargs))
    if name == "table4":
        return table4_memory.render(table4_memory.run())
    if name == "fig5":
        kwargs = dict(batch_sizes=FAST_BATCHES, gpu_counts=FAST_GPUS) if fast else {}
        return fig5_weak_scaling.render(fig5_weak_scaling.run(cache, **kwargs))
    if name == "ablate":
        networks = ("alexnet",) if fast else ("alexnet", "inception-v3")
        return ablations.render(ablations.run(networks=networks))
    if name == "async":
        kwargs = dict(networks=("lenet",), gpu_counts=(2, 4)) if fast else {}
        return async_study.render(async_study.run(**kwargs))
    if name == "capacity":
        kwargs = dict(networks=("resnet",), num_gpus=4) if fast else {}
        return capacity_study.render(capacity_study.run(**kwargs))
    if name == "report":
        from repro.experiments import report as report_module

        return report_module.generate(cache, fast=fast)
    if name == "multinode":
        kwargs = dict(networks=("resnet",), node_counts=(1, 2)) if fast else {}
        return multinode_study.render(multinode_study.run(**kwargs))
    if name == "validate":
        from repro.analysis import validation

        report = validation.validate(cache)
        return validation.render(report)
    if name == "bandwidth":
        kwargs = (
            dict(networks=("alexnet",), scales=(1.0, 4.0), num_gpus=4)
            if fast else {}
        )
        return bandwidth_sweep.render(bandwidth_sweep.run(**kwargs))
    raise SystemExit(f"unknown experiment {name!r}")


EXPERIMENTS = (
    "table1", "fig2", "fig3", "table2", "fig4", "table3", "table4", "fig5",
    "ablate", "async", "bandwidth", "capacity", "multinode", "validate",
    "report",
)


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures from simulation.",
    )
    parser.add_argument(
        "experiments", nargs="+",
        help=f"any of {', '.join(EXPERIMENTS)}, or 'all'",
    )
    parser.add_argument("--fast", action="store_true",
                        help="reduced sweep (batch 16, 1 and 4 GPUs)")
    parser.add_argument("-o", "--output-dir", type=pathlib.Path, default=None,
                        help="also write each artifact to <dir>/<name>.txt")
    args = parser.parse_args(argv)

    names = list(EXPERIMENTS) if "all" in args.experiments else args.experiments
    for name in names:
        if name not in EXPERIMENTS:
            parser.error(f"unknown experiment {name!r}; choose from {EXPERIMENTS}")

    cache = RunCache()
    for name in names:
        start = time.time()
        text = _run_experiment(name, cache, args.fast)
        elapsed = time.time() - start
        print(f"==== {name} [{elapsed:.1f}s] " + "=" * 40)
        print(text)
        if args.output_dir is not None:
            args.output_dir.mkdir(parents=True, exist_ok=True)
            (args.output_dir / f"{name}.txt").write_text(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
