"""Figure 2: the DGX-1 interconnect topology.

Renders an nvidia-smi ``topo -m`` style connectivity matrix plus the link
inventory, and verifies the structural properties the paper relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.experiments.tables import render_table
from repro.topology import Router, build_dgx1v
from repro.topology.links import LinkType
from repro.topology.system import SystemTopology


@dataclass(frozen=True)
class Fig2Result:
    """The DGX-1V connectivity matrix and link inventory."""

    topology: SystemTopology
    matrix: Tuple[Tuple[str, ...], ...]   # 8x8 connectivity labels
    nvlink_ports_per_gpu: Tuple[int, ...]
    max_hops: int


def _label(topology: SystemTopology, router: Router, a: int, b: int) -> str:
    if a == b:
        return "X"
    link = topology.nvlink_between(topology.gpu(a), topology.gpu(b))
    if link is not None:
        return f"NV{link.width}"
    distance = router.nvlink_distance(topology.gpu(a), topology.gpu(b))
    return "NV-2hop" if distance == 2 else "SYS"


def run() -> Fig2Result:
    topology = build_dgx1v()
    router = Router(topology)
    matrix = tuple(
        tuple(_label(topology, router, a, b) for b in range(8)) for a in range(8)
    )
    ports = tuple(topology.nvlink_port_count(topology.gpu(i)) for i in range(8))
    max_hops = max(
        router.nvlink_distance(topology.gpu(a), topology.gpu(b))
        for a in range(8)
        for b in range(8)
    )
    return Fig2Result(
        topology=topology, matrix=matrix, nvlink_ports_per_gpu=ports, max_hops=max_hops
    )


def render(result: Fig2Result) -> str:
    headers = [""] + [f"GPU{i}" for i in range(8)]
    rows = [
        [f"GPU{i}", *result.matrix[i]]
        for i in range(8)
    ]
    out = render_table(
        headers, rows, title="Figure 2: DGX-1V connectivity (NVx = x NVLink lanes)"
    )
    links = [
        (link.name, link.link_type.value, link.width,
         f"{link.peak_bandwidth() / 1e9:.0f} GB/s")
        for link in result.topology.links
        if link.link_type is LinkType.NVLINK
    ]
    out += "\n" + render_table(
        ["Link", "Type", "Lanes", "Peak/dir"], links, title="NVLink inventory"
    )
    out += (
        f"\nNVLink ports per GPU: {list(result.nvlink_ports_per_gpu)} (6 each)\n"
        f"Maximum NVLink hops between any GPU pair: {result.max_hops}\n"
    )
    return out
