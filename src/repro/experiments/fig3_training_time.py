"""Figure 3: training time per epoch for the full strong-scaling sweep.

Five networks x {P2P, NCCL} x batch {16, 32, 64} x GPUs {1, 2, 4, 8},
256K ImageNet images per epoch.  The paper reports the mean of five
repetitions; the simulator is deterministic, so each cell is one run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.config import PAPER_BATCH_SIZES, PAPER_GPU_COUNTS, CommMethodName
from repro.dnn.zoo import PAPER_NETWORKS
from repro.experiments.runner import RunCache
from repro.experiments.tables import render_table


@dataclass(frozen=True)
class Fig3Cell:
    network: str
    comm_method: str
    batch_size: int
    num_gpus: int
    epoch_time: float
    speedup_vs_1gpu: float


@dataclass(frozen=True)
class Fig3Result:
    cells: Tuple[Fig3Cell, ...]

    def cell(self, network: str, method: str, batch: int, gpus: int) -> Fig3Cell:
        for c in self.cells:
            if (c.network, c.comm_method, c.batch_size, c.num_gpus) == (
                network, method, batch, gpus,
            ):
                return c
        raise KeyError((network, method, batch, gpus))

    def epoch_time(self, network: str, method: str, batch: int, gpus: int) -> float:
        return self.cell(network, method, batch, gpus).epoch_time


def run(
    cache: Optional[RunCache] = None,
    networks: Tuple[str, ...] = PAPER_NETWORKS,
    batch_sizes: Tuple[int, ...] = PAPER_BATCH_SIZES,
    gpu_counts: Tuple[int, ...] = PAPER_GPU_COUNTS,
) -> Fig3Result:
    cache = cache if cache is not None else RunCache()
    cells: List[Fig3Cell] = []
    for network in networks:
        for method in (CommMethodName.P2P, CommMethodName.NCCL):
            for batch in batch_sizes:
                base_epoch: Optional[float] = None
                for gpus in gpu_counts:
                    result = cache.get(network, batch, gpus, method)
                    if base_epoch is None:
                        base_epoch = result.epoch_time
                    speedup = base_epoch / result.epoch_time
                    cells.append(
                        Fig3Cell(
                            network=network,
                            comm_method=method.value,
                            batch_size=batch,
                            num_gpus=gpus,
                            epoch_time=result.epoch_time,
                            speedup_vs_1gpu=speedup,
                        )
                    )
    return Fig3Result(cells=tuple(cells))


def render(result: Fig3Result) -> str:
    out = []
    networks = sorted({c.network for c in result.cells},
                      key=lambda n: [c.network for c in result.cells].index(n))
    batches = sorted({c.batch_size for c in result.cells})
    gpu_counts = sorted({c.num_gpus for c in result.cells})
    for network in networks:
        rows = []
        for method in ("p2p", "nccl"):
            for batch in batches:
                row: List[object] = [method, batch]
                for gpus in gpu_counts:
                    try:
                        cell = result.cell(network, method, batch, gpus)
                    except KeyError:
                        row.append("OOM")
                        continue
                    row.append(f"{cell.epoch_time:8.2f}s (x{cell.speedup_vs_1gpu:.2f})")
                rows.append(row)
        out.append(
            render_table(
                ["Method", "Batch", *[f"{g} GPU" for g in gpu_counts]],
                rows,
                title=f"Figure 3: {network} training time per epoch",
            )
        )
    return "\n".join(out)
