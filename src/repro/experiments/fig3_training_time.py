"""Figure 3: training time per epoch for the full strong-scaling sweep.

Five networks x {P2P, NCCL} x batch {16, 32, 64} x GPUs {1, 2, 4, 8},
256K ImageNet images per epoch.  The paper reports the mean of five
repetitions; the simulator is deterministic, so each cell is one run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.config import PAPER_BATCH_SIZES, PAPER_GPU_COUNTS, CommMethodName
from repro.dnn.zoo import PAPER_NETWORKS
from repro.experiments.tables import render_per_network_grid
from repro.runner import SweepRunner, SweepSpec


@dataclass(frozen=True)
class Fig3Cell:
    """One (network, method, batch, GPUs) epoch-time measurement."""

    network: str
    comm_method: str
    batch_size: int
    num_gpus: int
    epoch_time: float
    speedup_vs_1gpu: float


@dataclass(frozen=True)
class Fig3Result:
    """The full Figure 3 grid, addressable per cell."""

    cells: Tuple[Fig3Cell, ...]

    def cell(self, network: str, method: str, batch: int, gpus: int) -> Fig3Cell:
        for c in self.cells:
            if (c.network, c.comm_method, c.batch_size, c.num_gpus) == (
                network, method, batch, gpus,
            ):
                return c
        raise KeyError((network, method, batch, gpus))

    def epoch_time(self, network: str, method: str, batch: int, gpus: int) -> float:
        return self.cell(network, method, batch, gpus).epoch_time


def sweep_spec(
    networks: Tuple[str, ...] = PAPER_NETWORKS,
    batch_sizes: Tuple[int, ...] = PAPER_BATCH_SIZES,
    gpu_counts: Tuple[int, ...] = PAPER_GPU_COUNTS,
) -> SweepSpec:
    """The declarative grid behind Figure 3."""
    return SweepSpec.grid(
        "fig3",
        networks=networks,
        comm_methods=(CommMethodName.P2P, CommMethodName.NCCL),
        batch_sizes=batch_sizes,
        gpu_counts=gpu_counts,
    )


def run(
    runner: Optional[SweepRunner] = None,
    networks: Tuple[str, ...] = PAPER_NETWORKS,
    batch_sizes: Tuple[int, ...] = PAPER_BATCH_SIZES,
    gpu_counts: Tuple[int, ...] = PAPER_GPU_COUNTS,
) -> Fig3Result:
    runner = runner if runner is not None else SweepRunner()
    results = runner.run(sweep_spec(networks, batch_sizes, gpu_counts))
    # Grid order nests GPU count innermost, so the first outcome of each
    # (network, method, batch) group is the smallest-GPU baseline.
    cells: List[Fig3Cell] = []
    base_epochs = {}
    for outcome in results:
        c = outcome.point.config
        group = (c.network, c.comm_method.value, c.batch_size)
        base = base_epochs.setdefault(group, outcome.result.epoch_time)
        cells.append(
            Fig3Cell(
                network=c.network,
                comm_method=c.comm_method.value,
                batch_size=c.batch_size,
                num_gpus=c.num_gpus,
                epoch_time=outcome.result.epoch_time,
                speedup_vs_1gpu=base / outcome.result.epoch_time,
            )
        )
    return Fig3Result(cells=tuple(cells))


def render(result: Fig3Result) -> str:
    return render_per_network_grid(
        result.cells,
        lambda c: f"{c.epoch_time:8.2f}s (x{c.speedup_vs_1gpu:.2f})",
        title="Figure 3: {network} training time per epoch",
        missing="OOM",
    )
