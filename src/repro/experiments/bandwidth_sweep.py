"""Extension study: does more interconnect bandwidth fix the bottleneck?

The paper's insight: "only increasing the bandwidth of the interconnect
network in the multi-GPU system cannot completely eliminate the
communication bottleneck.  We also need an efficient implementation of DNN
algorithms to take advantage of the high BW interconnect."

This sweep scales every NVLink lane from 0.5x to 8x of its real 25 GB/s
and measures the epoch-time response.  The wire time shrinks with
bandwidth, but per-array launch/dispatch overheads, synchronization, and
compute do not -- so speedups saturate far below the bandwidth ratio,
exactly the paper's point.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.config import CommMethodName, SimulationConfig, TrainingConfig
from repro.experiments.tables import render_table
from repro.runner import SweepPoint, SweepRunner, SweepSpec
from repro.topology import build_dgx1v

#: Lane-bandwidth multipliers swept (1.0 = the real 25 GB/s NVLink 2.0).
BANDWIDTH_SCALES = (0.5, 1.0, 2.0, 4.0, 8.0)


@dataclass(frozen=True)
class BandwidthPoint:
    """Epoch time under one NVLink bandwidth scale factor."""

    network: str
    comm_method: str
    scale: float
    epoch_time: float


@dataclass(frozen=True)
class BandwidthSweepResult:
    """The bandwidth-scaling sweep for both comm methods."""

    num_gpus: int
    batch_size: int
    points: Tuple[BandwidthPoint, ...]

    def epoch(self, network: str, method: str, scale: float) -> float:
        for p in self.points:
            if (p.network, p.comm_method, p.scale) == (network, method, scale):
                return p.epoch_time
        raise KeyError((network, method, scale))

    def gain(self, network: str, method: str, scale: float) -> float:
        """Speedup over the real fabric from scaling bandwidth."""
        return self.epoch(network, method, 1.0) / self.epoch(network, method, scale)


def sweep_spec(
    networks: Tuple[str, ...] = ("alexnet", "googlenet"),
    methods: Tuple[CommMethodName, ...] = (CommMethodName.P2P, CommMethodName.NCCL),
    scales: Tuple[float, ...] = BANDWIDTH_SCALES,
    batch_size: int = 16,
    num_gpus: int = 8,
) -> SweepSpec:
    """Explicit points: each fabric scale needs its own topology builder."""
    return SweepSpec.explicit(
        "bandwidth",
        [
            SweepPoint.make(
                TrainingConfig(network, batch_size, num_gpus, comm_method=method),
                overrides={
                    "topology_builder": functools.partial(
                        build_dgx1v, nvlink_bandwidth_scale=scale
                    ),
                },
                tags={"scale": scale},
            )
            for network in networks
            for method in methods
            for scale in scales
        ],
    )


def run(
    networks: Tuple[str, ...] = ("alexnet", "googlenet"),
    methods: Tuple[CommMethodName, ...] = (CommMethodName.P2P, CommMethodName.NCCL),
    scales: Tuple[float, ...] = BANDWIDTH_SCALES,
    batch_size: int = 16,
    num_gpus: int = 8,
    sim: Optional[SimulationConfig] = None,
    runner: Optional[SweepRunner] = None,
) -> BandwidthSweepResult:
    if runner is None:
        runner = SweepRunner(sim=sim or SimulationConfig())
    results = runner.run(
        sweep_spec(networks, methods, scales, batch_size, num_gpus)
    )
    points = tuple(
        BandwidthPoint(
            network=o.point.config.network,
            comm_method=o.point.config.comm_method.value,
            scale=o.point.tag_dict()["scale"],
            epoch_time=o.result.epoch_time,
        )
        for o in results
    )
    return BandwidthSweepResult(
        num_gpus=num_gpus, batch_size=batch_size, points=points
    )


def render(result: BandwidthSweepResult) -> str:
    networks = list(dict.fromkeys(p.network for p in result.points))
    methods = list(dict.fromkeys(p.comm_method for p in result.points))
    scales = sorted({p.scale for p in result.points})
    rows = []
    for network in networks:
        for method in methods:
            row: List[object] = [network, method]
            for scale in scales:
                epoch = result.epoch(network, method, scale)
                gain = result.gain(network, method, scale)
                row.append(f"{epoch:7.2f}s (x{gain:.2f})")
            rows.append(row)
    return render_table(
        ["Network", "Method", *[f"{s:g}x BW" for s in scales]],
        rows,
        title=(
            f"NVLink bandwidth sweep ({result.num_gpus} GPUs, batch "
            f"{result.batch_size}); gain = speedup over the real 25 GB/s fabric"
        ),
        align_right_from=2,
    )
