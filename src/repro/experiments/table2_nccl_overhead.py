"""Table II: NCCL overhead over P2P on a single GPU.

Even with one GPU, MXNet's NCCL KVStore launches Reduce/Broadcast kernels
per weight array and pays the communicator setup, so its epoch is slower
than the P2P (device KVStore) epoch.  The paper's headline numbers: ~21.8%
for LeNet at batch 16, *rising* with batch size for the small networks and
staying within a few points for the large ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.config import PAPER_BATCH_SIZES, CommMethodName
from repro.dnn.zoo import PAPER_NETWORKS
from repro.experiments.tables import render_table
from repro.runner import SweepRunner, SweepSpec


@dataclass(frozen=True)
class Table2Row:
    """P2P vs NCCL single-GPU epoch times for one (network, batch)."""

    network: str
    batch_size: int
    p2p_epoch: float
    nccl_epoch: float

    @property
    def overhead_percent(self) -> float:
        return 100.0 * (self.nccl_epoch / self.p2p_epoch - 1.0)


@dataclass(frozen=True)
class Table2Result:
    """The Table II overhead grid, addressable per cell."""

    rows: Tuple[Table2Row, ...]

    def overhead(self, network: str, batch_size: int) -> float:
        for row in self.rows:
            if (row.network, row.batch_size) == (network, batch_size):
                return row.overhead_percent
        raise KeyError((network, batch_size))


def sweep_spec(
    networks: Tuple[str, ...] = PAPER_NETWORKS,
    batch_sizes: Tuple[int, ...] = PAPER_BATCH_SIZES,
) -> SweepSpec:
    """The single-GPU P2P-vs-NCCL grid behind Table II."""
    return SweepSpec.grid(
        "table2",
        networks=networks,
        comm_methods=(CommMethodName.P2P, CommMethodName.NCCL),
        batch_sizes=batch_sizes,
        gpu_counts=(1,),
    )


def run(
    runner: Optional[SweepRunner] = None,
    networks: Tuple[str, ...] = PAPER_NETWORKS,
    batch_sizes: Tuple[int, ...] = PAPER_BATCH_SIZES,
) -> Table2Result:
    runner = runner if runner is not None else SweepRunner()
    results = runner.run(sweep_spec(networks, batch_sizes))
    rows: List[Table2Row] = []
    for network in networks:
        for batch in batch_sizes:
            p2p = results.result(
                network=network, batch_size=batch, comm_method=CommMethodName.P2P
            )
            nccl = results.result(
                network=network, batch_size=batch, comm_method=CommMethodName.NCCL
            )
            rows.append(
                Table2Row(
                    network=network,
                    batch_size=batch,
                    p2p_epoch=p2p.epoch_time,
                    nccl_epoch=nccl.epoch_time,
                )
            )
    return Table2Result(rows=tuple(rows))


def render(result: Table2Result) -> str:
    return render_table(
        ["Network", "Batch Size", "P2P epoch (s)", "NCCL epoch (s)", "NCCL Overhead (%)"],
        [
            (
                r.network,
                r.batch_size,
                f"{r.p2p_epoch:.2f}",
                f"{r.nccl_epoch:.2f}",
                f"{r.overhead_percent:.2f}",
            )
            for r in result.rows
        ],
        title="Table II: NCCL overhead compared to P2P on a single GPU",
    )
