"""``repro-experiments selfcheck``: strict invariant self-verification.

Re-runs the paper's headline sweeps -- Figure 3 (full strong-scaling
grid), Figure 4 (NCCL stage breakdown) and Table II (single-GPU NCCL
overhead) -- plus a 2-node hierarchical cluster pair (event and analytic
fast paths) and deliberately fault-injected runs (a single-chassis
NVLink isolation, a cluster rail failure, and a node crash), all under
``strict`` invariant enforcement (:mod:`repro.checks`), and prints a
per-invariant pass/violation report::

    repro-experiments selfcheck --fast
    repro-experiments selfcheck --jobs 4 --cache-dir results/selfcheck

A healthy simulator produces zero violations; any violation (fresh from
a simulation, or replayed from a cached result that recorded one when it
was first executed) makes the command exit non-zero, which is what the
CI smoke job keys on.  Cache statistics go to stderr in the same
``total: ...`` format as the main driver, so a second invocation against
a warm cache demonstrates that violation records survive the result
store round-trip.
"""

from __future__ import annotations

import argparse
import dataclasses
import pathlib
import sys
from typing import List, Optional, Tuple

from repro.checks import all_checkers
from repro.core.config import CommMethodName, TrainingConfig
from repro.core.errors import SweepInterrupted
from repro.experiments import (
    fig3_training_time,
    fig4_breakdown,
    table2_nccl_overhead,
)
from repro.faults import (
    FaultPlan,
    NodeCrashFault,
    RailFault,
    ResiliencePolicy,
)
from repro.runner import SweepPoint, SweepRunner, SweepSpec
from repro.runner.spec import FailurePolicy, OomPolicy
from repro.topology import build_dgx1v

#: Reduced grid used by ``--fast`` (matches the main driver's ``--fast``).
FAST_BATCHES = (16,)
FAST_GPUS = (1, 4)

DEFAULT_CACHE_DIR = pathlib.Path("results/selfcheck-cache")


def _faulted_spec() -> SweepSpec:
    """One fault-injected NCCL run: invariants must hold through the
    mid-flight re-ring onto the degraded topology."""
    plan = FaultPlan.isolate_gpu(build_dgx1v(), 0, at=0.05)
    config = TrainingConfig("alexnet", 16, 4, comm_method=CommMethodName.NCCL)
    return SweepSpec(
        name="selfcheck-faulted",
        points=(SweepPoint.make(config, overrides={"faults": plan}),),
    )


def _tuned_spec() -> SweepSpec:
    """Two tuner-mode NCCL points (pinned tree, full auto) so the tree
    structural checkers and the protocol-aware cost model are exercised
    alongside the paper's compat-ring grids."""
    return SweepSpec(
        name="selfcheck-tuned",
        points=(
            SweepPoint.make(TrainingConfig(
                "resnet", 16, 4, comm_method=CommMethodName.NCCL,
                nccl_algorithm="tree", nccl_protocol="simple",
            )),
            SweepPoint.make(TrainingConfig(
                "resnet", 16, 8, comm_method=CommMethodName.NCCL_ALLREDUCE,
                nccl_algorithm="auto", nccl_protocol="auto",
            )),
        ),
    )


def _cluster_spec() -> SweepSpec:
    """Hierarchical cluster-tier points (event and analytic fast paths on
    a 2-node rail fabric) so the ``comm.hierarchical`` checkers and the
    analytic/event agreement are exercised under strict enforcement."""
    return SweepSpec(
        name="selfcheck-cluster",
        points=tuple(
            SweepPoint.make(TrainingConfig(
                "resnet", 16, 16,
                comm_method=CommMethodName.NCCL_ALLREDUCE,
                cluster_nodes=2, cluster_fabric="single-switch",
                cluster_collective="hierarchical-ring",
                cluster_fast_path=fast_path,
            ))
            for fast_path in ("event", "analytic")
        ),
    )


def _cluster_faulted_spec() -> SweepSpec:
    """Fault-injected cluster-tier points: a mid-epoch rail failure (the
    collective re-rails onto the survivors, exercising the
    ``rail-rebalance`` and ``degraded-rail-floor`` checkers) and a node
    crash recovered by SHRINK (the analytic fast path must fall back to
    the event path, exercising ``fallback-agreement``)."""

    def config() -> TrainingConfig:
        return TrainingConfig(
            "alexnet", 16, 16,
            comm_method=CommMethodName.NCCL_ALLREDUCE,
            cluster_nodes=2, cluster_fabric="single-switch",
            cluster_collective="hierarchical-ring",
            cluster_fast_path="auto",
        )

    rail_plan = FaultPlan(
        rail_faults=(RailFault(node=0, rail=1, at=0.05, bandwidth_scale=0.0),),
    )
    crash_plan = FaultPlan(
        node_crashes=(NodeCrashFault(node=1, at_iteration=3),),
        policy=ResiliencePolicy.SHRINK,
    )
    return SweepSpec(
        name="selfcheck-cluster-faulted",
        points=(
            SweepPoint.make(config(), overrides={"faults": rail_plan}),
            SweepPoint.make(config(), overrides={"faults": crash_plan}),
        ),
    )


def _specs(fast: bool) -> List[SweepSpec]:
    if fast:
        grid = dict(batch_sizes=FAST_BATCHES, gpu_counts=FAST_GPUS)
        t2 = dict(batch_sizes=FAST_BATCHES)
    else:
        grid = {}
        t2 = {}
    specs = [
        fig3_training_time.sweep_spec(**grid),
        fig4_breakdown.sweep_spec(**grid),
        table2_nccl_overhead.sweep_spec(**t2),
        _tuned_spec(),
        _cluster_spec(),
        _faulted_spec(),
        _cluster_faulted_spec(),
    ]
    # Record rather than raise: a strict-mode violation (FailureInfo) or
    # an OOM point must land in the report, not abort the remaining grid.
    return [
        dataclasses.replace(
            spec,
            oom_policy=OomPolicy.RECORD,
            failure_policy=FailurePolicy.RECORD,
        )
        for spec in specs
    ]


def _render_report(
    runner: SweepRunner,
    replayed: int,
    failures: List[Tuple[str, str]],
    ooms: int,
    points: int,
) -> Tuple[str, bool]:
    """The per-invariant report text and whether everything passed."""
    lines = [
        f"selfcheck: {points} point(s) verified under "
        f"{runner.invariants} invariant enforcement",
        "",
        f"{'invariant':<34} {'checked':>10} {'violated':>9}  status",
    ]
    total_violated = 0
    for checker in all_checkers():
        checked, violated = runner.check_stats.get(checker.invariant, (0, 0))
        total_violated += violated
        if violated:
            status = "VIOLATED"
        elif checked:
            status = "pass"
        else:
            status = "not exercised"
        lines.append(
            f"{checker.invariant:<34} {checked:>10} {violated:>9}  {status}"
        )
    lines.append("")
    lines.append(f"replayed violation records from cache: {replayed}")
    for label, reason in failures:
        lines.append(f"failed point: {label}: {reason}")
    if ooms:
        lines.append(f"out-of-memory points: {ooms}")
    ok = not total_violated and not replayed and not failures and not ooms
    lines.append(f"overall: {'PASS' if ok else 'FAIL'}")
    return "\n".join(lines), ok


def main(argv: Optional[list] = None) -> int:
    """Entry point for the ``selfcheck`` subcommand (exit 0 iff PASS)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments selfcheck",
        description="Re-run the paper's headline sweeps (Fig. 3, Fig. 4, "
                    "Table II, plus a fault-injected run) under strict "
                    "physical-invariant verification and print a "
                    "per-invariant pass/violation report.",
    )
    parser.add_argument("--fast", action="store_true",
                        help="reduced grid (batch 16, 1 and 4 GPUs)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="run simulations on N worker processes")
    parser.add_argument("--cache-dir", type=pathlib.Path,
                        default=DEFAULT_CACHE_DIR, metavar="DIR",
                        help="persistent result cache directory "
                             f"(default: {DEFAULT_CACHE_DIR})")
    parser.add_argument("--no-cache", action="store_true",
                        help="neither read nor write the persistent cache")
    parser.add_argument("--invariants", choices=("warn", "strict"),
                        default="strict", metavar="MODE",
                        help="enforcement mode (default: strict)")
    parser.add_argument("--progress", action="store_true",
                        help="print per-simulation progress to stderr")
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")

    from repro.experiments.cli import _build_runner

    runner = _build_runner(args.jobs, args.cache_dir, args.no_cache,
                           args.progress, args.invariants)
    replayed = 0
    failures: List[Tuple[str, str]] = []
    ooms = 0
    points = 0
    try:
        for spec in _specs(args.fast):
            for outcome in runner.run(spec):
                points += 1
                if outcome.failure is not None:
                    failures.append((
                        outcome.point.describe(),
                        f"{outcome.failure.error_type}: "
                        f"{outcome.failure.message}",
                    ))
                elif outcome.oom is not None:
                    ooms += 1
                elif outcome.source in ("memory", "disk"):
                    replayed += len(
                        getattr(outcome.result, "violations", ()) or ()
                    )
    except (SweepInterrupted, KeyboardInterrupt):
        return 130
    report, ok = _render_report(runner, replayed, failures, ooms, points)
    print(report)
    print(f"total: {runner.stats.describe()}", file=sys.stderr)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
