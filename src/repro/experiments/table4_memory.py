"""Table IV: per-GPU memory usage (pre-training vs training, 4 GPUs).

Columns mirror the paper: pre-training usage (identical on all GPUs),
training usage on GPU0 (the KVStore server) and on the other GPUs,
GPU0's additional usage relative to the workers, and growth relative to
batch size 16.  The maximum trainable batch size per network reproduces
the OOM findings (Inception-v3/ResNet stop above 64).

This sweep evaluates the analytic memory model rather than running the
trainer, so it goes through :meth:`~repro.runner.SweepRunner.map`: the
declarative grid supplies the points, the runner supplies (optional)
parallelism.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.config import PAPER_BATCH_SIZES, CommMethodName, TrainingConfig
from repro.dnn import build_network, compile_network, network_input_shape
from repro.dnn.zoo import PAPER_NETWORKS
from repro.experiments.tables import render_table
from repro.gpu.memory import MemoryModel
from repro.runner import SweepRunner, SweepSpec

#: The paper measures Table IV on a 4-GPU NCCL run.
TABLE4_GPU_COUNT = 4


@dataclass(frozen=True)
class Table4Row:
    """Per-GPU memory readings for one (network, batch) cell."""

    network: str
    batch_size: int
    pretraining_gb: float
    training_gpu0_gb: float
    training_gpux_gb: float
    max_batch: int               # memory-limited maximum batch for the network

    @property
    def gpu0_extra_percent(self) -> float:
        return 100.0 * (self.training_gpu0_gb / self.training_gpux_gb - 1.0)


@dataclass(frozen=True)
class Table4Result:
    """The Table IV memory grid plus per-network max batch."""

    rows: Tuple[Table4Row, ...]
    max_batch: Dict[str, int]

    def row(self, network: str, batch: int) -> Table4Row:
        for r in self.rows:
            if (r.network, r.batch_size) == (network, batch):
                return r
        raise KeyError((network, batch))

    def increase_vs_b16(self, network: str, batch: int) -> float:
        base = self.row(network, 16).training_gpu0_gb
        return 100.0 * (self.row(network, batch).training_gpu0_gb / base - 1.0)


def sweep_spec(
    networks: Tuple[str, ...] = PAPER_NETWORKS,
    batch_sizes: Tuple[int, ...] = PAPER_BATCH_SIZES,
) -> SweepSpec:
    """The network-x-batch grid behind Table IV."""
    return SweepSpec.grid(
        "table4",
        networks=networks,
        comm_methods=(CommMethodName.NCCL,),
        batch_sizes=batch_sizes,
        gpu_counts=(TABLE4_GPU_COUNT,),
    )


def _evaluate(config: TrainingConfig, memory_model: Optional[MemoryModel]) -> Table4Row:
    """Memory-model evaluation of one grid point (picklable pool worker)."""
    model = memory_model or MemoryModel()
    stats = compile_network(
        build_network(config.network), network_input_shape(config.network)
    )
    pre = model.pretraining(stats)
    gpu0 = model.training(stats, config.batch_size, is_server=True)
    gpux = model.training(stats, config.batch_size, is_server=False)
    return Table4Row(
        network=config.network,
        batch_size=config.batch_size,
        pretraining_gb=pre.total_gb,
        training_gpu0_gb=gpu0.total_gb,
        training_gpux_gb=gpux.total_gb,
        max_batch=model.max_batch_size(stats),
    )


def run(
    networks: Tuple[str, ...] = PAPER_NETWORKS,
    batch_sizes: Tuple[int, ...] = PAPER_BATCH_SIZES,
    memory_model: Optional[MemoryModel] = None,
    runner: Optional[SweepRunner] = None,
) -> Table4Result:
    runner = runner if runner is not None else SweepRunner()
    rows = runner.map(
        sweep_spec(networks, batch_sizes),
        functools.partial(_evaluate, memory_model=memory_model),
    )
    max_batch = {row.network: row.max_batch for row in rows}
    return Table4Result(rows=tuple(rows), max_batch=max_batch)


def render(result: Table4Result) -> str:
    table = render_table(
        [
            "Network",
            "Batch",
            "Pre-train GPUz (GB)",
            "Train GPU0 (GB)",
            "Train GPUx (GB)",
            "GPU0 extra (%)",
            "Increase vs b16 (%)",
        ],
        [
            (
                r.network,
                r.batch_size,
                f"{r.pretraining_gb:.2f}",
                f"{r.training_gpu0_gb:.2f}",
                f"{r.training_gpux_gb:.2f}",
                f"{r.gpu0_extra_percent:.2f}",
                f"{result.increase_vs_b16(r.network, r.batch_size):.1f}",
            )
            for r in result.rows
        ],
        title="Table IV: memory usage with NCCL, 4 GPUs",
    )
    limits = render_table(
        ["Network", "Max trainable batch/GPU"],
        sorted(result.max_batch.items()),
        title="Memory-limited maximum batch size",
    )
    return table + "\n" + limits
