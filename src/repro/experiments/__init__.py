"""Regeneration of every table and figure in the paper's evaluation.

Each module exposes ``sweep_spec(...)`` describing its simulations as a
declarative :class:`~repro.runner.SweepSpec` and ``run(...)`` returning a
structured result, plus ``render(result)`` producing the text table or
series; the CLI (``repro-experiments``) drives them.  All sweeps execute
through a shared :class:`~repro.runner.SweepRunner`, which deduplicates
training simulations across experiments, optionally fans them out over a
process pool (``--jobs``), and persists results on disk (``--cache-dir``).

===========  =====================================================
Experiment   Paper artifact
===========  =====================================================
``table1``   Table I  -- network descriptions
``fig2``     Figure 2 -- DGX-1 interconnect topology
``fig3``     Figure 3 -- training time per epoch (P2P vs NCCL)
``table2``   Table II -- NCCL overhead on a single GPU
``fig4``     Figure 4 -- FP+BP vs WU breakdown
``table3``   Table III-- cudaStreamSynchronize overhead (LeNet)
``table4``   Table IV -- GPU memory usage
``fig5``     Figure 5 -- weak scaling
``ablate``   DESIGN.md ablations (overlap, fabric, tensor cores)
``nccl``     extension -- algorithm/protocol ablation + crossover
``faults``   extension -- degradation sensitivity under faults
``strategies``  extension -- the training-strategy matrix
``cluster``  extension -- hierarchical collectives to 1024 GPUs
``cluster-faults``  extension -- rail/node faults on the cluster tier
===========  =====================================================
"""

from repro.experiments.runner import RunCache
from repro.runner import SweepRunner, SweepSpec

__all__ = ["RunCache", "SweepRunner", "SweepSpec"]
