"""Regeneration of every table and figure in the paper's evaluation.

Each module exposes ``run(...)`` returning a structured result and
``render(result)`` producing the text table/series; the CLI
(``repro-experiments``) drives them.  A shared :class:`~repro.experiments.runner.RunCache`
deduplicates training simulations across experiments.

===========  =====================================================
Experiment   Paper artifact
===========  =====================================================
``table1``   Table I  -- network descriptions
``fig2``     Figure 2 -- DGX-1 interconnect topology
``fig3``     Figure 3 -- training time per epoch (P2P vs NCCL)
``table2``   Table II -- NCCL overhead on a single GPU
``fig4``     Figure 4 -- FP+BP vs WU breakdown
``table3``   Table III-- cudaStreamSynchronize overhead (LeNet)
``table4``   Table IV -- GPU memory usage
``fig5``     Figure 5 -- weak scaling
``ablate``   DESIGN.md ablations (overlap, fabric, tensor cores)
===========  =====================================================
"""

from repro.experiments.runner import RunCache

__all__ = ["RunCache"]
