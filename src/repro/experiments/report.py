"""One-shot markdown report: every artifact plus the anchor validation.

``repro-experiments report -o out/`` writes ``out/report.md`` -- a
self-contained record of a full regeneration run, suitable for committing
next to EXPERIMENTS.md after a model change.
"""

from __future__ import annotations

import datetime
from typing import List, Optional

from repro import __version__
from repro.analysis import validation
from repro.experiments import (
    fig2_topology,
    fig3_training_time,
    fig4_breakdown,
    fig5_weak_scaling,
    nccl_ablation,
    table1_networks,
    table2_nccl_overhead,
    table3_sync_overhead,
    table4_memory,
)
from repro.runner import SweepRunner

#: (section title, paper artifact reference) per block, in paper order.
_SECTIONS = (
    ("Networks", "Table I"),
    ("Interconnect", "Figure 2"),
    ("Training time per epoch", "Figure 3"),
    ("Single-GPU NCCL overhead", "Table II"),
    ("Computation vs communication", "Figure 4"),
    ("cudaStreamSynchronize overhead", "Table III"),
    ("Memory usage", "Table IV"),
    ("Weak scaling", "Figure 5"),
    ("NCCL algorithm/protocol ablation", "extension"),
)


def generate(
    cache: Optional[SweepRunner] = None,
    fast: bool = False,
    timestamp: Optional[str] = None,
) -> str:
    """Render the full report as markdown.

    ``fast`` restricts the sweeps to batch 16 and {1, 4} GPUs.  ``cache``
    is the :class:`~repro.runner.SweepRunner` every sweep executes
    through, so ``--jobs`` and the persistent result cache apply to the
    whole report.
    """
    cache = cache if cache is not None else SweepRunner()
    kwargs = dict(batch_sizes=(16,), gpu_counts=(1, 4)) if fast else {}
    t2_kwargs = dict(batch_sizes=(16,)) if fast else {}

    blocks: List[str] = []
    blocks.append(table1_networks.render(table1_networks.run()))
    blocks.append(fig2_topology.render(fig2_topology.run()))
    blocks.append(fig3_training_time.render(fig3_training_time.run(cache, **kwargs)))
    blocks.append(
        table2_nccl_overhead.render(table2_nccl_overhead.run(cache, **t2_kwargs))
    )
    blocks.append(fig4_breakdown.render(fig4_breakdown.run(cache, **kwargs)))
    blocks.append(
        table3_sync_overhead.render(table3_sync_overhead.run(cache, **kwargs))
    )
    blocks.append(table4_memory.render(table4_memory.run(runner=cache)))
    blocks.append(fig5_weak_scaling.render(fig5_weak_scaling.run(cache, **kwargs)))
    nccl_kwargs = dict(networks=("alexnet",)) if fast else {}
    blocks.append(nccl_ablation.render(nccl_ablation.run(runner=cache, **nccl_kwargs)))

    when = timestamp or datetime.datetime.now().isoformat(timespec="seconds")
    lines = [
        "# Reproduction report",
        "",
        f"- library: repro {__version__}",
        f"- generated: {when}",
        f"- mode: {'fast (batch 16, 1/4 GPUs)' if fast else 'full paper sweep'}",
        f"- simulations run: {len(cache)}",
        "",
    ]
    for (title, artifact), block in zip(_SECTIONS, blocks):
        lines.append(f"## {title} ({artifact})")
        lines.append("")
        lines.append("```")
        lines.append(block.rstrip("\n"))
        lines.append("```")
        lines.append("")

    if not fast:
        report = validation.validate(cache)
        lines.append("## Paper-anchor validation")
        lines.append("")
        lines.append("```")
        lines.append(validation.render(report).rstrip("\n"))
        lines.append("```")
        lines.append("")
    return "\n".join(lines)
