"""Extension study: the training-strategy matrix (ROADMAP item 3).

One table over the paper's five networks comparing every registered
training strategy -- the synchronous reductions the paper profiles
(``p2p-tree``, ``nccl-collective``), the modern replicated AllReduce, the
CPU and GPU parameter servers, asynchronous parameter-server SGD and the
model-parallel placement estimator -- all through the same
:class:`~repro.train.trainer.Trainer` entry point, result schema, sweep
runner and cache (tensorpack's trainer matrix, measured instead of
documented).

Every point runs in ``mode="sync"``: the strategy field on the config
selects the execution model inside the trainer, so caching, invariant
enforcement and fault handling are uniform across the matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.config import CommMethodName, SimulationConfig, TrainingConfig
from repro.experiments.tables import render_table
from repro.runner import SweepPoint, SweepRunner, SweepSpec

#: Every registered strategy and the ``comm_method`` it runs over (the
#: validation matrix in docs/TRAINING.md).
STRATEGY_COMM = {
    "p2p-tree": CommMethodName.P2P,
    "nccl-collective": CommMethodName.NCCL,
    "nccl-allreduce-replicated": CommMethodName.NCCL_ALLREDUCE,
    "ps-cpu": CommMethodName.LOCAL,
    "ps-gpu": CommMethodName.P2P,
    "async-update": CommMethodName.P2P,
    "model-parallel": CommMethodName.P2P,
}

#: The paper's five networks (Table I).
PAPER_NETWORKS = ("lenet", "alexnet", "googlenet", "inception-v3", "resnet")

#: The strategy every other row is normalized against.
BASELINE_STRATEGY = "p2p-tree"


@dataclass(frozen=True)
class StrategyRow:
    """One (network, strategy) cell of the matrix."""

    network: str
    strategy: str
    epoch_time: float
    images_per_second: float
    speedup_over_baseline: float     # baseline epoch / this epoch
    note: str                        # staleness etc.; "" when N/A


@dataclass(frozen=True)
class StrategiesResult:
    """The full strategy-comparison matrix."""

    batch_size: int
    num_gpus: int
    rows: Tuple[StrategyRow, ...]

    def row(self, network: str, strategy: str) -> StrategyRow:
        for r in self.rows:
            if (r.network, r.strategy) == (network, strategy):
                return r
        raise KeyError((network, strategy))


def sweep_spec(
    networks: Tuple[str, ...] = PAPER_NETWORKS,
    batch_size: int = 32,
    num_gpus: int = 4,
    strategies: Tuple[str, ...] = tuple(STRATEGY_COMM),
) -> SweepSpec:
    """Every strategy on every network, one batch size and GPU count."""
    points: List[SweepPoint] = []
    for network in networks:
        for strategy in strategies:
            config = TrainingConfig(
                network,
                batch_size,
                num_gpus,
                comm_method=STRATEGY_COMM[strategy],
                strategy=strategy,
            )
            points.append(SweepPoint.make(config, tags={"study": "strategies"}))
    return SweepSpec.explicit("strategies", points)


def run(
    networks: Tuple[str, ...] = PAPER_NETWORKS,
    batch_size: int = 32,
    num_gpus: int = 4,
    strategies: Tuple[str, ...] = tuple(STRATEGY_COMM),
    sim: Optional[SimulationConfig] = None,
    runner: Optional[SweepRunner] = None,
) -> StrategiesResult:
    """Run (or replay from cache) the matrix and assemble the rows."""
    if runner is None:
        runner = SweepRunner(sim=sim or SimulationConfig())
    results = runner.run(sweep_spec(networks, batch_size, num_gpus, strategies))
    baseline_name = (BASELINE_STRATEGY if BASELINE_STRATEGY in strategies
                     else strategies[0])
    rows: List[StrategyRow] = []
    for network in networks:
        baseline = results.result(network=network, strategy=baseline_name)
        for strategy in strategies:
            r = results.result(network=network, strategy=strategy)
            note = ""
            if r.async_stats is not None:
                note = (f"staleness {r.async_stats.staleness_mean:.1f} "
                        f"(max {r.async_stats.staleness_max})")
            elif strategy == "model-parallel":
                note = "layer-partitioned (no replication)"
            rows.append(
                StrategyRow(
                    network=network,
                    strategy=strategy,
                    epoch_time=r.epoch_time,
                    images_per_second=r.images_per_second,
                    speedup_over_baseline=(
                        baseline.epoch_time / r.epoch_time
                        if r.epoch_time > 0 else 0.0
                    ),
                    note=note,
                )
            )
    return StrategiesResult(batch_size=batch_size, num_gpus=num_gpus,
                            rows=tuple(rows))


def render(result: StrategiesResult) -> str:
    """The strategy-matrix table."""
    return render_table(
        ["Network", "Strategy", "Epoch (s)", "img/s",
         f"vs {BASELINE_STRATEGY}", "Notes"],
        [
            (
                r.network,
                r.strategy,
                f"{r.epoch_time:.2f}",
                f"{r.images_per_second:.0f}",
                f"x{r.speedup_over_baseline:.2f}",
                r.note,
            )
            for r in result.rows
        ],
        title=(f"Training-strategy matrix (batch {result.batch_size}, "
               f"{result.num_gpus} GPUs)"),
    )
