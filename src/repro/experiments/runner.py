"""Backwards-compatible entry point for sweep execution.

The sweep infrastructure grew into a first-class subsystem and moved to
:mod:`repro.runner` (declarative :class:`~repro.runner.SweepSpec`,
parallel :class:`~repro.runner.SweepRunner`, persistent
:class:`~repro.runner.ResultStore`).  ``RunCache`` -- the original
serial, in-memory-only memoizer this module used to define -- is now an
alias for :class:`~repro.runner.SweepRunner`, which keeps the exact
``get``/``try_get``/``len`` contract while adding batch execution,
``jobs > 1`` process pools and the on-disk cache.
"""

from __future__ import annotations

from repro.runner import (
    OomPolicy,
    PointOutcome,
    ResultStore,
    SweepPoint,
    SweepResults,
    SweepRunner,
    SweepSpec,
)

#: Legacy name: the memoizing runner, constructed the same way
#: (``RunCache(sim=..., constants=..., trainer_kwargs=...)``).
RunCache = SweepRunner

__all__ = [
    "OomPolicy",
    "PointOutcome",
    "ResultStore",
    "RunCache",
    "SweepPoint",
    "SweepResults",
    "SweepRunner",
    "SweepSpec",
]
