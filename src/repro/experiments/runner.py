"""Shared infrastructure for running experiment sweeps."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.core.config import (
    CommMethodName,
    ScalingMode,
    SimulationConfig,
    TrainingConfig,
)
from repro.core.constants import CALIBRATION, CalibrationConstants
from repro.core.errors import OutOfMemoryError
from repro.train import Trainer, TrainingResult

#: Key identifying one training simulation.
RunKey = Tuple[str, int, int, str, str, bool]


@dataclass
class RunCache:
    """Lazily runs and memoizes training simulations.

    Several experiments share configurations (Fig. 3, Table II and Fig. 4
    all need the NCCL strong-scaling sweep); the cache makes the full CLI
    run each simulation once.
    """

    sim: SimulationConfig = field(default_factory=SimulationConfig)
    constants: CalibrationConstants = CALIBRATION
    trainer_kwargs: Dict[str, object] = field(default_factory=dict)
    _results: Dict[RunKey, TrainingResult] = field(default_factory=dict)

    def get(
        self,
        network: str,
        batch_size: int,
        num_gpus: int,
        comm_method: CommMethodName,
        scaling: ScalingMode = ScalingMode.STRONG,
        overlap_bp_wu: bool = True,
    ) -> TrainingResult:
        """The (memoized) result for one configuration.

        Propagates :class:`~repro.core.errors.OutOfMemoryError` so callers
        can report untrainable configurations, as the paper does.
        """
        key: RunKey = (
            network,
            batch_size,
            num_gpus,
            comm_method.value,
            scaling.value,
            overlap_bp_wu,
        )
        if key not in self._results:
            config = TrainingConfig(
                network=network,
                batch_size=batch_size,
                num_gpus=num_gpus,
                comm_method=comm_method,
                scaling=scaling,
                overlap_bp_wu=overlap_bp_wu,
            )
            trainer = Trainer(
                config, sim=self.sim, constants=self.constants, **self.trainer_kwargs
            )
            self._results[key] = trainer.run()
        return self._results[key]

    def try_get(self, *args, **kwargs) -> Optional[TrainingResult]:
        """Like :meth:`get` but returns ``None`` on OOM."""
        try:
            return self.get(*args, **kwargs)
        except OutOfMemoryError:
            return None

    def __len__(self) -> int:
        return len(self._results)
