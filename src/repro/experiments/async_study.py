"""Extension study: synchronous vs asynchronous SGD (paper Section II-B).

The paper describes ASGD and its delayed-gradient problem as the
alternative to the synchronous training it profiles.  This study
quantifies the trade-off on the same simulated DGX-1: raw epoch time
(ASGD wins -- no barriers, no stragglers), gradient staleness (grows with
GPU count), and the staleness-penalized effective time (where synchronous
SGD wins back for compute-heavy networks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.config import CommMethodName, SimulationConfig, TrainingConfig
from repro.experiments.tables import render_table
from repro.runner import SweepPoint, SweepRunner, SweepSpec


@dataclass(frozen=True)
class AsyncStudyRow:
    """Sync vs async SGD epoch times for one (network, GPUs) cell."""

    network: str
    num_gpus: int
    sync_epoch: float
    async_epoch: float
    staleness_mean: float
    staleness_max: int
    async_effective_epoch: float

    @property
    def raw_speedup(self) -> float:
        return self.sync_epoch / self.async_epoch

    @property
    def effective_speedup(self) -> float:
        return self.sync_epoch / self.async_effective_epoch


@dataclass(frozen=True)
class AsyncStudyResult:
    """The sync-vs-async comparison grid."""

    rows: Tuple[AsyncStudyRow, ...]

    def row(self, network: str, gpus: int) -> AsyncStudyRow:
        for r in self.rows:
            if (r.network, r.num_gpus) == (network, gpus):
                return r
        raise KeyError((network, gpus))


def sweep_spec(
    networks: Tuple[str, ...] = ("lenet", "inception-v3"),
    batch_size: int = 16,
    gpu_counts: Tuple[int, ...] = (2, 4, 8),
) -> SweepSpec:
    """Paired points: every configuration once synchronous, once async."""
    points: List[SweepPoint] = []
    for network in networks:
        for gpus in gpu_counts:
            config = TrainingConfig(network, batch_size, gpus,
                                    comm_method=CommMethodName.P2P)
            points.append(SweepPoint(config=config, mode="sync"))
            points.append(SweepPoint(config=config, mode="async"))
    return SweepSpec.explicit("async-study", points)


def run(
    networks: Tuple[str, ...] = ("lenet", "inception-v3"),
    batch_size: int = 16,
    gpu_counts: Tuple[int, ...] = (2, 4, 8),
    sim: Optional[SimulationConfig] = None,
    runner: Optional[SweepRunner] = None,
) -> AsyncStudyResult:
    if runner is None:
        runner = SweepRunner(sim=sim or SimulationConfig())
    results = runner.run(sweep_spec(networks, batch_size, gpu_counts))
    rows: List[AsyncStudyRow] = []
    for network in networks:
        for gpus in gpu_counts:
            sync = results.result(network=network, num_gpus=gpus, mode="sync")
            asyn = results.result(network=network, num_gpus=gpus, mode="async")
            rows.append(
                AsyncStudyRow(
                    network=network,
                    num_gpus=gpus,
                    sync_epoch=sync.epoch_time,
                    async_epoch=asyn.epoch_time,
                    staleness_mean=asyn.staleness_mean,
                    staleness_max=asyn.staleness_max,
                    async_effective_epoch=asyn.effective_epoch_time(),
                )
            )
    return AsyncStudyResult(rows=tuple(rows))


def render(result: AsyncStudyResult) -> str:
    return render_table(
        [
            "Network", "GPUs", "Sync (s)", "Async (s)", "Raw speedup",
            "Staleness", "Effective (s)", "Effective speedup",
        ],
        [
            (
                r.network,
                r.num_gpus,
                f"{r.sync_epoch:.2f}",
                f"{r.async_epoch:.2f}",
                f"x{r.raw_speedup:.2f}",
                f"{r.staleness_mean:.1f} (max {r.staleness_max})",
                f"{r.async_effective_epoch:.2f}",
                f"x{r.effective_speedup:.2f}",
            )
            for r in result.rows
        ],
        title="Sync vs async SGD (batch 16; effective = staleness-penalized)",
    )
