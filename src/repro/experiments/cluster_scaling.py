"""Cluster-scale tier: hierarchical collectives from 8 to 1024 GPUs.

The multi-node study stops at a handful of chassis because its flat
16-to-32-rank rings pay one InfiniBand crossing per node.  This
experiment exercises the cluster tier proper: the rail-aware fabric
(:mod:`repro.topology.cluster`), the hierarchical reduce-scatter /
inter-node exchange / allgather collective
(:mod:`repro.comm.nccl.hierarchical`), and the analytic fast path that
makes a 1024-GPU AllReduce point tractable (``cluster_fast_path="auto"``
switches from event fidelity to the closed form beyond four nodes; the
two are held byte-identical by the ``comm.hierarchical`` invariants).

The grid runs the paper's five ImageNet networks in strong scaling from
one DGX-1V (8 GPUs) to 128 chassis (1024 GPUs).  See docs/SCALING.md for
the fabric model and the collective algebra behind each cell.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.config import CommMethodName, SimulationConfig, TrainingConfig
from repro.experiments.tables import render_table
from repro.runner import SweepPoint, SweepRunner, SweepSpec

#: The paper's five ImageNet CNNs (Table I).
PAPER_NETWORKS = ("alexnet", "googlenet", "inception-v3", "resnet", "vgg16")

#: Chassis counts for the scaling grid (8 GPUs per chassis).
DEFAULT_NODE_COUNTS = (1, 2, 4, 8, 32, 128)

#: Cluster-tier knobs every point shares.
FABRIC = "single-switch"
COLLECTIVE = "hierarchical-ring"


@dataclass(frozen=True)
class ClusterRow:
    """One (network, node count) cell of the scaling grid."""

    network: str
    nodes: int
    num_gpus: int
    iteration_time: float
    images_per_second: float

    @property
    def label(self) -> str:
        return f"{self.nodes}x8"


@dataclass(frozen=True)
class ClusterScalingResult:
    """The hierarchical-collective strong-scaling study."""

    batch_size: int
    rows: Tuple[ClusterRow, ...]

    def row(self, network: str, nodes: int) -> ClusterRow:
        for r in self.rows:
            if (r.network, r.nodes) == (network, nodes):
                return r
        raise KeyError((network, nodes))

    def speedup(self, network: str, nodes: int) -> float:
        """Throughput gain over the smallest node count run for ``network``."""
        base_nodes = min(r.nodes for r in self.rows if r.network == network)
        base = self.row(network, base_nodes)
        return (self.row(network, nodes).images_per_second
                / base.images_per_second)

    def efficiency(self, network: str, nodes: int) -> float:
        """Speedup per added chassis (1.0 = perfectly linear)."""
        base_nodes = min(r.nodes for r in self.rows if r.network == network)
        return self.speedup(network, nodes) / (nodes / base_nodes)


def sweep_spec(
    networks: Tuple[str, ...] = PAPER_NETWORKS,
    node_counts: Tuple[int, ...] = DEFAULT_NODE_COUNTS,
    batch_size: int = 32,
) -> SweepSpec:
    """Strong-scaling grid over the hierarchical cluster tier.

    Every point selects the rail-aware ``single-switch`` fabric and the
    ``hierarchical-ring`` collective with ``cluster_fast_path="auto"``,
    so small node counts run at event fidelity and large ones take the
    analytic fast path.
    """
    return SweepSpec.explicit(
        "cluster",
        [
            SweepPoint.make(
                TrainingConfig(
                    network, batch_size, 8 * nodes,
                    comm_method=CommMethodName.NCCL_ALLREDUCE,
                    cluster_nodes=nodes,
                    cluster_fabric=FABRIC,
                    cluster_collective=COLLECTIVE,
                    cluster_fast_path="auto",
                ),
                tags={"nodes": nodes},
            )
            for network in networks
            for nodes in node_counts
        ],
    )


def run(
    networks: Tuple[str, ...] = PAPER_NETWORKS,
    node_counts: Tuple[int, ...] = DEFAULT_NODE_COUNTS,
    batch_size: int = 32,
    sim: Optional[SimulationConfig] = None,
    runner: Optional[SweepRunner] = None,
) -> ClusterScalingResult:
    if runner is None:
        runner = SweepRunner(sim=sim or SimulationConfig())
    results = runner.run(sweep_spec(networks, node_counts, batch_size))
    rows = tuple(
        ClusterRow(
            network=o.point.config.network,
            nodes=o.point.config.cluster_nodes,
            num_gpus=o.point.config.num_gpus,
            iteration_time=o.result.iteration_time,
            images_per_second=o.result.images_per_second,
        )
        for o in results
    )
    return ClusterScalingResult(batch_size=batch_size, rows=rows)


def render(result: ClusterScalingResult) -> str:
    from repro.train.strategies import AUTO_ANALYTIC_NODES

    return render_table(
        ["Network", "Nodes", "GPUs", "Iter (ms)", "img/s",
         "Speedup", "Efficiency", "Path"],
        [
            (
                r.network,
                r.label,
                r.num_gpus,
                f"{r.iteration_time * 1e3:.2f}",
                f"{r.images_per_second:.0f}",
                f"x{result.speedup(r.network, r.nodes):.1f}",
                f"{result.efficiency(r.network, r.nodes) * 100:.0f}%",
                "analytic" if r.nodes > AUTO_ANALYTIC_NODES else "event",
            )
            for r in result.rows
        ],
        title=(
            f"Cluster strong scaling, hierarchical ring over IB rails "
            f"({COLLECTIVE}/{FABRIC}, batch {result.batch_size}/GPU)"
        ),
        max_col_width=24,
    )
