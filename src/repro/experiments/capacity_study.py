"""Extension study: what does more GPU memory buy? (paper Section V-D).

The paper's memory insight: batch size cuts epoch time almost linearly,
but the V100's 16 GiB caps the batch -- "future research should focus on
both increasing memory capacity... as well as more efficient memory
mapping."  This study answers the implied question with the 32 GiB V100
refresh: the larger batches it admits, and the epoch-time gain from
training at them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.config import CommMethodName, SimulationConfig, TrainingConfig
from repro.dnn import build_network, compile_network, network_input_shape
from repro.experiments.tables import render_table
from repro.gpu import MemoryModel
from repro.gpu.spec import TESLA_V100, TESLA_V100_32GB, GpuSpec
from repro.runner import SweepPoint, SweepRunner, SweepSpec

#: The two GPU generations compared by the study.
CAPACITY_SPECS = (TESLA_V100, TESLA_V100_32GB)


@dataclass(frozen=True)
class CapacityRow:
    """One network's max batch and best epoch at 16 vs 32 GiB."""

    network: str
    max_batch_16gb: int
    max_batch_32gb: int
    epoch_at_16gb_best: float       # best power-of-two batch under 16 GiB
    epoch_at_32gb_best: float       # best power-of-two batch under 32 GiB
    best_batch_16gb: int
    best_batch_32gb: int

    @property
    def capacity_speedup(self) -> float:
        return self.epoch_at_16gb_best / self.epoch_at_32gb_best


@dataclass(frozen=True)
class CapacityStudyResult:
    """The 16-vs-32 GiB V100 capacity comparison."""

    num_gpus: int
    rows: Tuple[CapacityRow, ...]

    def row(self, network: str) -> CapacityRow:
        for r in self.rows:
            if r.network == network:
                return r
        raise KeyError(network)


def _best_power_of_two(max_batch: int, floor: int = 16, cap: int = 512) -> int:
    batch = floor
    while batch * 2 <= min(max_batch, cap):
        batch *= 2
    return batch


def sweep_spec(
    networks: Tuple[str, ...] = ("resnet", "inception-v3", "googlenet"),
    num_gpus: int = 8,
    gpu_specs: Tuple[GpuSpec, ...] = CAPACITY_SPECS,
) -> SweepSpec:
    """Explicit points: each network at its best batch under each GPU spec.

    The batch size depends on the memory model, so the points cannot come
    from a plain grid -- they are derived here and carried as overrides
    (``spec``) plus lookup tags (``gpu_spec``, ``max_batch``).
    """
    points: List[SweepPoint] = []
    for network in networks:
        stats = compile_network(build_network(network), network_input_shape(network))
        for spec in gpu_specs:
            limit = MemoryModel(spec).max_batch_size(stats)
            batch = _best_power_of_two(limit)
            points.append(
                SweepPoint.make(
                    TrainingConfig(network, batch, num_gpus,
                                   comm_method=CommMethodName.NCCL),
                    overrides={"spec": spec},
                    tags={"gpu_spec": spec.name, "max_batch": limit},
                )
            )
    return SweepSpec.explicit("capacity", points)


def run(
    networks: Tuple[str, ...] = ("resnet", "inception-v3", "googlenet"),
    num_gpus: int = 8,
    sim: Optional[SimulationConfig] = None,
    runner: Optional[SweepRunner] = None,
) -> CapacityStudyResult:
    if runner is None:
        runner = SweepRunner(sim=sim or SimulationConfig())
    results = runner.run(sweep_spec(networks, num_gpus))
    rows: List[CapacityRow] = []
    for network in networks:
        limits: Dict[str, int] = {}
        best: Dict[str, int] = {}
        epochs: Dict[str, float] = {}
        for outcome in results.outcomes_for(network=network):
            tags = outcome.point.tag_dict()
            name = tags["gpu_spec"]
            limits[name] = tags["max_batch"]
            best[name] = outcome.point.config.batch_size
            epochs[name] = outcome.result.epoch_time
        rows.append(
            CapacityRow(
                network=network,
                max_batch_16gb=limits[TESLA_V100.name],
                max_batch_32gb=limits[TESLA_V100_32GB.name],
                epoch_at_16gb_best=epochs[TESLA_V100.name],
                epoch_at_32gb_best=epochs[TESLA_V100_32GB.name],
                best_batch_16gb=best[TESLA_V100.name],
                best_batch_32gb=best[TESLA_V100_32GB.name],
            )
        )
    return CapacityStudyResult(num_gpus=num_gpus, rows=tuple(rows))


def render(result: CapacityStudyResult) -> str:
    return render_table(
        [
            "Network", "Max batch 16GiB", "Max batch 32GiB",
            "Epoch @16GiB (s)", "Epoch @32GiB (s)", "Capacity speedup",
        ],
        [
            (
                r.network,
                f"{r.max_batch_16gb} (ran b{r.best_batch_16gb})",
                f"{r.max_batch_32gb} (ran b{r.best_batch_32gb})",
                f"{r.epoch_at_16gb_best:.2f}",
                f"{r.epoch_at_32gb_best:.2f}",
                f"x{r.capacity_speedup:.2f}",
            )
            for r in result.rows
        ],
        title=(
            f"Memory-capacity study: V100 16 GiB vs 32 GiB "
            f"({result.num_gpus} GPUs, NCCL, best power-of-two batch)"
        ),
    )
