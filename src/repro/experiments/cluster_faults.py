"""Extension study: cluster-tier degradation sensitivity under faults.

The single-chassis fault study (:mod:`repro.experiments.faults_study`)
stops at the NVLink fabric; this one injects the failure modes a
multi-node deployment actually meets: a failed or degraded InfiniBand
rail (the hierarchical collective re-rails its inter-node traffic onto
the survivors), a chassis-level thermal straggler, and a full node crash
recovered at node granularity under each resilience policy.

Every scenario is an explicit, deterministic
:class:`~repro.faults.plan.FaultPlan`: mid-epoch activation times are
derived from the *healthy* epoch time of the same configuration, so the
whole grid is reproducible bit-for-bit and caches cleanly.  All points
request ``cluster_fast_path="auto"``: rail and node-0 straggler
scenarios stay analytic-eligible, while node crashes force the automatic
fallback to the event path (see docs/SCALING.md for the validity
envelope) -- the ``Path`` column shows which side each cell ran on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.config import CommMethodName, SimulationConfig, TrainingConfig
from repro.experiments.tables import render_table
from repro.faults import (
    FaultPlan,
    NodeCrashFault,
    NodeStragglerFault,
    RailFault,
    ResiliencePolicy,
)
from repro.runner import SweepPoint, SweepRunner, SweepSpec

#: Fraction of the healthy epoch at which mid-epoch faults activate.
FAULT_AT_FRACTION = 0.3

#: Rail bandwidth-degradation severities swept (0.0 = NIC outright dead).
RAIL_SEVERITIES = (0.5, 0.0)

#: Cluster-tier knobs every point shares (mirrors the scaling study).
FABRIC = "single-switch"
COLLECTIVE = "hierarchical-ring"


@dataclass(frozen=True)
class ClusterFaultCell:
    """One (configuration, scenario) outcome."""

    network: str
    nodes: int
    scenario: str
    epoch_time: float
    overhead: float              # transition + recovery + checkpoint seconds
    segments: int                # constant-fault-set windows simulated
    rails_degraded: int          # worst simultaneous degraded-rail count
    path: str                    # "analytic" or "event" (fast-path side)
    policy: str                  # resilience policy label ("-" if unused)

    @property
    def key(self) -> Tuple[str, int, str]:
        return (self.network, self.nodes, self.scenario)


@dataclass(frozen=True)
class ClusterFaultsResult:
    """The cluster degradation-sensitivity grid, addressable per cell."""

    batch_size: int
    cells: Tuple[ClusterFaultCell, ...]

    def cell(self, network: str, nodes: int, scenario: str) -> ClusterFaultCell:
        for c in self.cells:
            if c.key == (network, nodes, scenario):
                return c
        raise KeyError((network, nodes, scenario))

    def slowdown(self, cell: ClusterFaultCell) -> float:
        """Epoch-time ratio of ``cell`` over its healthy twin."""
        healthy = self.cell(cell.network, cell.nodes, "healthy")
        return cell.epoch_time / healthy.epoch_time if healthy.epoch_time else 0.0


def scenarios(
    nodes: int, at: float, crash_iteration: int,
) -> Tuple[Tuple[str, Optional[FaultPlan]], ...]:
    """The ordered (label, plan) scenario list for one node count.

    ``at`` is the mid-epoch activation time (seconds).  Rail scenarios
    target rail 0 of node 0; the recovering-rail scenario brings the NIC
    back after an equal-length outage, exercising until-based recovery
    and the extra fault segment it opens.
    """
    out: List[Tuple[str, Optional[FaultPlan]]] = [("healthy", None)]
    for scale in RAIL_SEVERITIES:
        label = "rail down" if scale == 0.0 else f"rail x{scale:g}"
        out.append((label, FaultPlan(
            rail_faults=(RailFault(node=0, rail=0, at=at,
                                   bandwidth_scale=scale),),
        )))
    out.append(("rail flap", FaultPlan(
        rail_faults=(RailFault(node=0, rail=0, at=at, bandwidth_scale=0.0,
                               until=round(2 * at, 3)),),
    )))
    out.append(("node straggler x1.5", FaultPlan(
        node_stragglers=(NodeStragglerFault(node=0, factor=1.5, at=at),),
    )))
    crash = NodeCrashFault(node=nodes - 1, at_iteration=crash_iteration)
    out.append(("node crash->shrink", FaultPlan(
        node_crashes=(crash,), policy=ResiliencePolicy.SHRINK,
    )))
    out.append(("node crash->restart", FaultPlan(
        node_crashes=(crash,), policy=ResiliencePolicy.CHECKPOINT_RESTART,
    )))
    return tuple(out)


def _config(network: str, nodes: int, batch_size: int) -> TrainingConfig:
    return TrainingConfig(
        network, batch_size, 8 * nodes,
        comm_method=CommMethodName.NCCL_ALLREDUCE,
        cluster_nodes=nodes,
        cluster_fabric=FABRIC,
        cluster_collective=COLLECTIVE,
        cluster_fast_path="auto",
    )


def healthy_spec(
    networks: Tuple[str, ...],
    node_counts: Tuple[int, ...],
    batch_size: int,
) -> SweepSpec:
    """Phase 1: the healthy baselines the fault times are derived from."""
    return SweepSpec.explicit(
        "cluster-faults-healthy",
        [
            SweepPoint.make(_config(network, nodes, batch_size),
                            tags={"nodes": nodes})
            for network in networks
            for nodes in node_counts
        ],
    )


def fault_spec(
    networks: Tuple[str, ...],
    node_counts: Tuple[int, ...],
    batch_size: int,
    healthy_epochs: Dict[Tuple[str, int], float],
) -> SweepSpec:
    """Phase 2: every cluster-fault scenario as an explicit sweep point."""
    points = []
    for network in networks:
        for nodes in node_counts:
            config = _config(network, nodes, batch_size)
            at = round(healthy_epochs[(network, nodes)] * FAULT_AT_FRACTION, 3)
            crash_iteration = max(1, config.iterations_per_epoch // 2)
            for label, plan in scenarios(nodes, at, crash_iteration):
                if plan is None:
                    continue  # healthy baseline already ran in phase 1
                points.append(SweepPoint.make(
                    config,
                    overrides={"faults": plan},
                    tags={"scenario": label, "nodes": nodes},
                ))
    return SweepSpec.explicit("cluster-faults", points)


def run(
    networks: Tuple[str, ...] = ("alexnet", "resnet"),
    node_counts: Tuple[int, ...] = (2, 4),
    batch_size: int = 32,
    sim: Optional[SimulationConfig] = None,
    runner: Optional[SweepRunner] = None,
) -> ClusterFaultsResult:
    from repro.train.strategies import resolve_fast_path

    if runner is None:
        runner = SweepRunner(sim=sim or SimulationConfig())

    cells: List[ClusterFaultCell] = []
    healthy_epochs: Dict[Tuple[str, int], float] = {}
    for outcome in runner.run(healthy_spec(networks, node_counts, batch_size)):
        c = outcome.point.config
        r = outcome.result
        healthy_epochs[(c.network, c.cluster_nodes)] = r.epoch_time
        cells.append(ClusterFaultCell(
            network=c.network, nodes=c.cluster_nodes, scenario="healthy",
            epoch_time=r.epoch_time, overhead=0.0, segments=1,
            rails_degraded=0, path=resolve_fast_path(c), policy="-",
        ))

    spec = fault_spec(networks, node_counts, batch_size, healthy_epochs)
    for outcome in runner.run(spec):
        c = outcome.point.config
        r = outcome.result
        summary = r.faults
        plan = outcome.point.override_dict()["faults"]
        policy = (str(summary.policy)
                  if summary.crashed_node is not None else "-")
        cells.append(ClusterFaultCell(
            network=c.network, nodes=c.cluster_nodes,
            scenario=outcome.point.tag_dict()["scenario"],
            epoch_time=r.epoch_time,
            overhead=summary.overhead,
            segments=len(summary.segments),
            rails_degraded=max(
                (s.rails_degraded for s in summary.segments), default=0),
            path=resolve_fast_path(c, plan),
            policy=policy,
        ))
    return ClusterFaultsResult(batch_size=batch_size, cells=tuple(cells))


def render(result: ClusterFaultsResult) -> str:
    out = []
    combos = list(dict.fromkeys((c.network, c.nodes) for c in result.cells))
    for network, nodes in combos:
        rows = []
        for cell in result.cells:
            if (cell.network, cell.nodes) != (network, nodes):
                continue
            rows.append((
                cell.scenario,
                f"{cell.epoch_time:8.2f}",
                f"x{result.slowdown(cell):.2f}",
                f"{cell.overhead:6.2f}",
                str(cell.segments),
                str(cell.rails_degraded),
                cell.path,
                cell.policy,
            ))
        out.append(render_table(
            ["Scenario", "Epoch (s)", "vs healthy", "Overhead (s)",
             "Segs", "Rails deg.", "Path", "Policy"],
            rows,
            title=(
                f"Cluster fault degradation sensitivity: {network}, "
                f"{nodes}x8 GPUs, batch {result.batch_size}/GPU "
                f"({COLLECTIVE}/{FABRIC})"
            ),
            align_right_from=1,
            max_col_width=24,
        ))
    return "\n".join(out)
