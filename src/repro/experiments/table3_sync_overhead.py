"""Table III: cudaStreamSynchronize API overhead for LeNet.

nvprof's API view attributes to cudaStreamSynchronize the wall time the
host spends blocked on GPU streams.  LeNet's kernels are tiny, so this
dominates the API profile and grows with GPU count (more engine threads,
longer straggler waits) -- the mechanism behind LeNet's non-linear FP+BP
scaling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.config import PAPER_BATCH_SIZES, PAPER_GPU_COUNTS, CommMethodName
from repro.experiments.tables import render_table
from repro.runner import SweepRunner, SweepSpec


@dataclass(frozen=True)
class Table3Row:
    """cudaStreamSynchronize share for one (batch, GPUs) cell."""

    batch_size: int
    num_gpus: int
    sync_percent: float          # share of total CUDA API wall time
    sync_seconds_per_iter: float


@dataclass(frozen=True)
class Table3Result:
    """The Table III synchronize-overhead grid (LeNet)."""

    rows: Tuple[Table3Row, ...]
    network: str = "lenet"

    def percent(self, batch: int, gpus: int) -> float:
        for row in self.rows:
            if (row.batch_size, row.num_gpus) == (batch, gpus):
                return row.sync_percent
        raise KeyError((batch, gpus))


def sweep_spec(
    network: str = "lenet",
    batch_sizes: Tuple[int, ...] = PAPER_BATCH_SIZES,
    gpu_counts: Tuple[int, ...] = PAPER_GPU_COUNTS,
) -> SweepSpec:
    """The NCCL batch-x-GPU grid behind Table III (one network)."""
    return SweepSpec.grid(
        "table3",
        networks=(network,),
        comm_methods=(CommMethodName.NCCL,),
        batch_sizes=batch_sizes,
        gpu_counts=gpu_counts,
    )


def run(
    runner: Optional[SweepRunner] = None,
    network: str = "lenet",
    batch_sizes: Tuple[int, ...] = PAPER_BATCH_SIZES,
    gpu_counts: Tuple[int, ...] = PAPER_GPU_COUNTS,
) -> Table3Result:
    runner = runner if runner is not None else SweepRunner()
    results = runner.run(sweep_spec(network, batch_sizes, gpu_counts))
    rows: List[Table3Row] = []
    for outcome in results:
        c = outcome.point.config
        result = outcome.result
        iters = len(result.iteration_times)
        sync_total = result.apis.time_of("cudaStreamSynchronize")
        rows.append(
            Table3Row(
                batch_size=c.batch_size,
                num_gpus=c.num_gpus,
                sync_percent=result.apis.percent_of("cudaStreamSynchronize"),
                sync_seconds_per_iter=sync_total / max(1, iters * c.num_gpus),
            )
        )
    return Table3Result(rows=tuple(rows), network=network)


def render(result: Table3Result) -> str:
    return render_table(
        ["Batch Size", "GPU Count", "Sync time (%)", "Sync per iter per GPU"],
        [
            (
                r.batch_size,
                r.num_gpus,
                f"{r.sync_percent:.1f}",
                f"{r.sync_seconds_per_iter * 1e3:.3f} ms",
            )
            for r in result.rows
        ],
        title=(
            f"Table III: cudaStreamSynchronize overhead for {result.network} "
            "(share of CUDA API wall time)"
        ),
    )
