"""Table III: cudaStreamSynchronize API overhead for LeNet.

nvprof's API view attributes to cudaStreamSynchronize the wall time the
host spends blocked on GPU streams.  LeNet's kernels are tiny, so this
dominates the API profile and grows with GPU count (more engine threads,
longer straggler waits) -- the mechanism behind LeNet's non-linear FP+BP
scaling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.config import PAPER_BATCH_SIZES, PAPER_GPU_COUNTS, CommMethodName
from repro.experiments.runner import RunCache
from repro.experiments.tables import render_table


@dataclass(frozen=True)
class Table3Row:
    batch_size: int
    num_gpus: int
    sync_percent: float          # share of total CUDA API wall time
    sync_seconds_per_iter: float


@dataclass(frozen=True)
class Table3Result:
    rows: Tuple[Table3Row, ...]
    network: str = "lenet"

    def percent(self, batch: int, gpus: int) -> float:
        for row in self.rows:
            if (row.batch_size, row.num_gpus) == (batch, gpus):
                return row.sync_percent
        raise KeyError((batch, gpus))


def run(
    cache: Optional[RunCache] = None,
    network: str = "lenet",
    batch_sizes: Tuple[int, ...] = PAPER_BATCH_SIZES,
    gpu_counts: Tuple[int, ...] = PAPER_GPU_COUNTS,
) -> Table3Result:
    cache = cache if cache is not None else RunCache()
    rows: List[Table3Row] = []
    for batch in batch_sizes:
        for gpus in gpu_counts:
            result = cache.get(network, batch, gpus, CommMethodName.NCCL)
            iters = len(result.iteration_times)
            sync_total = result.apis.time_of("cudaStreamSynchronize")
            rows.append(
                Table3Row(
                    batch_size=batch,
                    num_gpus=gpus,
                    sync_percent=result.apis.percent_of("cudaStreamSynchronize"),
                    sync_seconds_per_iter=sync_total / max(1, iters * gpus),
                )
            )
    return Table3Result(rows=tuple(rows), network=network)


def render(result: Table3Result) -> str:
    return render_table(
        ["Batch Size", "GPU Count", "Sync time (%)", "Sync per iter per GPU"],
        [
            (
                r.batch_size,
                r.num_gpus,
                f"{r.sync_percent:.1f}",
                f"{r.sync_seconds_per_iter * 1e3:.3f} ms",
            )
            for r in result.rows
        ],
        title=(
            f"Table III: cudaStreamSynchronize overhead for {result.network} "
            "(share of CUDA API wall time)"
        ),
    )
