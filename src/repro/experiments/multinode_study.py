"""Extension study: scaling beyond one DGX-1 over InfiniBand.

The paper stops at eight GPUs in one chassis and cites multi-node work
(Awan et al.) as the next frontier.  This study extends the simulation to
a cluster of DGX-1s on EDR InfiniBand: NCCL's rings must cross the
12.5 GB/s IB lanes instead of staying on 25-50 GB/s NVLink, so per-GPU
communication cost jumps at the node boundary -- the crossover every
multi-node deployment has to engineer around.

Since the cluster tier landed, the study routes through the rail-aware
fabric and hierarchical collectives by default (``fabric``/``collective``
arguments; see docs/SCALING.md); requesting the old single-attachment
model with ``fabric="aggregated"`` still works but warns once, like the
deprecated ``train_async`` entry point.  For the full 8-to-1024-GPU grid
use the ``cluster`` experiment (:mod:`repro.experiments.cluster_scaling`).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.config import CommMethodName, SimulationConfig, TrainingConfig
from repro.experiments.tables import render_table
from repro.runner import SweepPoint, SweepRunner, SweepSpec

#: Default cluster-tier knobs (the ``aggregated`` fabric is deprecated).
DEFAULT_FABRIC = "single-switch"
DEFAULT_COLLECTIVE = "hierarchical-ring"

_warned_aggregated = False


def _deprecate_aggregated() -> None:
    """Warn once when the pre-rail aggregated IB path is requested."""
    global _warned_aggregated
    if not _warned_aggregated:
        _warned_aggregated = True
        warnings.warn(
            'multinode_study fabric="aggregated" is deprecated: the single '
            "width-4 IB attachment ignores per-HCA rails; use the default "
            'rail-aware fabric (fabric="single-switch") or the cluster '
            "experiment instead (see docs/SCALING.md)",
            DeprecationWarning,
            stacklevel=3,
        )


@dataclass(frozen=True)
class MultiNodeRow:
    """Epoch time and scaling efficiency at one node count."""

    network: str
    nodes: int
    num_gpus: int
    epoch_time: float
    images_per_second: float
    wu_per_iteration: float

    @property
    def label(self) -> str:
        return f"{self.nodes}x8"


@dataclass(frozen=True)
class MultiNodeStudyResult:
    """The DGX-1 cluster scaling study over InfiniBand."""

    batch_size: int
    rows: Tuple[MultiNodeRow, ...]

    def row(self, network: str, nodes: int) -> MultiNodeRow:
        for r in self.rows:
            if (r.network, r.nodes) == (network, nodes):
                return r
        raise KeyError((network, nodes))

    def scaling(self, network: str, nodes: int) -> float:
        """Throughput speedup over the single-node run."""
        base = self.row(network, 1)
        return self.row(network, nodes).images_per_second / base.images_per_second


def _point_config(network: str, batch_size: int, nodes: int,
                  fabric: str) -> TrainingConfig:
    if fabric == "aggregated":
        _deprecate_aggregated()
        return TrainingConfig(
            network, batch_size, 8 * nodes,
            comm_method=CommMethodName.NCCL, cluster_nodes=nodes,
        )
    return TrainingConfig(
        network, batch_size, 8 * nodes,
        comm_method=CommMethodName.NCCL, cluster_nodes=nodes,
        cluster_fabric=fabric, cluster_collective=DEFAULT_COLLECTIVE,
        cluster_fast_path="auto",
    )


def sweep_spec(
    networks: Tuple[str, ...] = ("resnet", "inception-v3"),
    node_counts: Tuple[int, ...] = (1, 2, 4),
    batch_size: int = 32,
    fabric: str = DEFAULT_FABRIC,
) -> SweepSpec:
    """Explicit points: GPU count is derived (8 per chassis) per node count."""
    return SweepSpec.explicit(
        "multinode",
        [
            SweepPoint.make(
                _point_config(network, batch_size, nodes, fabric),
                tags={"nodes": nodes},
            )
            for network in networks
            for nodes in node_counts
        ],
    )


def run(
    networks: Tuple[str, ...] = ("resnet", "inception-v3"),
    node_counts: Tuple[int, ...] = (1, 2, 4),
    batch_size: int = 32,
    sim: Optional[SimulationConfig] = None,
    runner: Optional[SweepRunner] = None,
    fabric: str = DEFAULT_FABRIC,
) -> MultiNodeStudyResult:
    if runner is None:
        runner = SweepRunner(sim=sim or SimulationConfig())
    results = runner.run(sweep_spec(networks, node_counts, batch_size, fabric))
    rows = tuple(
        MultiNodeRow(
            network=o.point.config.network,
            nodes=o.point.config.cluster_nodes,
            num_gpus=o.point.config.num_gpus,
            epoch_time=o.result.epoch_time,
            images_per_second=o.result.images_per_second,
            wu_per_iteration=o.result.stages.wu,
        )
        for o in results
    )
    return MultiNodeStudyResult(batch_size=batch_size, rows=rows)


def render(result: MultiNodeStudyResult) -> str:
    return render_table(
        ["Network", "Nodes", "GPUs", "Epoch (s)", "img/s",
         "Scaling vs 1 node", "Exposed WU/iter"],
        [
            (
                r.network,
                r.label,
                r.num_gpus,
                f"{r.epoch_time:.2f}",
                f"{r.images_per_second:.0f}",
                f"x{result.scaling(r.network, r.nodes):.2f}",
                f"{r.wu_per_iteration * 1e3:.2f} ms",
            )
            for r in result.rows
        ],
        title=(
            f"Multi-node scaling over EDR InfiniBand rails "
            f"(hierarchical NCCL, batch {result.batch_size}/GPU, "
            f"strong scaling)"
        ),
        max_col_width=24,
    )
