"""Extension study: scaling beyond one DGX-1 over InfiniBand.

The paper stops at eight GPUs in one chassis and cites multi-node work
(Awan et al.) as the next frontier.  This study extends the simulation to
a cluster of DGX-1s on EDR InfiniBand: NCCL's rings must cross the
12.5 GB/s IB lanes instead of staying on 25-50 GB/s NVLink, so per-GPU
communication cost jumps at the node boundary -- the crossover every
multi-node deployment has to engineer around.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.config import CommMethodName, SimulationConfig, TrainingConfig
from repro.experiments.tables import render_table
from repro.train import Trainer


@dataclass(frozen=True)
class MultiNodeRow:
    network: str
    nodes: int
    num_gpus: int
    epoch_time: float
    images_per_second: float
    wu_per_iteration: float

    @property
    def label(self) -> str:
        return f"{self.nodes}x8"


@dataclass(frozen=True)
class MultiNodeStudyResult:
    batch_size: int
    rows: Tuple[MultiNodeRow, ...]

    def row(self, network: str, nodes: int) -> MultiNodeRow:
        for r in self.rows:
            if (r.network, r.nodes) == (network, nodes):
                return r
        raise KeyError((network, nodes))

    def scaling(self, network: str, nodes: int) -> float:
        """Throughput speedup over the single-node run."""
        base = self.row(network, 1)
        return self.row(network, nodes).images_per_second / base.images_per_second


def run(
    networks: Tuple[str, ...] = ("resnet", "inception-v3"),
    node_counts: Tuple[int, ...] = (1, 2, 4),
    batch_size: int = 32,
    sim: Optional[SimulationConfig] = None,
) -> MultiNodeStudyResult:
    sim = sim or SimulationConfig()
    rows: List[MultiNodeRow] = []
    for network in networks:
        for nodes in node_counts:
            gpus = 8 * nodes
            config = TrainingConfig(
                network, batch_size, gpus,
                comm_method=CommMethodName.NCCL, cluster_nodes=nodes,
            )
            result = Trainer(config, sim=sim).run()
            rows.append(
                MultiNodeRow(
                    network=network,
                    nodes=nodes,
                    num_gpus=gpus,
                    epoch_time=result.epoch_time,
                    images_per_second=result.images_per_second,
                    wu_per_iteration=result.stages.wu,
                )
            )
    return MultiNodeStudyResult(batch_size=batch_size, rows=tuple(rows))


def render(result: MultiNodeStudyResult) -> str:
    return render_table(
        ["Network", "Nodes", "GPUs", "Epoch (s)", "img/s",
         "Scaling vs 1 node", "Exposed WU/iter"],
        [
            (
                r.network,
                r.label,
                r.num_gpus,
                f"{r.epoch_time:.2f}",
                f"{r.images_per_second:.0f}",
                f"x{result.scaling(r.network, r.nodes):.2f}",
                f"{r.wu_per_iteration * 1e3:.2f} ms",
            )
            for r in result.rows
        ],
        title=(
            f"Multi-node scaling over EDR InfiniBand "
            f"(NCCL, batch {result.batch_size}/GPU, strong scaling)"
        ),
    )
