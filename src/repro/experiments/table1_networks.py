"""Table I: description of the five networks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.dnn import build_network, compile_network, network_input_shape
from repro.dnn.zoo import PAPER_NETWORKS
from repro.experiments.tables import render_table


@dataclass(frozen=True)
class NetworkRow:
    """Layer and parameter counts for one zoo network."""

    network: str
    conv_layers: int
    inception_modules: int
    fc_layers: int
    weights: int
    input_side: int

    @property
    def weights_human(self) -> str:
        if self.weights >= 1_000_000:
            return f"{self.weights / 1e6:.1f}M"
        return f"{self.weights / 1e3:.0f}K"


@dataclass(frozen=True)
class Table1Result:
    """All Table I network-description rows."""

    rows: Tuple[NetworkRow, ...]


def run() -> Table1Result:
    rows: List[NetworkRow] = []
    for name in PAPER_NETWORKS:
        shape = network_input_shape(name)
        stats = compile_network(build_network(name), shape)
        rows.append(
            NetworkRow(
                network=name,
                conv_layers=stats.conv_layer_count,
                inception_modules=(
                    stats.module_count if name in ("googlenet", "inception-v3") else 0
                ),
                fc_layers=stats.fc_layer_count,
                weights=stats.total_params,
                input_side=shape.height,
            )
        )
    return Table1Result(rows=tuple(rows))


def render(result: Table1Result) -> str:
    return render_table(
        ["Network", "Conv Layers", "Incep Modules", "FC Layers", "Weights", "Input"],
        [
            (
                r.network,
                r.conv_layers,
                r.inception_modules,
                r.fc_layers,
                r.weights_human,
                f"{r.input_side}x{r.input_side}",
            )
            for r in result.rows
        ],
        title="Table I: Description of the networks",
    )
