"""repro: a simulation-based reproduction of
"Profiling DNN Workloads on a Volta-based DGX-1 System" (IISWC 2018).

The public API mirrors the paper's experimental workflow::

    from repro import TrainingConfig, CommMethodName, train

    result = train(TrainingConfig("googlenet", batch_size=32, num_gpus=4,
                                  comm_method=CommMethodName.NCCL))
    print(result.describe())

Subpackages
-----------
``repro.sim``        deterministic discrete-event engine
``repro.topology``   DGX-1 NVLink/PCIe/QPI fabric and routing
``repro.gpu``        V100 kernel-cost and memory models
``repro.dnn``        layer IR and the five-network zoo
``repro.comm``       P2P and NCCL weight-update communicators
``repro.train``      the synchronous-SGD trainer
``repro.profile``    nvprof/nvidia-smi style observability
``repro.experiments`` regeneration of every table and figure
"""

from repro.core.config import (
    PAPER_BATCH_SIZES,
    PAPER_GPU_COUNTS,
    CommMethodName,
    ScalingMode,
    SimulationConfig,
    TrainingConfig,
)
from repro.core.constants import CALIBRATION, CalibrationConstants
from repro.core.errors import OutOfMemoryError, ReproError
from repro.dnn import build_network, compile_network, network_input_shape
from repro.dnn.zoo import PAPER_NETWORKS, available_networks
from repro.train import Trainer, TrainingResult, train

__version__ = "1.0.0"

__all__ = [
    "CALIBRATION",
    "CalibrationConstants",
    "CommMethodName",
    "OutOfMemoryError",
    "PAPER_BATCH_SIZES",
    "PAPER_GPU_COUNTS",
    "PAPER_NETWORKS",
    "ReproError",
    "ScalingMode",
    "SimulationConfig",
    "Trainer",
    "TrainingConfig",
    "TrainingResult",
    "available_networks",
    "build_network",
    "compile_network",
    "network_input_shape",
    "train",
    "__version__",
]
