"""Analytical kernel cost model.

Each layer turns into one forward kernel and one or two backward kernels
(dgrad/wgrad for weighted layers).  A kernel's duration is a roofline::

    t = launch_overhead + max(t_compute, t_memory)

where ``t_compute`` splits FLOPs between the tensor-core and fp32 pipelines
and both pipelines apply a saturating efficiency in the amount of work per
kernel -- small kernels cannot fill 80 SMs, which is exactly why LeNet's
per-iteration time barely grows with batch size while Inception-v3's grows
almost linearly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.core.constants import CALIBRATION, CalibrationConstants
from repro.dnn.stats import DTYPE_BYTES, CompiledLayer, NetworkStats
from repro.gpu.spec import TESLA_V100, GpuSpec
from repro.perf.spans import PERF

#: Layer kinds whose FLOPs map onto matrix-multiply hardware.
_MATMUL_KINDS = frozenset({"conv", "fc"})


@dataclass(frozen=True)
class KernelSpec:
    """One GPU kernel: its provenance and its modelled duration."""

    name: str
    layer: str
    stage: str          # "fp" or "bp"
    duration: float     # seconds, including launch overhead
    flops: float
    bytes_moved: int


class KernelCostModel:
    """Maps layer work to kernel durations on a given GPU."""

    def __init__(
        self,
        spec: GpuSpec = TESLA_V100,
        constants: CalibrationConstants = CALIBRATION,
        use_tensor_cores: bool = True,
    ) -> None:
        self.spec = spec
        self.constants = constants
        self.use_tensor_cores = use_tensor_cores

    # ------------------------------------------------------------------
    # Primitive cost
    # ------------------------------------------------------------------
    def _saturating(self, work: float, half_saturation: float) -> float:
        """Achieved fraction of peak for a kernel of ``work`` size."""
        if work <= 0:
            return 1.0
        return work / (work + half_saturation)

    @staticmethod
    def _service_time(work: float, peak: float, half_saturation: float) -> float:
        """Time for ``work`` at a saturating achieved rate.

        ``t = work / (peak * work/(work + half))`` simplifies to
        ``(work + half) / peak`` -- an affine form that is numerically
        safe for arbitrarily small positive work.
        """
        if work <= 0:
            return 0.0
        return (work + half_saturation) / peak

    def kernel_time(self, flops: float, bytes_moved: float, matmul: bool) -> float:
        """Duration of one kernel moving ``bytes_moved`` and computing ``flops``."""
        c = self.constants
        t_compute = 0.0
        if flops > 0:
            if matmul and self.use_tensor_cores:
                tensor_flops = flops * c.tensor_core_fraction
                fp32_flops = flops - tensor_flops
            else:
                tensor_flops, fp32_flops = 0.0, flops
            t_compute += self._service_time(
                tensor_flops,
                self.spec.tensor_flops * c.max_compute_efficiency,
                c.tensor_half_saturation_flops,
            )
            t_compute += self._service_time(
                fp32_flops,
                self.spec.fp32_flops * c.max_compute_efficiency,
                c.fp32_half_saturation_flops,
            )
        t_memory = self._service_time(
            bytes_moved, self.spec.memory_bandwidth, c.memory_half_saturation_bytes
        )
        return c.kernel_launch_overhead + max(t_compute, t_memory)

    # ------------------------------------------------------------------
    # Per-layer kernels
    # ------------------------------------------------------------------
    def forward_kernels(self, layer: CompiledLayer, batch: int) -> List[KernelSpec]:
        """Forward kernels of one layer for a mini-batch."""
        if layer.forward_flops == 0 and layer.kind.value == "reshape":
            return []  # views launch nothing
        flops = layer.forward_flops * batch
        bytes_moved = (layer.input_numel + layer.output_numel) * DTYPE_BYTES * batch
        duration = self.kernel_time(flops, bytes_moved, layer.kind.value in _MATMUL_KINDS)
        return [
            KernelSpec(
                name=f"{layer.name}.fwd",
                layer=layer.name,
                stage="fp",
                duration=duration,
                flops=flops,
                bytes_moved=bytes_moved,
            )
        ]

    def backward_kernels(self, layer: CompiledLayer, batch: int) -> List[KernelSpec]:
        """Backward kernels (dgrad + wgrad for weighted layers)."""
        if layer.backward_kernels == 0:
            return []
        flops_total = layer.backward_flops * batch
        bytes_total = (
            2 * (layer.input_numel + layer.output_numel) * DTYPE_BYTES * batch
        )
        count = layer.backward_kernels
        kernels = []
        suffixes = ("dgrad", "wgrad") if count == 2 else ("bwd",)
        for suffix in suffixes:
            duration = self.kernel_time(
                flops_total / count,
                bytes_total / count,
                layer.kind.value in _MATMUL_KINDS,
            )
            kernels.append(
                KernelSpec(
                    name=f"{layer.name}.{suffix}",
                    layer=layer.name,
                    stage="bp",
                    duration=duration,
                    flops=flops_total / count,
                    bytes_moved=bytes_total // count,
                )
            )
        return kernels

    # ------------------------------------------------------------------
    # Whole-network schedules
    # ------------------------------------------------------------------
    def forward_schedule(self, stats: NetworkStats, batch: int) -> List[KernelSpec]:
        """All forward kernels in topological order."""
        with PERF.span("costmodel.schedule"):
            kernels: List[KernelSpec] = []
            for layer in stats.layers:
                kernels.extend(self.forward_kernels(layer, batch))
            if PERF.enabled:
                PERF.count("costmodel.kernels", len(kernels))
            return kernels

    def backward_schedule(
        self, stats: NetworkStats, batch: int
    ) -> List[Tuple[CompiledLayer, List[KernelSpec]]]:
        """Backward kernels in reverse topological order, grouped by layer.

        Grouping preserves the gradient-readiness boundary the trainer needs
        for BP/WU overlap: once a layer's backward kernels finish, its
        weight gradients may be pushed to the KVStore.
        """
        with PERF.span("costmodel.schedule"):
            schedule: List[Tuple[CompiledLayer, List[KernelSpec]]] = []
            for layer in reversed(stats.layers):
                schedule.append((layer, self.backward_kernels(layer, batch)))
            if PERF.enabled:
                PERF.count("costmodel.kernels",
                           sum(len(k) for _, k in schedule))
            return schedule

    # ------------------------------------------------------------------
    # Aggregates used for reporting
    # ------------------------------------------------------------------
    def iteration_compute_time(self, stats: NetworkStats, batch: int) -> float:
        """Serial FP+BP kernel time for one iteration (no comm, no sync)."""
        total = sum(k.duration for k in self.forward_schedule(stats, batch))
        for _, kernels in self.backward_schedule(stats, batch):
            total += sum(k.duration for k in kernels)
        return total

    def compute_utilization(self, stats: NetworkStats, batch: int) -> float:
        """Achieved fraction of peak fp32+tensor throughput during FP+BP."""
        busy = self.iteration_compute_time(stats, batch)
        if busy <= 0:
            return 0.0
        flops = (
            stats.forward_flops_per_sample + stats.backward_flops_per_sample
        ) * batch
        peak = self.spec.fp32_flops + (
            self.spec.tensor_flops - self.spec.fp32_flops
        ) * (self.constants.tensor_core_fraction if self.use_tensor_cores else 0.0)
        return min(1.0, flops / (busy * peak))
