"""Runtime GPU object used inside a simulation.

A :class:`GpuDevice` owns a single execution engine resource -- DNN
training kernels are large enough to occupy the whole SM array, so kernels
issued to any stream of one GPU serialize, while different GPUs run fully
in parallel.  Kernel executions are reported to an optional profiler
(anything with a ``record_kernel`` method; see
:class:`repro.profile.profiler.Profiler`).
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.obs.events import EngineWaitEvent
from repro.sim import Environment, Resource
from repro.sim.events import Event
from repro.gpu.kernel import KernelSpec
from repro.gpu.spec import TESLA_V100, GpuSpec
from repro.topology.nodes import GpuNode


class GpuDevice:
    """One GPU of the simulated system."""

    def __init__(
        self,
        env: Environment,
        node: GpuNode,
        spec: GpuSpec = TESLA_V100,
        profiler: Optional[object] = None,
        speed_factor=1.0,
        ecc: Optional[object] = None,
    ) -> None:
        """``speed_factor`` scales every kernel's duration on this device
        (>1 = slower); used for straggler-injection studies.  It is either
        a plain number (constant slowdown) or anything with an
        ``at(now) -> float`` method -- e.g. a
        :class:`~repro.faults.plan.SlowdownProfile` -- sampled at each
        kernel's start time for time-varying throttling.  ``ecc`` is an
        optional :class:`~repro.faults.injector.EccModel` adding a retry
        latency to memory-bound kernels (``delay(kernel) -> float``)."""
        # Duck-typed rather than isinstance so the gpu layer stays
        # decoupled from repro.faults (which sits above it).
        self.slowdown = speed_factor if hasattr(speed_factor, "at") else None
        if self.slowdown is None:
            speed_factor = float(speed_factor)
            if speed_factor <= 0:
                raise ValueError("speed_factor must be positive")
        self.env = env
        self.node = node
        self.spec = spec
        self.profiler = profiler
        self.speed_factor = speed_factor
        self.ecc = ecc
        self.engine = Resource(env, capacity=1)
        self.busy_time = 0.0

    @property
    def index(self) -> int:
        return self.node.index

    def run_kernel(self, kernel: KernelSpec) -> Generator[Event, None, None]:
        """Process: execute one kernel on this GPU's SM array."""
        issued = self.env.now
        req = self.engine.request()
        yield req
        start = self.env.now
        if self.slowdown is not None:
            duration = kernel.duration * self.slowdown.at(start)
        else:
            duration = kernel.duration * self.speed_factor
        if self.ecc is not None:
            duration += self.ecc.delay(kernel)
        try:
            yield self.env.timeout(duration)
        finally:
            end = self.env.now
            self.busy_time += end - start
            self.engine.release(req)
            if self.profiler is not None:
                self.profiler.record_kernel(self.index, kernel, start, end)
                # Queueing delay behind earlier kernels, for the metrics
                # bridge (profilers without a bus simply lack ``publish``).
                publish = getattr(self.profiler, "publish", None)
                if publish is not None and start > issued:
                    publish(EngineWaitEvent(
                        gpu=self.index, kernel=kernel.name,
                        wait=start - issued, at=start,
                    ))

    def run_kernels(self, kernels) -> Generator[Event, None, None]:
        """Process: execute a list of kernels back to back."""
        for kernel in kernels:
            yield self.env.process(self.run_kernel(kernel))
