"""Device-memory footprint model (paper Table IV).

The model mirrors how the paper's MXNet container lays out a training run:

* **pre-training**: CUDA context + cuDNN/cuBLAS handles, the framework's
  reserved pool, and one copy of the network parameters (identical on every
  GPU -- Table IV's ``GPUz`` column);
* **training** adds, per GPU: gradients and SGD momentum (two more
  parameter-sized arrays), the materialized forward activations (gradient
  buffers are recycled by MXNet's memory planner, so activations scale with
  ``activation_training_multiplier``, calibrated to 1.0), one cached cuDNN
  workspace per convolution (im2col-sized, batch-proportional, capped per
  operator), and the double-buffered input batch;
* **GPU0** (the parameter server of MXNet's device/NCCL KVStore)
  additionally holds the gradient-aggregation and updated-weight buffers,
  which is why Table IV shows GPU0 above every other GPU and why the gap
  *shrinks* in relative terms as batch size grows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.constants import CALIBRATION, CalibrationConstants
from repro.core.errors import OutOfMemoryError
from repro.core.units import GIB
from repro.dnn.stats import DTYPE_BYTES, NetworkStats
from repro.gpu.spec import TESLA_V100, GpuSpec
from repro.train.optimizers import SGD_MOMENTUM, OptimizerSpec




@dataclass(frozen=True)
class MemoryUsage:
    """Breakdown of one GPU's memory at a point of the run (bytes)."""

    context: int
    parameters: int
    activations: int
    workspace: int
    input_batch: int
    server_buffers: int

    @property
    def total(self) -> int:
        return (
            self.context
            + self.parameters
            + self.activations
            + self.workspace
            + self.input_batch
            + self.server_buffers
        )

    @property
    def total_gib(self) -> float:
        return self.total / GIB

    @property
    def total_gb(self) -> float:
        return self.total / 1e9


class MemoryModel:
    """Computes per-GPU memory footprints for a network and batch size."""

    def __init__(
        self,
        spec: GpuSpec = TESLA_V100,
        constants: CalibrationConstants = CALIBRATION,
        optimizer: OptimizerSpec = SGD_MOMENTUM,
    ) -> None:
        self.spec = spec
        self.constants = constants
        self.optimizer = optimizer

    def _context(self) -> int:
        return self.constants.cuda_context_bytes + self.constants.framework_reserved_bytes

    def workspace_bytes(self, stats: NetworkStats, batch: int) -> int:
        """Sum of cached per-convolution cuDNN workspaces."""
        cap = self.constants.cudnn_per_op_workspace_cap
        return sum(
            min(op_bytes * batch, cap)
            for op_bytes in stats.conv_im2col_bytes_per_sample
        )

    def pretraining(self, stats: NetworkStats) -> MemoryUsage:
        """Footprint after the model broadcast, before the first batch."""
        return MemoryUsage(
            context=self._context(),
            parameters=stats.model_bytes,
            activations=0,
            workspace=0,
            input_batch=0,
            server_buffers=0,
        )

    def training(
        self, stats: NetworkStats, batch: int, is_server: bool = False
    ) -> MemoryUsage:
        """Steady-state footprint during training.

        ``is_server`` selects GPU0, which carries the KVStore aggregation
        buffers on top of a worker's footprint.
        """
        c = self.constants
        activations = int(
            stats.materialized_activation_bytes_per_sample
            * batch
            * c.activation_training_multiplier
        )
        input_batch = stats.input_shape.numel * DTYPE_BYTES * batch * 2  # double buffer
        server = c.server_extra_copies * stats.model_bytes if is_server else 0
        return MemoryUsage(
            context=self._context(),
            # weights + gradients + optimizer state, all parameter-sized
            parameters=self.optimizer.param_copies * stats.model_bytes,
            activations=activations,
            workspace=self.workspace_bytes(stats, batch),
            input_batch=input_batch,
            server_buffers=server,
        )

    def check_fits(self, stats: NetworkStats, batch: int, is_server: bool = True) -> None:
        """Raise :class:`OutOfMemoryError` if training cannot fit."""
        usage = self.training(stats, batch, is_server=is_server)
        if usage.total > self.spec.memory_bytes:
            raise OutOfMemoryError(
                device=self.spec.name,
                requested=usage.total,
                free=self.spec.memory_bytes,
            )

    def max_batch_size(self, stats: NetworkStats, limit: int = 4096) -> int:
        """Largest per-GPU batch size that trains without OOM."""
        best = 0
        batch = 1
        while batch <= limit:
            try:
                self.check_fits(stats, batch)
            except OutOfMemoryError:
                break
            best = batch
            batch *= 2
        if best == 0:
            return 0
        lo, hi = best, min(limit, best * 2)
        while lo + 1 < hi:
            mid = (lo + hi) // 2
            try:
                self.check_fits(stats, mid)
                lo = mid
            except OutOfMemoryError:
                hi = mid
        return lo
