"""Tesla V100 GPU model.

:mod:`repro.gpu.spec` holds the hardware description,
:mod:`repro.gpu.kernel` converts layer work into kernel durations (a
roofline with batch-dependent efficiency and launch overhead),
:mod:`repro.gpu.memory` computes device-memory footprints, and
:mod:`repro.gpu.device` is the runtime object processes execute kernels on.
"""

from repro.gpu.device import GpuDevice
from repro.gpu.kernel import KernelCostModel, KernelSpec
from repro.gpu.memory import MemoryModel, MemoryUsage
from repro.gpu.spec import TESLA_V100, GpuSpec

__all__ = [
    "GpuDevice",
    "GpuSpec",
    "KernelCostModel",
    "KernelSpec",
    "MemoryModel",
    "MemoryUsage",
    "TESLA_V100",
]
