"""Hardware description of the Tesla V100 (SXM2, as in the DGX-1)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.units import GIB, gbps


@dataclass(frozen=True)
class GpuSpec:
    """Static capabilities of one GPU."""

    name: str
    sm_count: int
    fp32_flops: float          # peak single-precision FLOP/s
    tensor_flops: float        # peak tensor-core FLOP/s (fp16 accumulate)
    memory_bytes: int          # device memory capacity
    memory_bandwidth: float    # bytes/second
    nvlink_ports: int

    @property
    def tensor_speedup(self) -> float:
        """How much faster tensor cores are than the fp32 pipeline."""
        return self.tensor_flops / self.fp32_flops


#: The GPU in the Volta-based DGX-1: 80 SMs, 15.7 TFLOP/s fp32,
#: 125 TFLOP/s tensor, 16 GiB HBM2 at 900 GB/s, six NVLink 2.0 ports.
TESLA_V100 = GpuSpec(
    name="Tesla V100-SXM2-16GB",
    sm_count=80,
    fp32_flops=15.7e12,
    tensor_flops=125.0e12,
    memory_bytes=16 * GIB,
    memory_bandwidth=gbps(900.0),
    nvlink_ports=6,
)

#: The 32 GiB V100 refresh -- the capacity bump the paper's Section V-D
#: calls for ("future research should focus on increasing memory
#: capacity"); identical compute.
TESLA_V100_32GB = GpuSpec(
    name="Tesla V100-SXM2-32GB",
    sm_count=80,
    fp32_flops=15.7e12,
    tensor_flops=125.0e12,
    memory_bytes=32 * GIB,
    memory_bandwidth=gbps(900.0),
    nvlink_ports=6,
)

#: The Pascal-generation GPU of the original DGX-1 (the system Gawande et
#: al. study): no tensor cores, four NVLink 1.0 ports, 16 GiB at 732 GB/s.
TESLA_P100 = GpuSpec(
    name="Tesla P100-SXM2-16GB",
    sm_count=56,
    fp32_flops=10.6e12,
    tensor_flops=10.6e12,  # no tensor cores: same pipeline
    memory_bytes=16 * GIB,
    memory_bandwidth=gbps(732.0),
    nvlink_ports=4,
)
