"""Labelled metric instruments and their registry.

A deliberately small, dependency-free subset of the Prometheus client
model: ``Counter`` (monotone), ``Gauge`` (set/inc/dec) and ``Histogram``
(cumulative buckets + sum + count), each with a fixed label schema declared
at creation.  ``registry.counter(...)`` is get-or-create, so instrumented
components can name a metric without coordinating initialization order;
re-declaring a name with a different kind or label schema is an error.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.errors import ReproError

#: Default histogram buckets: event durations span ~1us ring steps to
#: multi-second epochs, so decade buckets with a 2.5x midpoint cover them.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-6, 2.5e-6, 1e-5, 2.5e-5, 1e-4, 2.5e-4,
    1e-3, 2.5e-3, 1e-2, 2.5e-2, 1e-1, 2.5e-1, 1.0, 10.0,
)

LabelValues = Tuple[str, ...]


class MetricError(ReproError):
    """Misuse of a metric instrument (bad labels, kind mismatch, ...)."""


class Metric:
    """Base instrument: a family of children keyed by label values."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> None:
        self.name = name
        self.help = help
        self.labelnames: Tuple[str, ...] = tuple(labelnames)
        self._children: Dict[LabelValues, "_Child"] = {}

    def labels(self, **labels: object) -> "_Child":
        """The child instrument for one combination of label values."""
        if set(labels) != set(self.labelnames):
            raise MetricError(
                f"{self.name}: expected labels {self.labelnames}, got {tuple(labels)}"
            )
        key = tuple(str(labels[n]) for n in self.labelnames)
        child = self._children.get(key)
        if child is None:
            child = self._make_child()
            self._children[key] = child
        return child

    def _default_child(self) -> "_Child":
        if self.labelnames:
            raise MetricError(f"{self.name} is labelled; call .labels(...) first")
        return self.labels()

    def _make_child(self) -> "_Child":
        raise NotImplementedError

    def items(self) -> Iterable[Tuple[Dict[str, str], "_Child"]]:
        """(label dict, child) pairs in deterministic (sorted) order."""
        for key in sorted(self._children):
            yield dict(zip(self.labelnames, key)), self._children[key]


class _Child:
    pass


class _CounterChild(_Child):
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError("counters can only increase")
        self.value += amount


class Counter(Metric):
    """A monotonically increasing total."""

    kind = "counter"

    def _make_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        """Increment the unlabelled child (labelless metrics only)."""
        self._default_child().inc(amount)

    @property
    def value(self) -> float:
        return self._default_child().value


class _GaugeChild(_Child):
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Gauge(Metric):
    """A value that can go up and down."""

    kind = "gauge"

    def _make_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default_child().dec(amount)

    @property
    def value(self) -> float:
        return self._default_child().value


class _HistogramChild(_Child):
    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Tuple[float, ...]) -> None:
        self.buckets = buckets
        self.counts = [0] * len(buckets)   # cumulative at render time
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                break

    def cumulative_counts(self) -> List[int]:
        """Per-bucket cumulative counts (Prometheus ``le`` semantics)."""
        out, running = [], 0
        for c in self.counts:
            running += c
            out.append(running)
        return out


class Histogram(Metric):
    """A distribution summarized by cumulative buckets."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise MetricError("histogram needs at least one bucket")
        self.buckets: Tuple[float, ...] = bounds

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def observe(self, value: float) -> None:
        self._default_child().observe(value)


class MetricsRegistry:
    """Owns every instrument of one observability session."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(self, cls, name: str, help: str,
                       labelnames: Sequence[str], **kwargs) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls:
                raise MetricError(
                    f"{name} already registered as {existing.kind}, not {cls.kind}"
                )
            if existing.labelnames != tuple(labelnames):
                raise MetricError(
                    f"{name} already registered with labels {existing.labelnames}"
                )
            return existing
        metric = cls(name, help, labelnames, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "", labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(Histogram, name, help, labelnames,
                                   buckets=buckets)

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def collect(self) -> Iterable[Metric]:
        """All metrics, sorted by name (deterministic export order)."""
        for name in sorted(self._metrics):
            yield self._metrics[name]

    # Convenience accessors used by tests and reports -------------------
    def counter_value(self, name: str, **labels: object) -> float:
        """Current value of one counter child (0.0 if never touched)."""
        metric = self._metrics.get(name)
        if metric is None:
            return 0.0
        if not isinstance(metric, Counter):
            raise MetricError(f"{name} is a {metric.kind}, not a counter")
        key = tuple(str(labels[n]) for n in metric.labelnames)
        child = metric._children.get(key)
        return child.value if child is not None else 0.0

    def label_sets(self, name: str) -> List[Mapping[str, str]]:
        """Every label combination a metric has been touched with."""
        metric = self._metrics.get(name)
        if metric is None:
            return []
        return [labels for labels, _ in metric.items()]
