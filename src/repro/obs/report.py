"""nvprof-style text reports over a profiled run.

:func:`render_gpu_summary` reproduces the shape of
``nvprof --print-gpu-summary``: a "GPU activities" table (kernels grouped
by name, memcpys grouped by kind) and an "API calls" table, each row with
Time(%), total Time, Calls, Avg/Min/Max and Name, ordered by total time.
"""

from __future__ import annotations

import io
from collections import defaultdict
from typing import Dict, Iterable, List, Tuple

#: nvprof's naming for data movement rows.
_TRANSFER_NAMES = {
    "h2d": "[CUDA memcpy HtoD]",
    "d2h": "[CUDA memcpy DtoH]",
    "p2p": "[CUDA memcpy PtoP]",
    "nccl": "[NCCL collective]",
}


def _format_time(seconds: float) -> str:
    """nvprof-style adaptive units (ns / us / ms / s)."""
    if seconds >= 1.0:
        return f"{seconds:.5f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.4f}ms"
    if seconds >= 1e-6:
        return f"{seconds * 1e6:.3f}us"
    return f"{seconds * 1e9:.0f}ns"


class _Row:
    __slots__ = ("name", "total", "calls", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.total = 0.0
        self.calls = 0
        self.min = float("inf")
        self.max = 0.0

    def add(self, duration: float) -> None:
        self.total += duration
        self.calls += 1
        self.min = min(self.min, duration)
        self.max = max(self.max, duration)


def _accumulate(intervals: Iterable[Tuple[str, float]]) -> List[_Row]:
    rows: Dict[str, _Row] = {}
    for name, duration in intervals:
        row = rows.get(name)
        if row is None:
            row = rows[name] = _Row(name)
        row.add(duration)
    return sorted(rows.values(), key=lambda r: (-r.total, r.name))


def _render_table(title: str, rows: List[_Row], out: io.StringIO) -> None:
    out.write(f"{title}:\n")
    if not rows:
        out.write("    (none recorded)\n")
        return
    header = (f"    {'Time(%)':>8}  {'Time':>10}  {'Calls':>6}  "
              f"{'Avg':>10}  {'Min':>10}  {'Max':>10}  Name\n")
    out.write(header)
    grand_total = sum(r.total for r in rows)
    for row in rows:
        pct = 100.0 * row.total / grand_total if grand_total > 0 else 0.0
        avg = row.total / row.calls if row.calls else 0.0
        out.write(
            f"    {pct:8.2f}  {_format_time(row.total):>10}  {row.calls:6d}  "
            f"{_format_time(avg):>10}  {_format_time(row.min):>10}  "
            f"{_format_time(row.max):>10}  {row.name}\n"
        )


def render_gpu_summary(profiler) -> str:
    """``nvprof --print-gpu-summary`` over a profiler's measured window.

    ``profiler`` is anything exposing the four record lists
    (:class:`~repro.profile.profiler.Profiler`).
    """
    out = io.StringIO()
    window_start = min(
        (r.start for records in (profiler.kernels, profiler.transfers,
                                 profiler.apis, profiler.spans)
         for r in records),
        default=0.0,
    )
    window_end = max(
        (r.end for records in (profiler.kernels, profiler.transfers,
                               profiler.apis, profiler.spans)
         for r in records),
        default=0.0,
    )
    out.write("==PROF== Profiling result (simulated, "
              f"window {window_start * 1e3:.3f}ms..{window_end * 1e3:.3f}ms):\n")

    activities = [(k.name, k.duration) for k in profiler.kernels]
    activities += [
        (_TRANSFER_NAMES.get(t.kind, f"[transfer {t.kind}]"), t.duration)
        for t in profiler.transfers
    ]
    _render_table("GPU activities", _accumulate(activities), out)
    _render_table("API calls",
                  _accumulate((a.name, a.duration) for a in profiler.apis), out)

    # Per-GPU busy time mirrors the paper's utilization discussion.
    busy: Dict[int, float] = defaultdict(float)
    counts: Dict[int, int] = defaultdict(int)
    for k in profiler.kernels:
        busy[k.gpu] += k.duration
        counts[k.gpu] += 1
    window = window_end - window_start
    out.write("Per-GPU kernel occupancy:\n")
    if not busy:
        out.write("    (none recorded)\n")
    for gpu in sorted(busy):
        frac = busy[gpu] / window if window > 0 else 0.0
        out.write(
            f"    gpu{gpu}: {_format_time(busy[gpu]):>10} busy "
            f"({100.0 * frac:5.1f}% of window, {counts[gpu]} kernels)\n"
        )
    return out.getvalue()
