"""One-line bundle of bus + registry + recorder for a profiled run.

An :class:`ObsSession` is what callers hand to a
:class:`~repro.train.trainer.Trainer`::

    obs = ObsSession()
    result = Trainer(config, keep_profiler=True, obs=obs).run()
    print(render_prometheus(obs.registry))
    obs.recorder.write(open("run.jsonl", "w"))

The session owns the :class:`~repro.obs.bus.EventBus` every instrumented
component publishes to, the :class:`~repro.obs.metrics.MetricsRegistry`
fed by :func:`~repro.obs.bridge.install_default_metrics`, and (optionally)
a :class:`~repro.obs.export.JsonlRecorder` capturing the raw event stream.
Use one session per run: subscribers accumulate, so sharing a session
across runs merges their streams.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.obs.bridge import install_default_metrics
from repro.obs.bus import EventBus
from repro.obs.events import QueueDepthEvent
from repro.obs.export import JsonlRecorder
from repro.obs.metrics import MetricsRegistry


class ObsSession:
    """Everything needed to observe one simulated training run."""

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        bus: Optional[EventBus] = None,
        record_events: bool = True,
        queue_sample_every: int = 32,
    ) -> None:
        """``queue_sample_every`` throttles engine queue-depth sampling to
        every Nth simulation step (the engine steps millions of times)."""
        if queue_sample_every < 1:
            raise ValueError("queue_sample_every must be >= 1")
        self.bus = bus if bus is not None else EventBus()
        self.registry = registry if registry is not None else MetricsRegistry()
        install_default_metrics(self.bus, self.registry)
        self.recorder: Optional[JsonlRecorder] = (
            JsonlRecorder(self.bus) if record_events else None
        )
        self.queue_sample_every = queue_sample_every

    def queue_observer(self, publisher) -> Callable[[float, int], None]:
        """An :meth:`Environment.set_observer` callback publishing depth
        samples through ``publisher`` (anything with ``publish``, normally
        the run's profiler so samples honour the measurement window)."""

        def observe(now: float, depth: int) -> None:
            publisher.publish(QueueDepthEvent(now=now, depth=depth))

        return observe
