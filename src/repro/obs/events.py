"""The typed event taxonomy of the observability bus.

Every instrumented component emits one of these frozen dataclasses onto an
:class:`~repro.obs.bus.EventBus`:

===================  ======================================================
event                emitted by
===================  ======================================================
KernelEvent          :class:`~repro.gpu.device.GpuDevice` (via the profiler)
TransferEvent        communicators and the trainer's input staging
ApiEvent             the trainer's host-side CUDA API accounting
SpanEvent            the trainer's FP/BP/WU/iteration stage spans
EngineWaitEvent      :class:`~repro.gpu.device.GpuDevice` queueing delay
LinkBusyEvent        :class:`~repro.topology.fabric.Fabric`, one per DMA
                     per directed link it holds
LinkWaitEvent        fabric FIFO queueing and NCCL stream contention,
                     attributed to the directed link that was busy
RingStepEvent        :mod:`repro.comm.nccl` per-ring-step timing
ProtocolChoiceEvent  the NCCL tuner, one per collective in non-compat
                     algorithm/protocol modes (see docs/COMM.md)
CollectiveChunkEvent :mod:`repro.comm.nccl` per-chunk timing of tree
                     collectives (non-compat modes)
QueueDepthEvent      :class:`~repro.sim.engine.Environment` (sampled)
SweepPointStart      :class:`~repro.runner.SweepRunner`, per sweep point
SweepPointDone       the runner, on result (executed or cache hit)
SweepPointOom        the runner, on an out-of-memory point
SweepPointRetry      the runner, before re-executing a failed point
SweepPointFailed     the runner, when a point exhausts its retries
FaultInjectedEvent   the trainer's fault layer, per fault activation
RouteRecomputedEvent the fault layer, when link faults change the topology
RingRebuiltEvent     the fault layer, per NCCL communicator rebuild
RecoveryCostEvent    the fault layer, per crash-recovery charge
InvariantViolationEvent :class:`repro.checks.CheckEngine`, per violated
                     invariant in ``warn``/``strict`` modes
ServiceRequestEvent  :class:`repro.service.SweepService`, one per
                     completed (or rejected) client request
===================  ======================================================

All timestamps are simulated seconds; byte counts are plain ints; ``src``
and ``dst`` on link-level events are node names (``gpu0``, ``cpu1``, ...),
while on GPU-level events they are GPU indices (``-1`` = host/all).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ObsEvent:
    """Base class: lets subscribers register for *every* event type."""


@dataclass(frozen=True)
class KernelEvent(ObsEvent):
    """One kernel execution on one GPU."""

    gpu: int
    name: str
    layer: str
    stage: str       # "fp" | "bp" | "wu"
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class TransferEvent(ObsEvent):
    """One inter-device data movement (P2P DMA, NCCL collective, HtoD)."""

    kind: str        # "p2p" | "nccl" | "h2d" | "d2h"
    src: int
    dst: int         # -1 for collectives involving all GPUs
    nbytes: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class ApiEvent(ObsEvent):
    """One CUDA runtime API call on the host."""

    name: str
    gpu: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class SpanEvent(ObsEvent):
    """A labelled stage span (fp / bp / wu / iteration)."""

    name: str
    gpu: int         # -1 for global spans
    iteration: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class EngineWaitEvent(ObsEvent):
    """Time a kernel spent queued behind others on one GPU's SM array."""

    gpu: int
    kernel: str
    wait: float
    at: float        # grant time


@dataclass(frozen=True)
class LinkBusyEvent(ObsEvent):
    """One DMA's occupancy of one directed physical link."""

    link: str        # canonical link name, e.g. "gpu0<->gpu1:nvlinkx2"
    src: str         # directed source endpoint name
    dst: str
    link_type: str   # "nvlink" | "pcie" | "qpi" | "infiniband"
    nbytes: int
    start: float     # grant time
    end: float

    @property
    def busy(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class LinkWaitEvent(ObsEvent):
    """Contention: time a transfer waited for a busy directed link."""

    link: str
    src: str
    dst: str
    link_type: str
    wait: float
    at: float        # grant time (end of the wait)


@dataclass(frozen=True)
class RingStepEvent(ObsEvent):
    """One hop of a pipelined NCCL ring collective.

    ``nbytes`` is what this hop's link carries during the step: the full
    wire payload for root-bound Reduce/Broadcast streams, ``S/N`` chunks
    for the reduce-scatter/all-gather phases of AllReduce.
    """

    collective: str  # "reduce" | "broadcast" | "allreduce"
    array: str
    step: int
    src: int         # GPU index of the sending ring member
    dst: int
    link_type: str
    nbytes: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class ProtocolChoiceEvent(ObsEvent):
    """The NCCL tuner resolved one collective's algorithm and protocol.

    Emitted once per collective call in non-compat modes.  ``pinned`` is
    true when the training configuration fixed both axes; otherwise the
    cost model chose the combination and ``predicted`` is its modelled
    duration (which is also what the simulation charges).
    """

    collective: str  # "reduce" | "broadcast" | "allreduce"
    array: str
    nbytes: int
    algorithm: str   # "ring" | "tree"
    protocol: str    # "simple" | "ll" | "ll128"
    predicted: float
    pinned: bool
    at: float        # collective start time


@dataclass(frozen=True)
class CollectiveChunkEvent(ObsEvent):
    """One pipelined chunk crossing one tree edge of a collective.

    The tree analogue of :class:`RingStepEvent`: ``chunk`` of
    ``num_chunks`` rounds, direction encoded by ``src``/``dst`` (child
    to parent while reducing, parent to child while broadcasting).
    """

    collective: str
    array: str
    algorithm: str
    protocol: str
    chunk: int
    num_chunks: int
    src: int         # GPU index of the sending tree member
    dst: int
    link_type: str
    nbytes: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class QueueDepthEvent(ObsEvent):
    """Sampled depth of the simulation engine's event heap."""

    now: float
    depth: int


@dataclass(frozen=True)
class SweepPointStart(ObsEvent):
    """A :class:`~repro.runner.SweepRunner` picked up one sweep point."""

    sweep: str       # SweepSpec name
    index: int       # 0-based position within the spec
    total: int
    label: str       # point.describe()


@dataclass(frozen=True)
class SweepPointDone(ObsEvent):
    """One sweep point produced a result."""

    sweep: str
    index: int
    total: int
    label: str
    source: str      # "executed" | "memory" | "disk"
    elapsed: float   # wall seconds (0.0 for cache hits)


@dataclass(frozen=True)
class SweepPointOom(ObsEvent):
    """One sweep point failed with an out-of-memory error."""

    sweep: str
    index: int
    total: int
    label: str
    message: str


@dataclass(frozen=True)
class SweepPointRetry(ObsEvent):
    """A failed/timed-out sweep point is about to be re-executed."""

    sweep: str
    index: int
    total: int
    label: str
    attempt: int     # the attempt that just failed (1-based)
    max_attempts: int
    reason: str      # one-line failure description
    backoff: float   # simulated-deterministic backoff charged before retry (s)


@dataclass(frozen=True)
class SweepPointFailed(ObsEvent):
    """A sweep point exhausted its retries and was recorded as failed."""

    sweep: str
    index: int
    total: int
    label: str
    attempts: int
    reason: str


@dataclass(frozen=True)
class FaultInjectedEvent(ObsEvent):
    """One fault from a :class:`~repro.faults.plan.FaultPlan` activated."""

    fault: str       # fault label, e.g. "link:gpu0<->gpu1:nvlinkx1:down@5s"
    kind: str        # "link" | "straggler" | "ecc" | "crash"
    at: float        # epoch-timeline seconds


@dataclass(frozen=True)
class RouteRecomputedEvent(ObsEvent):
    """Link faults changed the routable topology; routes were recomputed."""

    reason: str      # "link-fault" | "crash"
    surviving_links: int
    failed_links: int
    cost: float      # modeled host-side recompute cost charged (s)
    at: float


@dataclass(frozen=True)
class RingRebuiltEvent(ObsEvent):
    """The NCCL communicator was rebuilt over the surviving GPUs/links."""

    gpus: int
    uses_pcie: bool  # the new ring fell back to PCIe
    bandwidth: float # new aggregate ring bandwidth (bytes/s)
    cost: float      # modeled re-init cost charged (s)
    at: float


@dataclass(frozen=True)
class RecoveryCostEvent(ObsEvent):
    """A crash-recovery policy charged its modeled cost."""

    policy: str      # "shrink" | "checkpoint-restart"
    gpu: int         # the crashed GPU
    iteration: int   # epoch iteration the crash was observed at
    cost: float      # seconds charged at the crash point
    replayed_iterations: int
    at: float


@dataclass(frozen=True)
class InvariantViolationEvent(ObsEvent):
    """A physical-invariant checker rejected a checkpoint payload.

    Published by :class:`repro.checks.CheckEngine` in ``warn`` and
    ``strict`` modes (in strict mode the matching
    :class:`~repro.core.errors.InvariantViolationError` is raised right
    after publication).  See docs/INVARIANTS.md for the checker catalog.
    """

    invariant: str   # e.g. "conservation.collective-wire"
    checkpoint: str  # e.g. "comm.collective"
    message: str     # human-readable description of the violated property
    mode: str        # "warn" | "strict"
    at: float        # simulated seconds (0.0 when outside the sim clock)


@dataclass(frozen=True)
class ServiceRequestEvent(ObsEvent):
    """One sweep-service request finished (served, shed, or refused).

    Published by :class:`repro.service.SweepService` after the response
    is written, so the JSONL event log doubles as a request log: how many
    points each client asked for, how the service sourced them
    (simulated / disk hits / deduped onto another client's in-flight
    execution / degraded to the analytic fast path), and why over-limit
    requests were shed.  ``shed_reason`` is ``""`` for admitted requests;
    otherwise one of ``"quota"``, ``"budget"``, ``"backpressure"``,
    ``"draining"`` (see docs/SERVICE.md).
    """

    client: str      # client-supplied identity (quota key)
    status: str      # "ok" | "busy" | "rejected" | "error"
    points: int      # points in the request
    executed: int    # points this request simulated itself
    disk_hits: int   # points served from the sharded store
    deduped: int     # points coalesced onto concurrent identical work
    degraded: int    # points answered by the analytic fast path
    shed_reason: str # "" | "quota" | "budget" | "backpressure" | "draining"
    elapsed: float   # wall-clock request latency (s)
