"""Standard event -> metric wiring.

:func:`install_default_metrics` subscribes one handler per event type to a
bus and maintains the canonical instrument set.  Metric names follow the
issue's taxonomy; all times are simulated seconds, all traffic is bytes.

========================================  =========  ==========================
metric                                    kind       labels
========================================  =========  ==========================
kernel_time_total                         counter    gpu, stage
kernels_total                             counter    gpu, stage
engine_wait_time_total                    counter    gpu
transfer_bytes_total                      counter    kind
transfer_time_total                       counter    kind
api_time_total                            counter    api
api_calls_total                           counter    api
span_time_total                           counter    name
link_bytes_total                          counter    src, dst, link_type
link_busy_time_total                      counter    src, dst, link_type
link_wait_time_total                      counter    src, dst, link_type
ring_steps_total                          counter    collective
ring_step_time_total                      counter    collective
ring_step_seconds                         histogram  collective
nccl_protocol_choices_total               counter    collective, algorithm,
                                                     protocol
nccl_predicted_time_total                 counter    collective, algorithm,
                                                     protocol
collective_chunks_total                   counter    collective, protocol
collective_chunk_time_total               counter    collective, protocol
collective_chunk_seconds                  histogram  collective, protocol
sim_event_queue_depth                     gauge      --
sim_event_queue_depth_max                 gauge      --
faults_injected_total                     counter    kind
route_recomputes_total                    counter    reason
ring_rebuilds_total                       counter    fallback
recovery_cost_seconds_total               counter    policy
sweep_point_retries_total                 counter    sweep
sweep_point_failures_total                counter    sweep
repro_invariant_violations_total          counter    invariant, checkpoint
========================================  =========  ==========================

``link_wait_time_total`` children are materialized (at zero) the moment a
link first carries traffic, so an uncontended link still exports an
explicit zero-valued wait counter rather than silently missing.
"""

from __future__ import annotations

from repro.obs.bus import EventBus
from repro.obs.events import (
    ApiEvent,
    CollectiveChunkEvent,
    EngineWaitEvent,
    FaultInjectedEvent,
    InvariantViolationEvent,
    KernelEvent,
    LinkBusyEvent,
    LinkWaitEvent,
    ProtocolChoiceEvent,
    QueueDepthEvent,
    RecoveryCostEvent,
    RingRebuiltEvent,
    RingStepEvent,
    RouteRecomputedEvent,
    SpanEvent,
    SweepPointFailed,
    SweepPointRetry,
    TransferEvent,
)
from repro.obs.metrics import MetricsRegistry

#: Ring steps sit in the microsecond range; give them tighter buckets.
RING_STEP_BUCKETS = (1e-7, 5e-7, 1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 1e-2)

_LINK_LABELS = ("src", "dst", "link_type")


def install_default_metrics(bus: EventBus, registry: MetricsRegistry) -> MetricsRegistry:
    """Wire the canonical metric set to ``bus``; returns the registry."""
    kernel_time = registry.counter(
        "kernel_time_total", "GPU kernel busy time (seconds)", ("gpu", "stage"))
    kernels = registry.counter(
        "kernels_total", "Kernel executions", ("gpu", "stage"))
    engine_wait = registry.counter(
        "engine_wait_time_total",
        "Time kernels queued behind others on the SM array (seconds)", ("gpu",))
    transfer_bytes = registry.counter(
        "transfer_bytes_total", "Bytes moved per transfer kind", ("kind",))
    transfer_time = registry.counter(
        "transfer_time_total", "Transfer wall time (seconds)", ("kind",))
    api_time = registry.counter(
        "api_time_total", "Host CUDA API wall time (seconds)", ("api",))
    api_calls = registry.counter(
        "api_calls_total", "Host CUDA API invocations", ("api",))
    span_time = registry.counter(
        "span_time_total", "Stage span time (seconds)", ("name",))
    link_bytes = registry.counter(
        "link_bytes_total", "Bytes carried per directed physical link",
        _LINK_LABELS)
    link_busy = registry.counter(
        "link_busy_time_total", "Directed link occupancy (seconds)",
        _LINK_LABELS)
    link_wait = registry.counter(
        "link_wait_time_total",
        "Contention: time transfers waited for a busy directed link (seconds)",
        _LINK_LABELS)
    ring_steps = registry.counter(
        "ring_steps_total", "NCCL ring pipeline steps", ("collective",))
    ring_step_time = registry.counter(
        "ring_step_time_total", "NCCL ring step time (seconds)", ("collective",))
    ring_step_hist = registry.histogram(
        "ring_step_seconds", "NCCL ring step duration distribution",
        ("collective",), buckets=RING_STEP_BUCKETS)
    protocol_choices = registry.counter(
        "nccl_protocol_choices_total",
        "NCCL tuner decisions per (collective, algorithm, protocol)",
        ("collective", "algorithm", "protocol"))
    predicted_time = registry.counter(
        "nccl_predicted_time_total",
        "Modelled collective time charged per tuner decision (seconds)",
        ("collective", "algorithm", "protocol"))
    chunk_steps = registry.counter(
        "collective_chunks_total", "NCCL tree pipeline chunk hops",
        ("collective", "protocol"))
    chunk_time = registry.counter(
        "collective_chunk_time_total", "NCCL tree chunk hop time (seconds)",
        ("collective", "protocol"))
    chunk_hist = registry.histogram(
        "collective_chunk_seconds", "NCCL tree chunk hop duration distribution",
        ("collective", "protocol"), buckets=RING_STEP_BUCKETS)
    queue_depth = registry.gauge(
        "sim_event_queue_depth", "Simulation event-heap depth (sampled)")
    queue_depth_max = registry.gauge(
        "sim_event_queue_depth_max", "High-water mark of the event heap")
    faults_injected = registry.counter(
        "faults_injected_total", "Fault activations by kind", ("kind",))
    route_recomputes = registry.counter(
        "route_recomputes_total", "Topology route recomputations", ("reason",))
    ring_rebuilds = registry.counter(
        "ring_rebuilds_total",
        "NCCL communicator rebuilds (fallback=pcie when the new ring "
        "crosses PCIe)", ("fallback",))
    recovery_seconds = registry.counter(
        "recovery_cost_seconds_total",
        "Modeled crash-recovery time charged (seconds)", ("policy",))
    point_retries = registry.counter(
        "sweep_point_retries_total", "Sweep-point retry attempts", ("sweep",))
    point_failures = registry.counter(
        "sweep_point_failures_total",
        "Sweep points abandoned after exhausting retries", ("sweep",))
    invariant_violations = registry.counter(
        "repro_invariant_violations_total",
        "Physical-invariant violations detected by repro.checks",
        ("invariant", "checkpoint"))

    def on_kernel(e: KernelEvent) -> None:
        kernel_time.labels(gpu=e.gpu, stage=e.stage).inc(e.duration)
        kernels.labels(gpu=e.gpu, stage=e.stage).inc()

    def on_engine_wait(e: EngineWaitEvent) -> None:
        engine_wait.labels(gpu=e.gpu).inc(e.wait)

    def on_transfer(e: TransferEvent) -> None:
        transfer_bytes.labels(kind=e.kind).inc(e.nbytes)
        transfer_time.labels(kind=e.kind).inc(e.duration)

    def on_api(e: ApiEvent) -> None:
        api_time.labels(api=e.name).inc(e.duration)
        api_calls.labels(api=e.name).inc()

    def on_span(e: SpanEvent) -> None:
        span_time.labels(name=e.name).inc(e.duration)

    def on_link_busy(e: LinkBusyEvent) -> None:
        labels = dict(src=e.src, dst=e.dst, link_type=e.link_type)
        link_bytes.labels(**labels).inc(e.nbytes)
        link_busy.labels(**labels).inc(e.busy)
        link_wait.labels(**labels).inc(0.0)   # materialize the zero

    def on_link_wait(e: LinkWaitEvent) -> None:
        link_wait.labels(src=e.src, dst=e.dst, link_type=e.link_type).inc(e.wait)

    def on_ring_step(e: RingStepEvent) -> None:
        ring_steps.labels(collective=e.collective).inc()
        ring_step_time.labels(collective=e.collective).inc(e.duration)
        ring_step_hist.labels(collective=e.collective).observe(e.duration)
        labels = dict(src=f"gpu{e.src}", dst=f"gpu{e.dst}", link_type=e.link_type)
        link_bytes.labels(**labels).inc(e.nbytes)
        link_busy.labels(**labels).inc(e.duration)
        link_wait.labels(**labels).inc(0.0)

    def on_protocol_choice(e: ProtocolChoiceEvent) -> None:
        labels = dict(collective=e.collective, algorithm=e.algorithm,
                      protocol=e.protocol)
        protocol_choices.labels(**labels).inc()
        predicted_time.labels(**labels).inc(e.predicted)

    def on_collective_chunk(e: CollectiveChunkEvent) -> None:
        chunk_steps.labels(collective=e.collective, protocol=e.protocol).inc()
        chunk_time.labels(
            collective=e.collective, protocol=e.protocol).inc(e.duration)
        chunk_hist.labels(
            collective=e.collective, protocol=e.protocol).observe(e.duration)
        labels = dict(src=f"gpu{e.src}", dst=f"gpu{e.dst}", link_type=e.link_type)
        link_bytes.labels(**labels).inc(e.nbytes)
        link_busy.labels(**labels).inc(e.duration)
        link_wait.labels(**labels).inc(0.0)

    def on_queue_depth(e: QueueDepthEvent) -> None:
        queue_depth.set(e.depth)
        if e.depth > queue_depth_max.value:
            queue_depth_max.set(e.depth)

    def on_fault(e: FaultInjectedEvent) -> None:
        faults_injected.labels(kind=e.kind).inc()

    def on_route_recompute(e: RouteRecomputedEvent) -> None:
        route_recomputes.labels(reason=e.reason).inc()

    def on_ring_rebuild(e: RingRebuiltEvent) -> None:
        ring_rebuilds.labels(
            fallback="pcie" if e.uses_pcie else "nvlink").inc()

    def on_recovery(e: RecoveryCostEvent) -> None:
        recovery_seconds.labels(policy=e.policy).inc(e.cost)

    def on_point_retry(e: SweepPointRetry) -> None:
        point_retries.labels(sweep=e.sweep).inc()

    def on_point_failed(e: SweepPointFailed) -> None:
        point_failures.labels(sweep=e.sweep).inc()

    def on_invariant_violation(e: InvariantViolationEvent) -> None:
        invariant_violations.labels(
            invariant=e.invariant, checkpoint=e.checkpoint).inc()

    bus.subscribe(KernelEvent, on_kernel)
    bus.subscribe(EngineWaitEvent, on_engine_wait)
    bus.subscribe(TransferEvent, on_transfer)
    bus.subscribe(ApiEvent, on_api)
    bus.subscribe(SpanEvent, on_span)
    bus.subscribe(LinkBusyEvent, on_link_busy)
    bus.subscribe(LinkWaitEvent, on_link_wait)
    bus.subscribe(RingStepEvent, on_ring_step)
    bus.subscribe(ProtocolChoiceEvent, on_protocol_choice)
    bus.subscribe(CollectiveChunkEvent, on_collective_chunk)
    bus.subscribe(QueueDepthEvent, on_queue_depth)
    bus.subscribe(FaultInjectedEvent, on_fault)
    bus.subscribe(RouteRecomputedEvent, on_route_recompute)
    bus.subscribe(RingRebuiltEvent, on_ring_rebuild)
    bus.subscribe(RecoveryCostEvent, on_recovery)
    bus.subscribe(SweepPointRetry, on_point_retry)
    bus.subscribe(SweepPointFailed, on_point_failed)
    bus.subscribe(InvariantViolationEvent, on_invariant_violation)
    return registry
