"""Exporters: Prometheus text format, JSONL event stream, CSV.

``render_prometheus`` serializes a :class:`~repro.obs.metrics.MetricsRegistry`
in the Prometheus text exposition format (HELP/TYPE headers, escaped label
values, cumulative histogram buckets).  :class:`JsonlRecorder` subscribes
to a bus and captures every event as a serializable dict, one JSON object
per line on export.  ``write_profile_csv`` flattens a profiler's record
lists into one spreadsheet-friendly table.
"""

from __future__ import annotations

import csv
import dataclasses
import json
import math
from typing import IO, Iterable, List, Optional

from repro.obs.bus import EventBus
from repro.obs.events import ObsEvent
from repro.obs.metrics import Histogram, Metric, MetricsRegistry

# ----------------------------------------------------------------------
# Prometheus text format
# ----------------------------------------------------------------------


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r'\"')


def _format_labels(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label(str(value))}"' for name, value in labels.items()
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _render_metric(metric: Metric, lines: List[str]) -> None:
    if metric.help:
        lines.append(f"# HELP {metric.name} {metric.help}")
    lines.append(f"# TYPE {metric.name} {metric.kind}")
    children = list(metric.items())
    if not children and not metric.labelnames:
        children = [({}, metric._default_child())]
    for labels, child in children:
        if isinstance(metric, Histogram):
            cumulative = child.cumulative_counts()
            for bound, count in zip(metric.buckets, cumulative):
                bucket_labels = dict(labels)
                bucket_labels["le"] = _format_value(bound)
                lines.append(
                    f"{metric.name}_bucket{_format_labels(bucket_labels)} {count}"
                )
            inf_labels = dict(labels)
            inf_labels["le"] = "+Inf"
            lines.append(f"{metric.name}_bucket{_format_labels(inf_labels)} {child.count}")
            lines.append(f"{metric.name}_sum{_format_labels(labels)} "
                         f"{_format_value(child.sum)}")
            lines.append(f"{metric.name}_count{_format_labels(labels)} {child.count}")
        else:
            lines.append(
                f"{metric.name}{_format_labels(labels)} {_format_value(child.value)}"
            )


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format."""
    lines: List[str] = []
    for metric in registry.collect():
        _render_metric(metric, lines)
    return "\n".join(lines) + "\n" if lines else ""


def write_prometheus(registry: MetricsRegistry, fp: IO[str]) -> None:
    fp.write(render_prometheus(registry))


# ----------------------------------------------------------------------
# JSONL event stream
# ----------------------------------------------------------------------


def event_to_dict(event: ObsEvent) -> dict:
    """A JSON-serializable view of one event (``type`` + its fields)."""
    payload = {"type": type(event).__name__}
    payload.update(dataclasses.asdict(event))
    return payload


class JsonlRecorder:
    """Bus subscriber that captures every event for JSONL export.

    With ``stream`` given, events are additionally written through as they
    arrive (one JSON object per line), which keeps memory flat on long
    runs.
    """

    def __init__(self, bus: Optional[EventBus] = None,
                 stream: Optional[IO[str]] = None) -> None:
        self.events: List[ObsEvent] = []
        self.stream = stream
        if bus is not None:
            bus.subscribe(None, self.on_event)

    def on_event(self, event: ObsEvent) -> None:
        self.events.append(event)
        if self.stream is not None:
            self.stream.write(json.dumps(event_to_dict(event), sort_keys=True))
            self.stream.write("\n")

    def write(self, fp: IO[str]) -> int:
        """Dump captured events as JSON lines; returns the line count."""
        return write_events_jsonl(self.events, fp)

    def clear(self) -> None:
        self.events.clear()


def write_events_jsonl(events: Iterable[ObsEvent], fp: IO[str]) -> int:
    """Write events as one JSON object per line; returns the line count."""
    count = 0
    for event in events:
        fp.write(json.dumps(event_to_dict(event), sort_keys=True))
        fp.write("\n")
        count += 1
    return count


# ----------------------------------------------------------------------
# CSV
# ----------------------------------------------------------------------

#: One unified column schema over all four profiler record kinds.
CSV_COLUMNS = (
    "record", "name", "gpu", "kind", "src", "dst", "stage", "layer",
    "iteration", "nbytes", "start", "end", "duration",
)


def write_profile_csv(profiler, fp: IO[str]) -> int:
    """Flatten a profiler's records into one CSV table; returns row count.

    ``profiler`` is anything exposing ``kernels`` / ``transfers`` /
    ``apis`` / ``spans`` record lists
    (:class:`~repro.profile.profiler.Profiler`).
    """
    writer = csv.DictWriter(fp, fieldnames=CSV_COLUMNS, lineterminator="\n")
    writer.writeheader()
    rows = 0
    for k in profiler.kernels:
        writer.writerow({
            "record": "kernel", "name": k.name, "gpu": k.gpu, "stage": k.stage,
            "layer": k.layer, "start": k.start, "end": k.end,
            "duration": k.duration,
        })
        rows += 1
    for t in profiler.transfers:
        writer.writerow({
            "record": "transfer", "kind": t.kind, "src": t.src, "dst": t.dst,
            "nbytes": t.nbytes, "start": t.start, "end": t.end,
            "duration": t.duration,
        })
        rows += 1
    for a in profiler.apis:
        writer.writerow({
            "record": "api", "name": a.name, "gpu": a.gpu, "start": a.start,
            "end": a.end, "duration": a.duration,
        })
        rows += 1
    for s in profiler.spans:
        writer.writerow({
            "record": "span", "name": s.name, "gpu": s.gpu,
            "iteration": s.iteration, "start": s.start, "end": s.end,
            "duration": s.duration,
        })
        rows += 1
    return rows
