"""A tiny synchronous publish/subscribe bus for observability events.

Handlers run inline in ``publish`` (the simulation is single-threaded and
deterministic, so there is nothing to defer).  Dispatch is by exact event
class for speed, with :class:`~repro.obs.events.ObsEvent` (or ``None``)
acting as the wildcard subscription.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Type

from repro.obs.events import ObsEvent

Handler = Callable[[ObsEvent], None]


class EventBus:
    """Routes typed events from emitters to subscribers."""

    def __init__(self) -> None:
        self._handlers: Dict[Optional[type], List[Handler]] = {}

    def subscribe(self, event_type: Optional[Type[ObsEvent]], handler: Handler) -> Handler:
        """Register ``handler`` for ``event_type``.

        ``None`` (or the :class:`ObsEvent` base class) subscribes to every
        event.  Returns the handler so callers can keep it for
        :meth:`unsubscribe`.
        """
        key = None if event_type in (None, ObsEvent) else event_type
        self._handlers.setdefault(key, []).append(handler)
        return handler

    def unsubscribe(self, event_type: Optional[Type[ObsEvent]], handler: Handler) -> None:
        """Remove a previously registered handler (no-op if absent)."""
        key = None if event_type in (None, ObsEvent) else event_type
        try:
            self._handlers.get(key, []).remove(handler)
        except ValueError:
            pass

    def publish(self, event: ObsEvent) -> None:
        """Deliver ``event`` to its type's subscribers, then to wildcards."""
        for handler in self._handlers.get(type(event), ()):
            handler(event)
        for handler in self._handlers.get(None, ()):
            handler(event)

    def subscriber_count(self, event_type: Optional[Type[ObsEvent]] = None) -> int:
        """Number of handlers registered for ``event_type`` (or wildcard)."""
        key = None if event_type in (None, ObsEvent) else event_type
        return len(self._handlers.get(key, ()))
