"""End-to-end observability: event bus, metrics registry, exporters.

The paper's contribution is *measurement* -- nvprof timelines, API-call
accounting, per-link NVLink traffic, nvidia-smi memory sampling.  This
package gives the reproduction the same substrate:

* :mod:`repro.obs.events`  -- the typed event taxonomy every instrumented
  component (profiler, devices, fabric, communicators, sim engine) emits.
* :mod:`repro.obs.bus`     -- a tiny synchronous publish/subscribe bus.
* :mod:`repro.obs.metrics` -- labelled ``Counter``/``Gauge``/``Histogram``
  instruments collected in a :class:`~repro.obs.metrics.MetricsRegistry`.
* :mod:`repro.obs.bridge`  -- the standard event->metric wiring
  (``kernel_time_total{gpu,stage}``, ``link_bytes_total{src,dst,link_type}``,
  ``sim_event_queue_depth``, ...).
* :mod:`repro.obs.export`  -- Prometheus text, JSONL event stream and CSV
  exporters.
* :mod:`repro.obs.report`  -- the nvprof-style ``--print-gpu-summary``
  text report.
* :mod:`repro.obs.session` -- :class:`~repro.obs.session.ObsSession`, the
  one-line bundle a :class:`~repro.train.trainer.Trainer` accepts.
"""

from repro.obs.bridge import install_default_metrics
from repro.obs.bus import EventBus
from repro.obs.events import (
    ApiEvent,
    CollectiveChunkEvent,
    EngineWaitEvent,
    InvariantViolationEvent,
    KernelEvent,
    LinkBusyEvent,
    LinkWaitEvent,
    ObsEvent,
    ProtocolChoiceEvent,
    QueueDepthEvent,
    RingStepEvent,
    ServiceRequestEvent,
    SpanEvent,
    TransferEvent,
)
from repro.obs.export import (
    JsonlRecorder,
    event_to_dict,
    render_prometheus,
    write_events_jsonl,
    write_profile_csv,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.report import render_gpu_summary
from repro.obs.session import ObsSession

__all__ = [
    "ApiEvent",
    "CollectiveChunkEvent",
    "Counter",
    "EngineWaitEvent",
    "EventBus",
    "Gauge",
    "Histogram",
    "InvariantViolationEvent",
    "JsonlRecorder",
    "KernelEvent",
    "LinkBusyEvent",
    "LinkWaitEvent",
    "MetricsRegistry",
    "ObsEvent",
    "ObsSession",
    "ProtocolChoiceEvent",
    "QueueDepthEvent",
    "RingStepEvent",
    "ServiceRequestEvent",
    "SpanEvent",
    "TransferEvent",
    "event_to_dict",
    "install_default_metrics",
    "render_gpu_summary",
    "render_prometheus",
    "write_events_jsonl",
    "write_profile_csv",
]
