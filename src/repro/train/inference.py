"""Forward-only (inference/serving) estimation.

Training profiling is the paper's subject, but the same kernel model
answers the serving questions a deployment asks: per-batch latency,
latency-vs-throughput across batch sizes, and replica throughput on a
full DGX-1 (inference needs no weight synchronization, so GPUs serve as
independent replicas).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.constants import CALIBRATION, CalibrationConstants
from repro.core.errors import ConfigurationError, OutOfMemoryError
from repro.dnn import build_network, compile_network, network_input_shape
from repro.dnn.network import Network
from repro.dnn.shapes import Shape
from repro.dnn.stats import DTYPE_BYTES, NetworkStats
from repro.gpu import KernelCostModel, MemoryModel
from repro.gpu.spec import TESLA_V100, GpuSpec


@dataclass(frozen=True)
class InferenceEstimate:
    """Latency/throughput for one (network, batch) serving point."""

    network: str
    batch_size: int
    latency: float                 # seconds per batch on one GPU
    throughput_per_gpu: float      # images/second
    memory_bytes: int              # weights + one batch of activations

    def throughput(self, num_gpus: int) -> float:
        """Aggregate replica throughput (no inter-GPU communication)."""
        if num_gpus < 1:
            raise ConfigurationError("num_gpus must be positive")
        return self.throughput_per_gpu * num_gpus

    def describe(self) -> str:
        return (
            f"{self.network}/b{self.batch_size} inference: "
            f"{self.latency * 1e3:.2f} ms/batch, "
            f"{self.throughput_per_gpu:.0f} img/s per GPU"
        )


class InferenceEstimator:
    """Forward-pass cost model on one V100."""

    def __init__(
        self,
        network_name: str,
        constants: CalibrationConstants = CALIBRATION,
        spec: GpuSpec = TESLA_V100,
        use_tensor_cores: bool = True,
        network: Optional[Network] = None,
        input_shape: Optional[Shape] = None,
    ) -> None:
        self.constants = constants
        self.spec = spec
        if network is None:
            network = build_network(network_name)
            input_shape = network_input_shape(network_name)
        elif input_shape is None:
            raise ConfigurationError("a custom network needs an input_shape")
        self.stats: NetworkStats = compile_network(network, input_shape)
        self.cost_model = KernelCostModel(spec, constants, use_tensor_cores)

    def memory_bytes(self, batch: int) -> int:
        """Serving footprint: weights + live activations + input batch."""
        return (
            self.stats.model_bytes
            + self.stats.materialized_activation_bytes_per_sample * batch
            + self.stats.input_shape.numel * DTYPE_BYTES * batch
            + self.constants.cuda_context_bytes
        )

    def estimate(self, batch: int, check_memory: bool = True) -> InferenceEstimate:
        """Latency and throughput at one batch size."""
        if batch < 1:
            raise ConfigurationError("batch must be positive")
        memory = self.memory_bytes(batch)
        if check_memory and memory > self.spec.memory_bytes:
            raise OutOfMemoryError(self.spec.name, memory, self.spec.memory_bytes)
        latency = (
            sum(k.duration for k in self.cost_model.forward_schedule(self.stats, batch))
            + self.constants.input_pipeline_residual
            + self.constants.input_cost_per_image * batch
        )
        return InferenceEstimate(
            network=self.stats.name,
            batch_size=batch,
            latency=latency,
            throughput_per_gpu=batch / latency,
            memory_bytes=memory,
        )

    def sweep(self, batches: Tuple[int, ...] = (1, 4, 16, 64)) -> Tuple[InferenceEstimate, ...]:
        """Latency/throughput curve over batch sizes (skipping OOM points)."""
        points = []
        for batch in batches:
            try:
                points.append(self.estimate(batch))
            except OutOfMemoryError:
                break
        return tuple(points)

    def max_throughput_batch(self, limit: int = 512) -> InferenceEstimate:
        """The power-of-two batch with the highest per-GPU throughput."""
        best: Optional[InferenceEstimate] = None
        batch = 1
        while batch <= limit:
            try:
                point = self.estimate(batch)
            except OutOfMemoryError:
                break
            if best is None or point.throughput_per_gpu > best.throughput_per_gpu:
                best = point
            batch *= 2
        assert best is not None  # batch=1 always fits on a 16 GiB V100
        return best
