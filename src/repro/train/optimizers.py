"""Optimizer cost descriptors.

The paper trains with synchronous SGD; the optimizer choice matters to a
performance study through exactly two channels, both captured here:

* the **weight-update kernel** (FLOPs and memory passes per parameter),
* the **optimizer state** resident in GPU memory (momentum buffers,
  Adam's first/second moments).

Descriptors are consumed by the communicators (update-kernel cost) and by
the memory model (parameter-sized state arrays).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.errors import ConfigurationError


@dataclass(frozen=True)
class OptimizerSpec:
    """Cost profile of one optimizer's update step."""

    name: str
    #: parameter-sized arrays kept besides weights and gradients.
    state_arrays: int
    #: FLOPs per parameter per update.
    flops_per_param: float
    #: array-sized memory passes per update (reads + writes).
    memory_passes: int

    @property
    def param_copies(self) -> int:
        """Parameter-sized arrays resident in training: w + grad + state."""
        return 2 + self.state_arrays


#: Plain SGD: ``w -= lr * g`` -- one read-modify-write plus the gradient.
SGD = OptimizerSpec(name="sgd", state_arrays=0, flops_per_param=2.0,
                    memory_passes=3)

#: SGD with momentum (MXNet's default for the paper's workloads).
SGD_MOMENTUM = OptimizerSpec(name="sgd-momentum", state_arrays=1,
                             flops_per_param=4.0, memory_passes=5)

#: Adam: two moment buffers, bias correction, per-param divide/sqrt.
ADAM = OptimizerSpec(name="adam", state_arrays=2, flops_per_param=12.0,
                     memory_passes=7)

_REGISTRY: Dict[str, OptimizerSpec] = {
    spec.name: spec for spec in (SGD, SGD_MOMENTUM, ADAM)
}


def get_optimizer(name: str) -> OptimizerSpec:
    """Look an optimizer up by name ('sgd', 'sgd-momentum', 'adam')."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown optimizer {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def available_optimizers() -> tuple:
    return tuple(sorted(_REGISTRY))
