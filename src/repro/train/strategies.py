"""The pluggable training-strategy registry.

ROADMAP item 3 asks for a training-strategy matrix in the tensorpack
mold (``SyncMultiGPUTrainerParameterServer`` / ``Replicated`` /
``AsyncMultiGPUTrainer``).  This module provides the abstraction
boundary: a :class:`ReductionStrategy` owns everything that differs
between those trainers -- which communicator to build, how gradient-ready
events map onto weight-update work, which execution model drives the
epoch, and what the fault/resilience layer may assume about recovery --
while :class:`~repro.train.trainer.Trainer` keeps the parts they share
(network compilation, kernel schedules, measurement, extrapolation).

The split follows the DAG model of synchronous SGD (Shi et al.): the
iteration is a stage DAG whose compute stages are strategy-independent
and whose reduction schedule is exactly the strategy.  That same model
doubles as an analytic cross-check oracle -- see
:mod:`repro.checks.dag`.

Registered strategies (``TrainingConfig.strategy``):

=============================  ==========================================
name                           execution model
=============================  ==========================================
``p2p-tree``                   sync; binomial-tree P2P (MXNet ``device``)
``nccl-collective``            sync; NCCL reduce+broadcast KVStore
``nccl-allreduce-replicated``  sync; fused AllReduce, replicated update
``ps-cpu``                     sync; CPU parameter server (``local``)
``ps-gpu``                     sync; GPU0 parameter server, flat star
``async-update``               async parameter server (no barrier)
``model-parallel``             layer-partitioned pipeline placement
=============================  ==========================================

The default ``strategy="auto"`` maps the configured ``comm_method`` onto
the matching synchronous strategy, reproducing pre-registry outputs
byte-identically (golden-tested).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Tuple

from repro.core.config import CommMethodName
from repro.core.errors import ConfigurationError, FaultPlanError
from repro.gpu import GpuDevice
from repro.gpu.kernel import KernelSpec
from repro.profile import MemoryMonitor
from repro.profile.summary import ApiSummary, StageBreakdown
from repro.sim import Environment
from repro.sim.events import Event
from repro.topology import Fabric, Router, build_dgx1v
from repro.train.results import AsyncStats, TrainingResult

#: Per-worker iteration count the asynchronous simulation measures (the
#: async loop has no barrier, so a fixed window replaces
#: ``SimulationConfig.measure_iterations``).
ASYNC_MEASURE_ITERATIONS = 4

#: Node count above which ``cluster_fast_path="auto"`` switches from the
#: event-driven to the analytic collective path (the 1/2/4-node grids
#: the agreement invariant cross-validates stay event-driven).
AUTO_ANALYTIC_NODES = 4


def resolve_fast_path(config, faults=None) -> str:
    """The concrete collective fast path a config (and fault plan) selects.

    ``"auto"`` keeps the fully event-driven path up to
    ``AUTO_ANALYTIC_NODES`` nodes and folds larger clusters' inter-node
    segments in analytically (a 1024-GPU AllReduce cannot simulate
    per-chunk events on every link); explicit values pass through.

    The resolution is fault-aware: the analytic path simulates only a
    representative node, so a plan it cannot represent
    (:meth:`~repro.faults.plan.FaultPlan.analytic_conflict`) forces the
    event path when the analytic choice was automatic, and raises
    :class:`~repro.core.errors.FaultPlanError` when the config demanded
    ``cluster_fast_path="analytic"`` explicitly -- the fast path never
    silently simulates a healthy cluster.
    """
    if config.cluster_fast_path != "auto":
        resolved = config.cluster_fast_path
    else:
        resolved = (
            "analytic" if config.cluster_nodes > AUTO_ANALYTIC_NODES
            else "event"
        )
    if resolved != "analytic" or faults is None or faults.empty:
        return resolved
    conflict = faults.analytic_conflict()
    if conflict is None:
        return resolved
    if config.cluster_fast_path == "analytic":
        raise FaultPlanError(
            "cluster_fast_path='analytic' cannot represent this fault "
            f"plan: {conflict}; the representative-node simulation would "
            "silently model a healthy cluster -- use "
            "cluster_fast_path='event' (or 'auto' to fall back "
            "automatically; see docs/SCALING.md)"
        )
    return "event"


@dataclass(frozen=True)
class RecoverySemantics:
    """What the fault/resilience layer may assume about a strategy.

    ``supports_faults``
        The segment-based faulted epoch assembly
        (:meth:`~repro.train.trainer.Trainer._run_faulted`) applies: the
        strategy rebuilds its communicator per degraded segment.
    ``ring_rebuild``
        Recovering from a link fault or crash additionally pays the NCCL
        communicator re-init cost (ring-based collectives only); tree and
        star schedules recompute routes for free beyond the route cost.
    """

    supports_faults: bool
    ring_rebuild: bool
    description: str


class ReductionStrategy:
    """One way to turn per-layer gradients into updated weights.

    Subclasses override the class attributes (the validation matrix) and
    whichever hooks differ from the synchronous default:

    * :meth:`validate` -- strategy x comm x topology compatibility,
      called eagerly from ``TrainingConfig.__post_init__``;
    * :meth:`build_communicator` -- strategy-owned communicator
      construction for one assembled system;
    * :meth:`schedule_weight_update` -- the reduction schedule: a
      process mapping gradient-ready events onto communicator work;
    * :meth:`run` -- the execution model driving a whole epoch;
    * :meth:`recovery_semantics` -- contract with :mod:`repro.faults`.
    """

    #: Registry key and ``TrainingConfig.strategy`` value.
    name: str = ""
    #: ``"sync"``, ``"async"`` or ``"model-parallel"``.
    execution: str = "sync"
    #: The ``comm_method`` this strategy runs over (``None`` = any).
    comm_method: Optional[CommMethodName] = None
    #: Communicator-factory key; ``None`` uses ``config.comm_method``.
    comm_key: Optional[str] = None
    #: Whether the strategy is modeled across InfiniBand-linked nodes.
    multi_node: bool = False

    # ------------------------------------------------------------------
    # Validation matrix (strategy x comm x topology)
    # ------------------------------------------------------------------
    def validate(self, config) -> None:
        """Raise :class:`ConfigurationError` for an incompatible config."""
        if (self.comm_method is not None
                and config.comm_method is not self.comm_method):
            raise ConfigurationError(
                f"strategy {self.name!r} runs over "
                f"comm_method={self.comm_method.value!r}, got "
                f"{config.comm_method.value!r} (see the strategy matrix in "
                "docs/TRAINING.md)"
            )
        if config.cluster_nodes > 1 and not self.multi_node:
            raise ConfigurationError(
                f"strategy {self.name!r} is modeled for a single DGX-1 node "
                f"but cluster_nodes={config.cluster_nodes}: only the NCCL "
                "strategies span nodes (MXNet's device/local KVStores "
                "cannot; see the strategy matrix in docs/TRAINING.md)"
            )

    # ------------------------------------------------------------------
    # Fault contract
    # ------------------------------------------------------------------
    def recovery_semantics(self) -> RecoverySemantics:
        """Default: segment-rebuild recovery without a ring re-init."""
        return RecoverySemantics(
            supports_faults=True,
            ring_rebuild=False,
            description="re-plans the reduction schedule per degraded segment",
        )

    # ------------------------------------------------------------------
    # System construction
    # ------------------------------------------------------------------
    def build_communicator(self, trainer, env, fabric, devices, profiler):
        """Build this strategy's communicator for one assembled system.

        A non-compat ``cluster_collective`` reroutes the NCCL strategies
        onto the hierarchical rail-aware communicator (docs/SCALING.md);
        everything else keeps the flat per-method factory key.
        """
        # Imported lazily: repro.comm itself imports the train package
        # (optimizer specs), so a module-level import would be circular.
        from repro.comm import make_communicator

        config = trainer.config
        key = self.comm_key or config.comm_method
        kwargs = {}
        if config.cluster_collective != "compat":
            from repro.topology.cluster import IB_LANE_BANDWIDTH

            key = "nccl-hierarchical"
            # The faulted segment loop narrows the cluster (a crashed
            # node shrinks the rank space) and degrades rails; healthy
            # runs leave both overrides None.
            nodes = getattr(trainer, "_fault_cluster_nodes", None)
            kwargs = dict(
                cluster_nodes=(
                    nodes if nodes is not None else config.cluster_nodes
                ),
                rail_bandwidth=IB_LANE_BANDWIDTH,
                inter_algorithm=config.cluster_collective.removeprefix(
                    "hierarchical-"),
                fast_path=resolve_fast_path(config, trainer.faults),
            )
            scales = getattr(trainer, "_fault_rail_scales", None)
            if scales is not None:
                kwargs["rail_scales"] = scales
        return make_communicator(
            key,
            env,
            fabric,
            devices,
            trainer.cost_model,
            trainer.constants,
            profiler,
            gradient_bytes_scale=0.5 if config.fp16_gradients else 1.0,
            optimizer=trainer.optimizer,
            algorithm=config.nccl_algorithm,
            protocol=config.nccl_protocol,
            checks=trainer.checks,
            **kwargs,
        )

    # ------------------------------------------------------------------
    # Reduction schedule
    # ------------------------------------------------------------------
    def schedule_weight_update(
        self, trainer, env: Environment, comm,
        grad_ready: Dict[str, List[Event]],
    ) -> Generator[Event, None, None]:
        """Spawn per-array synchronization as gradients become ready."""
        pending = []
        if trainer.config.overlap_bp_wu:
            # Layers appear in BP completion order, so waiting on each in
            # turn streams arrays into the communicator as they are ready.
            for layer, _ in trainer._bwd:
                if not layer.is_weighted:
                    continue
                yield env.all_of(grad_ready[layer.name])
                for array in trainer.stats.arrays_of_layer(layer.name):
                    pending.append(env.process(comm.sync_array(array)))
        else:
            # No overlap: wait for every gradient, then synchronize.
            all_events = [e for events in grad_ready.values() for e in events]
            if all_events:
                yield env.all_of(all_events)
            for layer, _ in trainer._bwd:
                if layer.is_weighted:
                    for array in trainer.stats.arrays_of_layer(layer.name):
                        pending.append(env.process(comm.sync_array(array)))
        if pending:
            yield env.all_of(pending)

    # ------------------------------------------------------------------
    # Execution model
    # ------------------------------------------------------------------
    def run(self, trainer) -> TrainingResult:
        """Drive one epoch for ``trainer`` and return its result."""
        raise NotImplementedError

    def _check_no_faults(self, trainer) -> None:
        if trainer.faults is not None and not trainer.faults.empty:
            raise FaultPlanError(
                f"strategy {self.name!r} declares no fault-recovery "
                "semantics: fault plans apply to the synchronous "
                "strategies only (see docs/TRAINING.md)"
            )


class SyncStrategy(ReductionStrategy):
    """Shared execution model of the synchronous data-parallel strategies.

    The epoch is the trainer's measured steady-state extrapolation (or
    its segment-based faulted assembly); subclasses differ only in the
    communicator they build and the recovery semantics they declare.
    """

    def run(self, trainer) -> TrainingResult:
        from repro.faults.injector import FaultInjector

        if trainer.check_memory:
            trainer.memory_model.check_fits(
                trainer.stats,
                trainer.config.batch_size,
                is_server=trainer.config.num_gpus > 1,
            )
        if trainer.faults is None or trainer.faults.empty:
            return trainer._run_healthy()
        return trainer._run_faulted(FaultInjector(trainer.faults))


class P2pTreeStrategy(SyncStrategy):
    """MXNet ``device`` KVStore: binomial P2P reduction tree onto GPU0."""

    name = "p2p-tree"
    comm_method = CommMethodName.P2P


class NcclCollectiveStrategy(SyncStrategy):
    """MXNet ``nccl`` KVStore: ring/tree Reduce + Broadcast collectives."""

    name = "nccl-collective"
    comm_method = CommMethodName.NCCL
    multi_node = True

    def recovery_semantics(self) -> RecoverySemantics:
        return RecoverySemantics(
            supports_faults=True,
            ring_rebuild=True,
            description="pays an NCCL communicator re-init per topology change",
        )


class NcclAllReduceReplicatedStrategy(SyncStrategy):
    """DDP/Horovod style: fused AllReduce with replicated local updates."""

    name = "nccl-allreduce-replicated"
    comm_method = CommMethodName.NCCL_ALLREDUCE
    multi_node = True

    def recovery_semantics(self) -> RecoverySemantics:
        return RecoverySemantics(
            supports_faults=True,
            ring_rebuild=True,
            description="pays an NCCL communicator re-init per topology change",
        )


class PsCpuStrategy(SyncStrategy):
    """MXNet ``local`` KVStore: CPU parameter server over PCIe."""

    name = "ps-cpu"
    comm_method = CommMethodName.LOCAL


class PsGpuStrategy(SyncStrategy):
    """GPU0 parameter server: flat-star P2P reduction (no tree stages)."""

    name = "ps-gpu"
    comm_method = CommMethodName.P2P
    comm_key = "ps-gpu"


class AsyncUpdateStrategy(ReductionStrategy):
    """Asynchronous parameter-server SGD (paper Section II-B).

    Weights live on GPU0.  Each worker repeatedly pulls the model,
    computes FP+BP on its mini-batch, and pushes gradients back; the
    server applies each push immediately.  Transfers ride the same P2P
    routes as the synchronous ``device`` KVStore and contend on the
    NVLink fabric.  There is no barrier, so there is no reduction
    schedule: :meth:`schedule_weight_update` never applies and the
    execution model replaces the whole measured loop.
    """

    name = "async-update"
    execution = "async"
    comm_method = CommMethodName.P2P

    def recovery_semantics(self) -> RecoverySemantics:
        return RecoverySemantics(
            supports_faults=False,
            ring_rebuild=False,
            description="asynchronous workers have no segment semantics yet",
        )

    def run(self, trainer) -> TrainingResult:
        self._check_no_faults(trainer)
        if trainer.check_memory:
            trainer.memory_model.check_fits(
                trainer.stats,
                trainer.config.batch_size,
                is_server=trainer.config.num_gpus > 1,
            )
        measured = self.simulate(trainer)
        config = trainer.config
        monitor = MemoryMonitor(trainer.spec, trainer.constants,
                                optimizer=trainer.optimizer)
        memory = tuple(
            monitor.sample(trainer.stats, config.batch_size, config.num_gpus)
        )
        return TrainingResult(
            config=config,
            iteration_time=measured.iteration_time,
            iteration_times=measured.iteration_times,
            epoch_time=measured.epoch_time,
            fixed_overhead=trainer.constants.run_startup_overhead,
            stages=StageBreakdown(fp=0.0, bp=0.0, wu=0.0,
                                  iteration=measured.iteration_time),
            apis=ApiSummary(totals=()),
            gpu_busy={},
            compute_utilization=trainer.cost_model.compute_utilization(
                trainer.stats, config.batch_size
            ),
            memory=memory,
            async_stats=measured.stats,
        )

    # ------------------------------------------------------------------
    # The server-model simulation (shared with the legacy AsyncTrainer)
    # ------------------------------------------------------------------
    def simulate(self, host) -> "AsyncMeasurement":
        """Run the async server-model simulation for ``host``.

        ``host`` is any object carrying the compiled-trainer attributes
        (``config``, ``sim``, ``constants``, ``spec``, ``stats``,
        ``cost_model``, ``_fwd``, ``_bwd``, ``gpu_speed_factors``); both
        :class:`~repro.train.trainer.Trainer` and the legacy
        :class:`~repro.train.async_trainer.AsyncTrainer` qualify.
        """
        env = Environment()
        topology = build_dgx1v()
        fabric = Fabric(env, topology, host.constants)
        router = Router(topology)
        devices = [
            GpuDevice(env, topology.gpu(i), host.spec,
                      speed_factor=host.gpu_speed_factors.get(i, 1.0))
            for i in range(host.config.num_gpus)
        ]

        state = _ServerState()
        iterations = host.sim.warmup_iterations + ASYNC_MEASURE_ITERATIONS
        workers = [
            env.process(
                self._worker(host, env, fabric, router, devices, pos, state,
                             iterations)
            )
            for pos in range(len(devices))
        ]
        env.run(until=env.all_of(workers))

        measured = [
            t for pos, it, t in state.iteration_records
            if it >= host.sim.warmup_iterations
        ]
        staleness = tuple(
            s for pos, it, s in state.staleness_records
            if it >= host.sim.warmup_iterations
        )
        mean_iteration = statistics.mean(measured)
        # Workers proceed independently: aggregate throughput is the sum
        # of per-worker rates.
        images_per_second = sum(
            host.config.batch_size / t for t in measured
        ) / max(1, len(measured)) * host.config.num_gpus
        epoch_time = (
            host.config.total_images / images_per_second
            + host.constants.run_startup_overhead
        )
        return AsyncMeasurement(
            iteration_time=mean_iteration,
            iteration_times=tuple(measured),
            epoch_time=epoch_time,
            images_per_second=images_per_second,
            stats=AsyncStats(
                staleness_mean=(statistics.mean(staleness)
                                if staleness else 0.0),
                staleness_max=max(staleness) if staleness else 0,
                staleness_samples=staleness,
                server_updates=state.version,
            ),
        )

    def _worker(
        self,
        host,
        env: Environment,
        fabric: Fabric,
        router: Router,
        devices: List[GpuDevice],
        pos: int,
        state: "_ServerState",
        iterations: int,
    ) -> Generator[Event, None, None]:
        c = host.constants
        dev = devices[pos]
        server = devices[0]
        model_bytes = host.stats.model_bytes
        for iteration in range(iterations):
            start = env.now
            # Pull the current weights from the server.
            version_seen = state.version
            if pos != 0:
                route = router.gpu_to_gpu(
                    fabric.topology.gpu(server.index),
                    fabric.topology.gpu(dev.index),
                )
                yield env.timeout(c.p2p_copy_setup)
                yield from fabric.pipelined_transfer(
                    route, model_bytes, 4 * 2**20)
            # Compute FP + BP.
            yield env.timeout(
                c.input_pipeline_residual
                + c.input_cost_per_image * host.config.batch_size
            )
            for kernel in host._fwd:
                yield env.process(dev.run_kernel(kernel))
            for _, kernels in host._bwd:
                for kernel in kernels:
                    yield env.process(dev.run_kernel(kernel))
            # Push gradients; the server updates immediately on arrival.
            if pos != 0:
                route = router.gpu_to_gpu(
                    fabric.topology.gpu(dev.index),
                    fabric.topology.gpu(server.index),
                )
                yield env.timeout(c.p2p_copy_setup)
                yield from fabric.pipelined_transfer(
                    route, model_bytes, 4 * 2**20)
            yield env.process(server.run_kernel(self._update_kernel(host)))
            staleness = state.version - version_seen
            state.version += 1
            state.staleness_records.append((pos, iteration, staleness))
            state.iteration_records.append((pos, iteration, env.now - start))
            yield env.timeout(c.stream_sync_overhead)

    def _update_kernel(self, host) -> KernelSpec:
        numel = host.stats.total_params
        nbytes = host.stats.model_bytes
        return KernelSpec(
            name="asgd_update",
            layer="@server",
            stage="wu",
            duration=host.cost_model.kernel_time(4.0 * numel, 5 * nbytes,
                                                 False),
            flops=4.0 * numel,
            bytes_moved=5 * nbytes,
        )


@dataclass(frozen=True)
class AsyncMeasurement:
    """Raw output of the async server-model simulation."""

    iteration_time: float
    iteration_times: Tuple[float, ...]
    epoch_time: float
    images_per_second: float
    stats: AsyncStats


class _ServerState:
    """Mutable server-side bookkeeping shared by async worker processes."""

    def __init__(self) -> None:
        self.version = 0
        self.staleness_records: List[Tuple[int, int, int]] = []
        self.iteration_records: List[Tuple[int, int, float]] = []


class ModelParallelStrategy(ReductionStrategy):
    """Layer-partitioned placement: the analytic pipeline estimator.

    Registers :class:`~repro.train.model_parallel.ModelParallelEstimator`
    as a placement strategy sharing the trainer's result and
    serialization schema.  The weights never replicate, so there is no
    reduction schedule; boundary activations are the only inter-GPU
    traffic and the closed-form pipeline algebra replaces the measured
    loop.
    """

    name = "model-parallel"
    execution = "model-parallel"
    comm_method = CommMethodName.P2P

    def recovery_semantics(self) -> RecoverySemantics:
        return RecoverySemantics(
            supports_faults=False,
            ring_rebuild=False,
            description="the analytic pipeline estimator has no fault model",
        )

    def run(self, trainer) -> TrainingResult:
        from repro.train.model_parallel import ModelParallelEstimator

        self._check_no_faults(trainer)
        config = trainer.config
        estimator = ModelParallelEstimator(
            config, constants=trainer.constants, spec=trainer.spec)
        mp = estimator.run()
        monitor = MemoryMonitor(trainer.spec, trainer.constants,
                                optimizer=trainer.optimizer)
        memory = tuple(
            monitor.sample(trainer.stats, config.batch_size, config.num_gpus)
        )
        return TrainingResult(
            config=config,
            iteration_time=mp.iteration_time,
            iteration_times=(mp.iteration_time,),
            epoch_time=mp.epoch_time,
            fixed_overhead=trainer.constants.run_startup_overhead,
            stages=StageBreakdown(fp=0.0, bp=0.0, wu=0.0,
                                  iteration=mp.iteration_time),
            apis=ApiSummary(totals=()),
            gpu_busy={},
            compute_utilization=trainer.cost_model.compute_utilization(
                trainer.stats, config.batch_size
            ),
            memory=memory,
        )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, ReductionStrategy] = {}

#: ``strategy="auto"``: the synchronous strategy implied by the
#: configured communication method (the pre-registry behaviour).
AUTO_STRATEGY = {
    CommMethodName.P2P: "p2p-tree",
    CommMethodName.NCCL: "nccl-collective",
    CommMethodName.NCCL_ALLREDUCE: "nccl-allreduce-replicated",
    CommMethodName.LOCAL: "ps-cpu",
}


def register_strategy(strategy: ReductionStrategy) -> ReductionStrategy:
    """Add ``strategy`` to the registry (keyed by its ``name``)."""
    if not strategy.name:
        raise ValueError("a strategy needs a non-empty name")
    _REGISTRY[strategy.name] = strategy
    return strategy


def available_strategies() -> Tuple[str, ...]:
    """Registered strategy names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_strategy(name: str) -> ReductionStrategy:
    """Look up a registered strategy by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown strategy {name!r}; available: "
            f"{sorted(_REGISTRY)} (or 'auto')"
        ) from None


def strategy_for(config) -> ReductionStrategy:
    """The strategy a config selects (resolving ``"auto"``)."""
    name = config.strategy
    if name == "auto":
        name = AUTO_STRATEGY[config.comm_method]
    return get_strategy(name)


def validate_config(config) -> None:
    """Eager strategy x comm x topology validation for ``config``."""
    strategy_for(config).validate(config)


for _strategy in (
    P2pTreeStrategy(),
    NcclCollectiveStrategy(),
    NcclAllReduceReplicatedStrategy(),
    PsCpuStrategy(),
    PsGpuStrategy(),
    AsyncUpdateStrategy(),
    ModelParallelStrategy(),
):
    register_strategy(_strategy)
del _strategy
