"""The multi-GPU synchronous-SGD training simulation.

One :class:`Trainer` assembles the full system for a
:class:`~repro.core.config.TrainingConfig`:

* the DGX-1 fabric and one :class:`~repro.gpu.device.GpuDevice` per GPU,
* the kernel schedules of the chosen network at the chosen batch size,
* a :class:`~repro.comm.base.Communicator` (P2P or NCCL),
* a :class:`~repro.profile.profiler.Profiler`.

Each simulated iteration reproduces MXNet's execution structure: every GPU
stages its input batch (prefetched, double-buffered over PCIe), runs FP
then BP; as soon as a layer's backward kernels finish on *all* GPUs its
weight arrays are handed to the communicator (the BP/WU overlap MXNet
pipelines); the iteration barrier falls when both compute and weight
update complete, plus the host-side synchronization cost.

Training is periodic, so the trainer simulates a warm-up then a few
measured iterations at full event fidelity and extrapolates the epoch:
``epoch = iterations * mean_iteration + once_per_run_overheads``.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Sequence

from repro.comm import make_communicator
from repro.core.config import SimulationConfig, TrainingConfig
from repro.core.constants import CALIBRATION, CalibrationConstants
from repro.obs.session import ObsSession
from repro.dnn import build_network, compile_network, network_input_shape
from repro.dnn.stats import NetworkStats
from repro.gpu import GpuDevice, KernelCostModel, MemoryModel
from repro.gpu.spec import TESLA_V100, GpuSpec
from repro.profile import MemoryMonitor, Profiler, summarize_apis, summarize_stages
from repro.profile.summary import gpu_busy_fractions
from repro.sim import Environment
from repro.sim.events import Event
from repro.topology import Fabric, Router, build_dgx1v
from repro.train.optimizers import get_optimizer
from repro.train.results import TrainingResult


class Trainer:
    """Simulates training one network on the DGX-1."""

    def __init__(
        self,
        config: TrainingConfig,
        sim: SimulationConfig = SimulationConfig(),
        constants: CalibrationConstants = CALIBRATION,
        spec: GpuSpec = TESLA_V100,
        use_tensor_cores: bool = True,
        check_memory: bool = True,
        keep_profiler: bool = False,
        topology_builder=build_dgx1v,
        network=None,
        input_shape=None,
        gpu_speed_factors=None,
        obs: Optional[ObsSession] = None,
    ) -> None:
        """``network``/``input_shape`` override the zoo lookup, letting a
        custom :class:`~repro.dnn.network.Network` train under any
        configuration (``config.network`` then serves only as a label).
        ``gpu_speed_factors`` maps GPU position -> kernel-duration
        multiplier (>1 = slower) for straggler-injection studies.
        ``obs`` attaches an :class:`~repro.obs.session.ObsSession`: the
        profiler, devices, fabric, communicator and sim engine then emit
        typed events onto its bus, feeding the metrics registry and (if
        enabled) the JSONL recorder."""
        self.config = config
        self.sim = sim
        self.constants = constants
        self.spec = spec
        self.check_memory = check_memory
        self.keep_profiler = keep_profiler
        self.topology_builder = topology_builder
        self.gpu_speed_factors = dict(gpu_speed_factors or {})
        self.obs = obs
        if network is not None:
            if input_shape is None:
                raise ValueError("a custom network needs an explicit input_shape")
            self.stats = compile_network(network, input_shape)
        else:
            self.stats = compile_network(
                build_network(config.network), network_input_shape(config.network)
            )
        self.optimizer = get_optimizer(config.optimizer)
        self.cost_model = KernelCostModel(spec, constants, use_tensor_cores)
        self.memory_model = MemoryModel(spec, constants, optimizer=self.optimizer)
        # Kernel schedules are batch-dependent but iteration-invariant.
        self._fwd = self.cost_model.forward_schedule(self.stats, config.batch_size)
        self._bwd = self.cost_model.backward_schedule(self.stats, config.batch_size)
        self._kernels_per_iter = len(self._fwd) + sum(len(k) for _, k in self._bwd)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self) -> TrainingResult:
        """Simulate the run and return the measured result.

        Raises :class:`~repro.core.errors.OutOfMemoryError` when the
        configuration cannot fit in GPU memory (as the paper hit for
        Inception-v3/ResNet above batch 64).
        """
        if self.check_memory:
            self.memory_model.check_fits(
                self.stats,
                self.config.batch_size,
                is_server=self.config.num_gpus > 1,
            )

        env = Environment()
        profiler = Profiler(
            enabled=False,
            bus=self.obs.bus if self.obs is not None else None,
            clock=env,
        )
        if self.obs is not None:
            env.set_observer(self.obs.queue_observer(profiler),
                             every=self.obs.queue_sample_every)
        if self.config.cluster_nodes > 1:
            from repro.topology import build_dgx1v_cluster

            topology = build_dgx1v_cluster(self.config.cluster_nodes)
        else:
            topology = self.topology_builder()
        fabric = Fabric(env, topology, self.constants, observer=profiler)
        router = Router(topology)
        devices = [
            GpuDevice(env, topology.gpu(i), self.spec, profiler,
                      speed_factor=self.gpu_speed_factors.get(i, 1.0))
            for i in range(self.config.num_gpus)
        ]
        comm = make_communicator(
            self.config.comm_method,
            env,
            fabric,
            devices,
            self.cost_model,
            self.constants,
            profiler,
            gradient_bytes_scale=0.5 if self.config.fp16_gradients else 1.0,
            optimizer=self.optimizer,
            algorithm=self.config.nccl_algorithm,
            protocol=self.config.nccl_protocol,
        )

        input_ready: List[Optional[Event]] = [None] * len(devices)
        iteration_times: List[float] = []
        total_iterations = self.sim.warmup_iterations + self.sim.measure_iterations
        for iteration in range(total_iterations):
            if iteration == self.sim.warmup_iterations:
                profiler.enabled = True
                profiler.reset()
            start = env.now
            done = env.process(
                self._iteration(
                    env, iteration, devices, comm, profiler, fabric, router,
                    input_ready,
                )
            )
            env.run(until=done)
            if iteration >= self.sim.warmup_iterations:
                iteration_times.append(env.now - start)

        mean_iteration = sum(iteration_times) / len(iteration_times)
        fixed = comm.epoch_fixed_overhead() + self.constants.run_startup_overhead
        epoch_time = self.config.iterations_per_epoch * mean_iteration + fixed
        monitor = MemoryMonitor(self.spec, self.constants, optimizer=self.optimizer)
        return TrainingResult(
            config=self.config,
            iteration_time=mean_iteration,
            iteration_times=tuple(iteration_times),
            epoch_time=epoch_time,
            fixed_overhead=fixed,
            stages=summarize_stages(profiler),
            apis=summarize_apis(profiler),
            gpu_busy=gpu_busy_fractions(profiler),
            compute_utilization=self.cost_model.compute_utilization(
                self.stats, self.config.batch_size
            ),
            memory=tuple(
                monitor.sample(self.stats, self.config.batch_size, self.config.num_gpus)
            ),
            profiler=profiler if self.keep_profiler else None,
        )

    # ------------------------------------------------------------------
    # One synchronous-SGD iteration
    # ------------------------------------------------------------------
    def _iteration(
        self,
        env: Environment,
        iteration: int,
        devices: Sequence[GpuDevice],
        comm,
        profiler: Profiler,
        fabric: Fabric,
        router: Router,
        input_ready: List[Optional[Event]],
    ) -> Generator[Event, None, None]:
        c = self.constants
        start = env.now
        # Gradient readiness: one event per weighted layer per GPU.
        grad_ready: Dict[str, List[Event]] = {
            layer.name: [env.event() for _ in devices]
            for layer, kernels in self._bwd
            if layer.is_weighted
        }
        bp_end_times: List[float] = [start] * len(devices)

        # Prefetch the *next* batch while this one computes (double buffer).
        this_input = list(input_ready)
        for pos, dev in enumerate(devices):
            input_ready[pos] = env.process(
                self._stage_input(env, fabric, router, dev, profiler)
            )

        compute = [
            env.process(
                self._gpu_compute(
                    env, dev, pos, iteration, grad_ready, bp_end_times,
                    profiler, this_input[pos],
                )
            )
            for pos, dev in enumerate(devices)
        ]
        update = env.process(self._weight_update(env, comm, grad_ready))

        yield env.all_of(compute)
        compute_done = env.now
        yield update
        wu_end = max(env.now, compute_done)
        profiler.record_span("wu", -1, iteration, compute_done, wu_end)

        # Host-side barrier: one cudaStreamSynchronize per GPU (plus the
        # communicator's per-iteration launch rendezvous) and the
        # framework's iteration bookkeeping.
        yield env.timeout(
            c.framework_iteration_overhead
            + len(devices) * c.stream_sync_overhead
            + comm.per_iteration_overhead()
        )
        dispatch_time = self._kernels_per_iter * c.host_dispatch_per_kernel
        for pos, dev in enumerate(devices):
            # nvprof's view: the engine thread blocks in the sync call
            # from the moment its dispatch work ends until the barrier.
            sync_start = min(start + dispatch_time, env.now)
            profiler.record_api("cudaStreamSynchronize", dev.index, sync_start, env.now)
            profiler.record_api(
                "cudaLaunchKernel", dev.index, start, start + dispatch_time
            )
        profiler.record_span("iteration", -1, iteration, start, env.now)

    def _stage_input(
        self, env: Environment, fabric: Fabric, router: Router, dev: GpuDevice,
        profiler: Profiler,
    ) -> Generator[Event, None, None]:
        """HtoD copy of one GPU's next mini-batch (prefetch)."""
        nbytes = (
            self.stats.input_shape.numel * 4 * self.config.batch_size
        )
        cpu = fabric.topology.home_cpu(dev.node)
        route = router.cpu_to_gpu(cpu, dev.node)
        start = env.now
        yield from fabric.transfer(route, nbytes)
        profiler.record_transfer("h2d", -1, dev.index, nbytes, start, env.now)

    def _gpu_compute(
        self,
        env: Environment,
        dev: GpuDevice,
        pos: int,
        iteration: int,
        grad_ready: Dict[str, List[Event]],
        bp_end_times: List[float],
        profiler: Profiler,
        input_event: Optional[Event],
    ) -> Generator[Event, None, None]:
        """FP then BP on one GPU, signalling per-layer gradient readiness."""
        if input_event is not None and not input_event.triggered:
            yield input_event
        yield env.timeout(
            self.constants.input_pipeline_residual
            + self.constants.input_cost_per_image * self.config.batch_size
        )
        with profiler.span("fp", dev.index, iteration):
            for kernel in self._fwd:
                yield env.process(dev.run_kernel(kernel))
        with profiler.span("bp", dev.index, iteration):
            for layer, kernels in self._bwd:
                for kernel in kernels:
                    yield env.process(dev.run_kernel(kernel))
                if layer.is_weighted:
                    grad_ready[layer.name][pos].succeed()
        bp_end_times[pos] = env.now

    def _weight_update(
        self, env: Environment, comm, grad_ready: Dict[str, List[Event]]
    ) -> Generator[Event, None, None]:
        """Spawn per-array synchronization as gradients become ready."""
        pending = []
        if self.config.overlap_bp_wu:
            # Layers appear in BP completion order, so waiting on each in
            # turn streams arrays into the communicator as they are ready.
            for layer, _ in self._bwd:
                if not layer.is_weighted:
                    continue
                yield env.all_of(grad_ready[layer.name])
                for array in self.stats.arrays_of_layer(layer.name):
                    pending.append(env.process(comm.sync_array(array)))
        else:
            # No overlap: wait for every gradient, then synchronize.
            all_events = [e for events in grad_ready.values() for e in events]
            if all_events:
                yield env.all_of(all_events)
            for layer, _ in self._bwd:
                if layer.is_weighted:
                    for array in self.stats.arrays_of_layer(layer.name):
                        pending.append(env.process(comm.sync_array(array)))
        if pending:
            yield env.all_of(pending)


def train(
    config: TrainingConfig,
    sim: SimulationConfig = SimulationConfig(),
    constants: CalibrationConstants = CALIBRATION,
    **kwargs,
) -> TrainingResult:
    """Convenience wrapper: build a :class:`Trainer` and run it."""
    return Trainer(config, sim=sim, constants=constants, **kwargs).run()
