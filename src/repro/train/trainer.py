"""The multi-GPU synchronous-SGD training simulation.

One :class:`Trainer` assembles the full system for a
:class:`~repro.core.config.TrainingConfig`:

* the DGX-1 fabric and one :class:`~repro.gpu.device.GpuDevice` per GPU,
* the kernel schedules of the chosen network at the chosen batch size,
* a :class:`~repro.comm.base.Communicator` (P2P or NCCL),
* a :class:`~repro.profile.profiler.Profiler`.

Each simulated iteration reproduces MXNet's execution structure: every GPU
stages its input batch (prefetched, double-buffered over PCIe), runs FP
then BP; as soon as a layer's backward kernels finish on *all* GPUs its
weight arrays are handed to the communicator (the BP/WU overlap MXNet
pipelines); the iteration barrier falls when both compute and weight
update complete, plus the host-side synchronization cost.

Training is periodic, so the trainer simulates a warm-up then a few
measured iterations at full event fidelity and extrapolates the epoch:
``epoch = iterations * mean_iteration + once_per_run_overheads``.

Fault injection (``faults=``, a :class:`~repro.faults.plan.FaultPlan`)
generalizes this: the epoch timeline splits into *segments* -- maximal
windows with a constant active-fault set -- and each segment gets its own
fully-assembled mini-simulation over the degraded topology
(:func:`~repro.faults.view.degraded_topology`), so routing and NCCL
ring construction recompute over the surviving graph exactly as a real
communicator re-init would.  The epoch is then the sum of per-segment
extrapolations plus modeled transition/recovery costs; the no-faults
path is byte-identical to a faultless build (golden-tested).
"""

from __future__ import annotations

import math
from typing import Dict, Generator, List, Optional, Sequence, Tuple

from repro.core.config import SimulationConfig, TrainingConfig
from repro.core.constants import CALIBRATION, CalibrationConstants
from repro.core.errors import FaultPlanError, WorkerCrashError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, ResiliencePolicy
from repro.faults.recovery import (
    FaultSummary,
    SegmentReport,
    checkpoint_write_cost,
    crash_recovery_cost,
)
from repro.faults.view import degraded_topology
from repro.obs.session import ObsSession
from repro.perf.spans import PERF
from repro.obs.events import (
    FaultInjectedEvent,
    RecoveryCostEvent,
    RingRebuiltEvent,
    RouteRecomputedEvent,
)
from repro.dnn import build_network, compile_network, network_input_shape
from repro.dnn.stats import NetworkStats
from repro.gpu import GpuDevice, KernelCostModel, MemoryModel
from repro.gpu.spec import TESLA_V100, GpuSpec
from repro.profile import MemoryMonitor, Profiler, summarize_apis, summarize_stages
from repro.profile.summary import gpu_busy_fractions
from repro.sim import Environment
from repro.sim.events import Event
from repro.topology import Fabric, Router, build_dgx1v
from repro.train.optimizers import get_optimizer
from repro.train.results import TrainingResult
from repro.train.strategies import strategy_for


def _fault_kind(label: str) -> str:
    return label.split(":", 1)[0]


class Trainer:
    """Simulates training one network on the DGX-1."""

    def __init__(
        self,
        config: TrainingConfig,
        sim: SimulationConfig = SimulationConfig(),
        constants: CalibrationConstants = CALIBRATION,
        spec: GpuSpec = TESLA_V100,
        use_tensor_cores: bool = True,
        check_memory: bool = True,
        keep_profiler: bool = False,
        topology_builder=build_dgx1v,
        network=None,
        input_shape=None,
        gpu_speed_factors=None,
        obs: Optional[ObsSession] = None,
        faults: Optional[FaultPlan] = None,
        checks=None,
    ) -> None:
        """``network``/``input_shape`` override the zoo lookup, letting a
        custom :class:`~repro.dnn.network.Network` train under any
        configuration (``config.network`` then serves only as a label).
        ``gpu_speed_factors`` maps GPU position -> kernel-duration
        multiplier (>1 = slower) for straggler-injection studies; each
        value is either a scalar or a time-varying
        :class:`~repro.faults.plan.SlowdownProfile` sampled at kernel
        start times.  ``obs`` attaches an
        :class:`~repro.obs.session.ObsSession`: the profiler, devices,
        fabric, communicator and sim engine then emit typed events onto
        its bus, feeding the metrics registry and (if enabled) the JSONL
        recorder.  ``faults`` attaches a deterministic
        :class:`~repro.faults.plan.FaultPlan`; ``None`` (or an empty
        plan) takes the exact healthy code path.  ``checks`` attaches a
        :class:`~repro.checks.CheckEngine`: the sim engine, fabric,
        communicator and trainer then fire their invariant checkpoints
        (no-ops when the engine's mode is ``off``); accumulated
        violations land on :attr:`TrainingResult.violations`."""
        self.config = config
        self.sim = sim
        self.constants = constants
        self.spec = spec
        self.check_memory = check_memory
        self.keep_profiler = keep_profiler
        self.topology_builder = topology_builder
        self.gpu_speed_factors = dict(gpu_speed_factors or {})
        self.obs = obs
        self.faults = faults
        self.checks = checks
        if checks is not None and obs is not None:
            checks.bind_bus(obs.bus)
        if faults is not None and not isinstance(faults, FaultPlan):
            raise FaultPlanError(
                f"faults must be a FaultPlan, got {type(faults).__name__}"
            )
        # Per-segment cluster overrides the faulted segment loop sets and
        # the strategy's communicator construction consults; None outside
        # a faulted cluster segment (the healthy path never touches them).
        self._fault_cluster_nodes: Optional[int] = None
        self._fault_rail_scales: Optional[Tuple[float, ...]] = None
        if faults is not None:
            self._validate_fault_plan(faults)
        with PERF.span("trainer.compile"):
            if network is not None:
                if input_shape is None:
                    raise ValueError(
                        "a custom network needs an explicit input_shape")
                self.stats = compile_network(network, input_shape)
            else:
                self.stats = compile_network(
                    build_network(config.network),
                    network_input_shape(config.network)
                )
            self.optimizer = get_optimizer(config.optimizer)
            self.cost_model = KernelCostModel(spec, constants, use_tensor_cores)
            self.memory_model = MemoryModel(spec, constants,
                                            optimizer=self.optimizer)
            # Kernel schedules are batch-dependent but iteration-invariant.
            self._fwd = self.cost_model.forward_schedule(
                self.stats, config.batch_size)
            self._bwd = self.cost_model.backward_schedule(
                self.stats, config.batch_size)
            self._kernels_per_iter = (
                len(self._fwd) + sum(len(k) for _, k in self._bwd))
            # Raw per-GPU kernel seconds of one iteration -- the compute
            # stage of the analytic DAG oracle (repro.checks.dag).
            self._kernel_seconds = (
                sum(k.duration for k in self._fwd)
                + sum(k.duration for _, ks in self._bwd for k in ks)
            )
        self.strategy = strategy_for(config)

    def _validate_fault_plan(self, plan: FaultPlan) -> None:
        """Reject a plan this run cannot execute, before any simulation.

        Every fault target is bounds-checked against the configuration
        eagerly (a bad plan must fail at construction, not minutes into
        a sweep), cluster-tier primitives require the hierarchical
        collective, and an explicit analytic fast path must be able to
        represent the plan (:func:`~repro.train.strategies.resolve_fast_path`).
        """
        cfg = self.config
        for f in plan.crashes:
            if f.gpu >= cfg.num_gpus:
                raise FaultPlanError(
                    f"crash targets gpu{f.gpu} but the run uses "
                    f"{cfg.num_gpus} GPU(s)"
                )
        for f in plan.stragglers:
            if f.gpu >= cfg.num_gpus:
                raise FaultPlanError(
                    f"straggler targets gpu{f.gpu} but the run uses "
                    f"{cfg.num_gpus} GPU(s)"
                )
        for f in plan.ecc_faults:
            if f.gpu >= cfg.num_gpus:
                raise FaultPlanError(
                    f"ecc fault targets gpu{f.gpu} but the run uses "
                    f"{cfg.num_gpus} GPU(s)"
                )
        if plan.cluster_faults and cfg.cluster_collective == "compat":
            raise FaultPlanError(
                "rail/node faults live on the hierarchical cluster tier: "
                "select a non-compat cluster_collective "
                "(see docs/FAULTS.md)"
            )
        if plan.cluster_faults:
            from repro.topology.cluster import IB_LANES_PER_NODE

            for f in plan.rail_faults:
                if f.node >= cfg.cluster_nodes:
                    raise FaultPlanError(
                        f"rail fault targets node {f.node} but the "
                        f"cluster has {cfg.cluster_nodes} node(s)"
                    )
                if f.rail >= IB_LANES_PER_NODE:
                    raise FaultPlanError(
                        f"rail fault targets rail {f.rail} but nodes "
                        f"have {IB_LANES_PER_NODE} rails"
                    )
            for f in (*plan.node_stragglers, *plan.node_crashes):
                if f.node >= cfg.cluster_nodes:
                    raise FaultPlanError(
                        f"{f.label()} targets node {f.node} but the "
                        f"cluster has {cfg.cluster_nodes} node(s)"
                    )
        if (plan.crashes and cfg.cluster_nodes > 1
                and cfg.cluster_collective != "compat"):
            raise FaultPlanError(
                "hierarchical collectives need full 8-GPU nodes, so a "
                "single-GPU crash cannot shrink a multi-node cluster -- "
                "use NodeCrashFault for node-granularity recovery"
            )
        if not plan.empty:
            from repro.train.strategies import resolve_fast_path

            # Raises under an explicit analytic fast path the plan's
            # faults cannot be represented on.
            resolve_fast_path(cfg, plan)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self) -> TrainingResult:
        """Simulate the run and return the measured result.

        Delegates to the configured
        :class:`~repro.train.strategies.ReductionStrategy` (resolved from
        ``config.strategy``; the default ``"auto"`` maps ``comm_method``
        to the matching synchronous strategy, byte-identical to the
        pre-registry trainer).  Raises
        :class:`~repro.core.errors.OutOfMemoryError` when the
        configuration cannot fit in GPU memory (as the paper hit for
        Inception-v3/ResNet above batch 64), and
        :class:`~repro.core.errors.WorkerCrashError` when the fault plan
        crashes a worker under the ``FAIL_FAST`` policy.
        """
        with PERF.span(f"strategy.{self.strategy.name}"):
            return self.strategy.run(self)

    # ------------------------------------------------------------------
    # System assembly and steady-state measurement
    # ------------------------------------------------------------------
    def _base_topology(self):
        cfg = self.config
        if cfg.cluster_nodes > 1 or cfg.cluster_fabric != "compat":
            from repro.topology import ClusterSpec, build_cluster

            # "compat" keeps the aggregated width-4 attachment (the
            # pre-cluster-tier graph, byte-identical); the rail fabrics
            # go through the parameterized ClusterSpec (docs/SCALING.md).
            interconnect = (
                cfg.cluster_fabric
                if cfg.cluster_fabric != "compat"
                else "aggregated"
            )
            return build_cluster(
                ClusterSpec(cfg.cluster_nodes, interconnect=interconnect)
            )
        return self.topology_builder()

    @property
    def _simulated_gpus(self) -> int:
        """GPUs the event simulation instantiates devices for.

        The analytic cluster fast path simulates one *representative
        node* (node 0's eight GPUs): compute and per-node host costs are
        identical on every node, while the hierarchical communicator
        charges collective durations and rendezvous for the full
        cluster.  Every other configuration simulates all GPUs.
        """
        cfg = self.config
        if cfg.cluster_collective != "compat":
            from repro.topology import GPUS_PER_NODE
            from repro.train.strategies import resolve_fast_path

            if resolve_fast_path(cfg, self.faults) == "analytic":
                return min(cfg.num_gpus, GPUS_PER_NODE)
        return cfg.num_gpus

    def _build_system(
        self,
        topology=None,
        gpu_indices: Optional[Sequence[int]] = None,
        speed_overrides: Optional[Dict[int, float]] = None,
        ecc_models: Optional[Dict[int, object]] = None,
    ):
        """Assemble env, profiler, fabric, router, devices and comm.

        One code path for healthy and faulted construction: with no
        overrides this is the exact healthy sequence (byte-identical
        outputs); the faulted path passes a degraded topology, a survivor
        GPU set and per-segment speed/ECC models.  The communicator
        itself is strategy-owned
        (:meth:`~repro.train.strategies.ReductionStrategy.build_communicator`).
        """
        with PERF.span("trainer.build"):
            env = Environment()
            profiler = Profiler(
                enabled=False,
                bus=self.obs.bus if self.obs is not None else None,
                clock=env,
            )
            if self.obs is not None:
                env.set_observer(self.obs.queue_observer(profiler),
                                 every=self.obs.queue_sample_every)
            if self.checks is not None:
                env.set_checks(self.checks)
            if topology is None:
                topology = self._base_topology()
            fabric = Fabric(env, topology, self.constants, observer=profiler,
                            checks=self.checks)
            router = Router(topology)
            if gpu_indices is None:
                gpu_indices = range(self._simulated_gpus)
            speed_overrides = speed_overrides or {}
            ecc_models = ecc_models or {}
            devices = [
                GpuDevice(env, topology.gpu(i), self.spec, profiler,
                          speed_factor=speed_overrides.get(
                              i, self.gpu_speed_factors.get(i, 1.0)),
                          ecc=ecc_models.get(i))
                for i in gpu_indices
            ]
            comm = self.strategy.build_communicator(
                self, env, fabric, devices, profiler)
            return env, profiler, fabric, router, devices, comm

    # ------------------------------------------------------------------
    # Invariant checkpoints over one measured system
    # ------------------------------------------------------------------
    def _sync_arrays(self):
        """The weight arrays one iteration hands to the communicator."""
        return [
            array
            for layer, _ in self._bwd
            if layer.is_weighted
            for array in self.stats.arrays_of_layer(layer.name)
        ]

    def _post_measure_checks(self, env, profiler, fabric, devices, comm,
                             iterations: int) -> None:
        """Fire the trainer-level checkpoints after a measured segment.

        Covers temporal span structure (``trainer.stages``), exact
        gradient-traffic conservation (``trainer.traffic``) and the
        fabric's cumulative link accounting (``fabric.totals``).
        """
        checks = self.checks
        if checks is None or not checks.enabled:
            return
        with PERF.span("trainer.checks"):
            self._post_measure_checks_inner(
                env, profiler, fabric, devices, comm, iterations)

    def _post_measure_checks_inner(self, env, profiler, fabric, devices,
                                   comm, iterations: int) -> None:
        checks = self.checks
        spans = list(profiler.spans)
        host_overhead = (
            self.constants.framework_iteration_overhead
            + len(devices) * self.constants.stream_sync_overhead
            + comm.per_iteration_overhead()
        )
        busy: Dict[int, float] = {}
        for kernel in profiler.kernels:
            busy[kernel.gpu] = busy.get(kernel.gpu, 0.0) + (kernel.end - kernel.start)
        windows = [s for s in spans if s.name == "iteration"]
        elapsed = (
            max(s.end for s in windows) - min(s.start for s in windows)
            if windows else 0.0
        )
        checks.check(
            "trainer.stages",
            spans=spans,
            host_overhead=host_overhead,
            busy=busy,
            elapsed=elapsed,
            now=env.now,
        )
        measured: Dict[str, int] = {}
        for t in profiler.transfers:
            if t.kind in ("p2p", "nccl"):
                measured[t.kind] = measured.get(t.kind, 0) + t.nbytes
        from repro.checks.expect import expected_sync_bytes

        expected = expected_sync_bytes(
            comm.name,
            self._sync_arrays(),
            len(devices),
            gradient_bytes_scale=comm.gradient_bytes_scale,
        )
        checks.check(
            "trainer.traffic",
            comm=comm.name,
            measured=measured,
            expected=expected,
            iterations=iterations,
            now=env.now,
        )
        checks.check(
            "fabric.totals",
            bytes_moved=dict(fabric.bytes_moved),
            busy_time=dict(fabric.busy_time),
            wait_time=dict(fabric.wait_time),
            elapsed=env.now,
            now=env.now,
        )
        # Analytic-DAG cross-check oracle (Shi et al.'s stage model of
        # synchronous SGD): the measured mean iteration must dominate the
        # closed-form critical-path floor computed from quantities the
        # event simulation never touches.
        from repro.checks.dag import aggregate_peak_bandwidth, device_factor_floor

        compute_floor = self._kernel_seconds * max(
            (device_factor_floor(dev) for dev in devices), default=1.0
        )
        wire_floor = 0.0
        if expected:
            agg = aggregate_peak_bandwidth(fabric.topology)
            if agg > 0.0:
                wire_floor = expected / agg
        checks.check(
            "trainer.dag",
            mean_iteration=elapsed / iterations if iterations else 0.0,
            compute_floor=compute_floor,
            input_floor=(
                self.constants.input_pipeline_residual
                + self.constants.input_cost_per_image * self.config.batch_size
            ),
            wire_floor=wire_floor,
            host_floor=host_overhead,
            iterations=iterations,
            now=env.now,
        )
        if comm.name == "nccl-hierarchical":
            # Fast-path contract: the resolved path never silently
            # drops a fault plan, and the measured iteration dominates
            # the fault-aware closed-form collective floor both modes
            # share (temporal.fallback-agreement).
            plan = self.faults
            faulted = plan is not None and not plan.empty
            checks.check(
                "trainer.fastpath",
                requested=self.config.cluster_fast_path,
                resolved=comm.fast_path,
                analytic_ok=(
                    not faulted or plan.analytic_conflict() is None
                ),
                faulted=faulted,
                mean_iteration=elapsed / iterations if iterations else 0.0,
                analytic_wu=sum(
                    comm.allreduce_duration(comm._comm_bytes(a))
                    for a in self._sync_arrays()
                ),
                iterations=iterations,
                now=env.now,
            )

    def _result_checks(self, epoch_time: float, iterations: int,
                       mean_iteration: float, fixed: float, memory) -> tuple:
        """Fire the run-level checkpoints; return the violation records."""
        checks = self.checks
        if checks is None:
            return ()
        if checks.enabled:
            checks.check(
                "trainer.epoch",
                epoch_time=epoch_time,
                iterations=iterations,
                mean_iteration=mean_iteration,
                fixed=fixed,
            )
            checks.check(
                "trainer.memory",
                totals=[(m.gpu, m.usage.total) for m in memory],
                capacity=self.spec.memory_bytes,
                check_memory=self.check_memory,
            )
        return checks.violation_records()

    def _measure(
        self, env, profiler, fabric, router, devices, comm
    ) -> List[float]:
        """Warm up, then measure steady-state iterations at full fidelity."""
        with PERF.span("trainer.measure"):
            input_ready: List[Optional[Event]] = [None] * len(devices)
            iteration_times: List[float] = []
            total_iterations = (
                self.sim.warmup_iterations + self.sim.measure_iterations)
            for iteration in range(total_iterations):
                if iteration == self.sim.warmup_iterations:
                    profiler.enabled = True
                    profiler.reset()
                start = env.now
                done = env.process(
                    self._iteration(
                        env, iteration, devices, comm, profiler, fabric,
                        router, input_ready,
                    )
                )
                env.run(until=done)
                if iteration >= self.sim.warmup_iterations:
                    iteration_times.append(env.now - start)
            if PERF.enabled:
                PERF.count("sim.events", env.dispatched)
                PERF.count("trainer.iterations", total_iterations)
            return iteration_times

    def _run_healthy(self) -> TrainingResult:
        env, profiler, fabric, router, devices, comm = self._build_system()
        iteration_times = self._measure(
            env, profiler, fabric, router, devices, comm
        )
        self._post_measure_checks(env, profiler, fabric, devices, comm,
                                  len(iteration_times))
        mean_iteration = sum(iteration_times) / len(iteration_times)
        fixed = comm.epoch_fixed_overhead() + self.constants.run_startup_overhead
        epoch_time = self.config.iterations_per_epoch * mean_iteration + fixed
        monitor = MemoryMonitor(self.spec, self.constants, optimizer=self.optimizer)
        memory = tuple(
            monitor.sample(self.stats, self.config.batch_size, self.config.num_gpus)
        )
        violations = self._result_checks(
            epoch_time, self.config.iterations_per_epoch, mean_iteration,
            fixed, memory,
        )
        return TrainingResult(
            config=self.config,
            iteration_time=mean_iteration,
            iteration_times=tuple(iteration_times),
            epoch_time=epoch_time,
            fixed_overhead=fixed,
            stages=summarize_stages(profiler),
            apis=summarize_apis(profiler),
            gpu_busy=gpu_busy_fractions(profiler),
            compute_utilization=self.cost_model.compute_utilization(
                self.stats, self.config.batch_size
            ),
            memory=memory,
            profiler=profiler if self.keep_profiler else None,
            violations=violations,
        )

    # ------------------------------------------------------------------
    # Faulted runs: segment-by-segment epoch assembly
    # ------------------------------------------------------------------
    def _run_faulted(self, injector: FaultInjector) -> TrainingResult:
        cfg = self.config
        plan = injector.plan
        crash = injector.crash
        node_crash = injector.node_crash
        # At most one of the two (FaultPlan enforces it); either way the
        # epoch sees a single membership change at one iteration boundary.
        crash_event = crash if crash is not None else node_crash
        policy = plan.policy
        if (crash is not None and policy is ResiliencePolicy.SHRINK
                and cfg.num_gpus == 1):
            # Nothing to shrink to: a 1-GPU run cannot survive its only
            # worker, so SHRINK degenerates to FAIL_FAST.
            policy = ResiliencePolicy.FAIL_FAST
        if (node_crash is not None and policy is ResiliencePolicy.SHRINK
                and cfg.cluster_nodes == 1):
            # Same rule one level up: a 1-node cluster cannot shrink.
            policy = ResiliencePolicy.FAIL_FAST
        costs = plan.costs
        bus = self.obs.bus if self.obs is not None else None
        boundaries = list(injector.boundaries())
        total_iters = cfg.iterations_per_epoch
        cluster = cfg.cluster_collective != "compat"
        if cluster:
            from repro.topology.cluster import GPUS_PER_NODE, IB_LANES_PER_NODE

            rails = IB_LANES_PER_NODE
        active_nodes = cfg.cluster_nodes

        participants = list(range(self._simulated_gpus))
        now = 0.0                # epoch-timeline seconds
        done_iters = 0           # epoch iterations completed
        remaining = total_iters
        segments: List[SegmentReport] = []
        seg_profilers: List[Tuple[int, Profiler]] = []
        iteration_times: List[float] = []
        transition_cost = 0.0
        recovery_cost = 0.0
        crash_pending = crash_event is not None
        crashed_gpu: Optional[int] = None
        crashed_node: Optional[int] = None
        replayed = 0
        fixed: Optional[float] = None
        ring_reason: Optional[str] = None
        # The strategy's contract with the fault layer: whether topology
        # changes additionally pay an NCCL communicator re-init.
        recovery = self.strategy.recovery_semantics()
        # The pristine topology is segment-invariant; each segment derives
        # its degraded view from this one base instead of re-deriving it.
        base = self._base_topology()

        if bus is not None:
            for label in injector.active_labels(0.0):
                bus.publish(FaultInjectedEvent(
                    fault=label, kind=_fault_kind(label), at=0.0))

        while remaining > 0:
            topo = degraded_topology(base, injector, now)
            # Faults that change the communication structure (routable
            # links, inter-node rails); a change between segments pays
            # the route/ring transition costs.
            link_sig = tuple(
                label for label in injector.active_labels(now)
                if label.startswith(("link:", "rail:"))
            )
            rails_degraded = 0
            if cluster:
                scales = injector.rail_scales(rails, now)
                rails_degraded = sum(1 for s in scales if s < 1.0)
                self._fault_rail_scales = (
                    scales if rails_degraded else None
                )
                self._fault_cluster_nodes = (
                    active_nodes if active_nodes != cfg.cluster_nodes
                    else None
                )
            speed = {
                i: self._base_factor(i, now) * injector.gpu_factor(i, now)
                for i in participants
            }
            ecc = {
                i: m for i in participants
                if (m := injector.ecc_model(i, now)) is not None
            }
            env, profiler, fabric, router, devices, comm = self._build_system(
                topology=topo,
                gpu_indices=participants,
                speed_overrides=speed,
                ecc_models=ecc,
            )
            # The overrides only steer communicator construction; clear
            # them so an exception (or a later healthy run on this
            # trainer) never sees a stale cluster narrowing.
            self._fault_cluster_nodes = None
            self._fault_rail_scales = None
            plan_obj = getattr(comm, "plan", None)
            if bus is not None and topo is not base:
                bus.publish(RouteRecomputedEvent(
                    reason=ring_reason or "link-fault",
                    surviving_links=len(topo.links),
                    failed_links=len(base.links) - len(topo.links),
                    cost=costs.route_recompute,
                    at=now,
                ))
            if bus is not None and ring_reason is not None:
                bus.publish(RingRebuiltEvent(
                    gpus=len(participants),
                    uses_pcie=bool(plan_obj.uses_pcie) if plan_obj else False,
                    bandwidth=plan_obj.aggregate_bandwidth if plan_obj else 0.0,
                    cost=costs.ring_rebuild if plan_obj else 0.0,
                    at=now,
                ))
            ring_reason = None

            times = self._measure(env, profiler, fabric, router, devices, comm)
            self._post_measure_checks(env, profiler, fabric, devices, comm,
                                      len(times))
            mean = sum(times) / len(times)
            iteration_times.extend(times)
            if fixed is None:
                fixed = (comm.epoch_fixed_overhead()
                         + self.constants.run_startup_overhead)

            next_boundary = next((b for b in boundaries if b > now), None)
            if next_boundary is None:
                n = remaining
            else:
                n = min(remaining,
                        max(1, math.ceil((next_boundary - now) / mean)))
            crash_now = (
                crash_pending
                and done_iters < crash_event.at_iteration <= done_iters + n
            )
            if crash_now:
                n = crash_event.at_iteration - done_iters

            segments.append(SegmentReport(
                index=len(segments),
                start_time=now,
                start_iteration=done_iters,
                iterations=n,
                mean_iteration=mean,
                active=injector.active_labels(now),
                ring_bandwidth=plan_obj.aggregate_bandwidth if plan_obj else 0.0,
                ring_uses_pcie=bool(plan_obj.uses_pcie) if plan_obj else False,
                gpus=len(participants),
                rails_degraded=rails_degraded,
            ))
            seg_profilers.append((n, profiler))

            prev_now = now
            now += n * mean
            done_iters += n
            remaining -= n

            if crash_now:
                crash_pending = False
                if bus is not None:
                    bus.publish(FaultInjectedEvent(
                        fault=crash_event.label(),
                        kind=_fault_kind(crash_event.label()),
                        at=now))
                if node_crash is not None:
                    crashed_node = node_crash.node
                    first_rank = node_crash.node * GPUS_PER_NODE
                    if policy is ResiliencePolicy.FAIL_FAST:
                        raise WorkerCrashError(
                            first_rank, node_crash.at_iteration)
                else:
                    crashed_gpu = crash.gpu
                    first_rank = crash.gpu
                    if policy is ResiliencePolicy.FAIL_FAST:
                        raise WorkerCrashError(crash.gpu, crash.at_iteration)
                cost, replay = crash_recovery_cost(crash_event, policy, costs)
                recovery_cost += cost
                replayed = replay
                if policy is ResiliencePolicy.SHRINK:
                    if node_crash is not None:
                        # Node-granularity shrink: the survivors re-rank
                        # densely into the low global ranks (elastic
                        # training re-ranks on every membership change),
                        # keeping the hierarchical communicator's
                        # representative intra-node ring well-formed.
                        active_nodes -= 1
                        participants = list(
                            range(active_nodes * GPUS_PER_NODE))
                    else:
                        participants = [
                            i for i in participants if i != crash.gpu]
                    images_left = (cfg.total_images
                                   - done_iters * cfg.global_batch_size)
                    remaining = max(0, math.ceil(
                        images_left / (cfg.batch_size * len(participants))
                    )) if images_left > 0 else 0
                else:  # CHECKPOINT_RESTART: replay lost work at full width
                    remaining += replay
                if bus is not None:
                    bus.publish(RecoveryCostEvent(
                        policy=policy.value,
                        gpu=first_rank,
                        iteration=crash_event.at_iteration,
                        cost=cost,
                        replayed_iterations=replay,
                        at=now,
                    ))
                now += cost
                ring_reason = "crash"
            if remaining > 0 and not crash_now:
                new_sig = tuple(
                    label for label in injector.active_labels(now)
                    if label.startswith(("link:", "rail:"))
                )
                if new_sig != link_sig:
                    # The communication structure changed: pay a route
                    # recomputation and (strategies declaring ring-based
                    # recovery semantics only) an NCCL communicator
                    # rebuild before the next segment.
                    cost = costs.route_recompute
                    if recovery.ring_rebuild and plan_obj is not None:
                        cost += costs.ring_rebuild
                        changed = set(new_sig) ^ set(link_sig)
                        ring_reason = (
                            "rail-fault"
                            if any(l.startswith("rail:") for l in changed)
                            else "link-fault"
                        )
                    transition_cost += cost
                    now += cost
                if bus is not None:
                    for label in injector.activated_between(prev_now, now):
                        bus.publish(FaultInjectedEvent(
                            fault=label, kind=_fault_kind(label), at=now))

        checkpoint_cost = 0.0
        if policy is ResiliencePolicy.CHECKPOINT_RESTART:
            checkpoint_cost = checkpoint_write_cost(done_iters, costs)

        sim_seconds = sum(s.span for s in segments)
        overhead = transition_cost + recovery_cost + checkpoint_cost
        epoch_time = sim_seconds + fixed + overhead
        mean_iteration = sim_seconds / done_iters
        # Stage/API/busy summaries come from the dominant segment (most
        # epoch iterations; first on ties) -- the regime the epoch mostly
        # ran in.
        dominant = max(range(len(seg_profilers)),
                       key=lambda i: seg_profilers[i][0])
        dom_profiler = seg_profilers[dominant][1]
        summary = FaultSummary(
            policy=policy.value,
            segments=tuple(segments),
            transition_cost=transition_cost,
            recovery_cost=recovery_cost,
            checkpoint_cost=checkpoint_cost,
            healthy_iteration=segments[0].mean_iteration,
            crashed_gpu=crashed_gpu,
            crash_iteration=(
                crash_event.at_iteration
                if crashed_gpu is not None or crashed_node is not None
                else None
            ),
            replayed_iterations=replayed,
            survivors=len(participants),
            crashed_node=crashed_node,
        )
        monitor = MemoryMonitor(self.spec, self.constants, optimizer=self.optimizer)
        memory = tuple(
            monitor.sample(self.stats, cfg.batch_size, cfg.num_gpus)
        )
        violations = self._result_checks(
            epoch_time, done_iters, mean_iteration, fixed + overhead, memory,
        )
        return TrainingResult(
            config=cfg,
            iteration_time=mean_iteration,
            iteration_times=tuple(iteration_times),
            epoch_time=epoch_time,
            fixed_overhead=fixed + overhead,
            stages=summarize_stages(dom_profiler),
            apis=summarize_apis(dom_profiler),
            gpu_busy=gpu_busy_fractions(dom_profiler),
            compute_utilization=self.cost_model.compute_utilization(
                self.stats, cfg.batch_size
            ),
            memory=memory,
            profiler=dom_profiler if self.keep_profiler else None,
            faults=summary,
            violations=violations,
        )

    def _base_factor(self, gpu: int, now: float) -> float:
        """The user-supplied straggler factor for ``gpu`` sampled at ``now``."""
        base = self.gpu_speed_factors.get(gpu, 1.0)
        if hasattr(base, "at"):
            return base.at(now)
        return float(base)

    # ------------------------------------------------------------------
    # One synchronous-SGD iteration
    # ------------------------------------------------------------------
    def _iteration(
        self,
        env: Environment,
        iteration: int,
        devices: Sequence[GpuDevice],
        comm,
        profiler: Profiler,
        fabric: Fabric,
        router: Router,
        input_ready: List[Optional[Event]],
    ) -> Generator[Event, None, None]:
        c = self.constants
        start = env.now
        # Gradient readiness: one event per weighted layer per GPU.
        grad_ready: Dict[str, List[Event]] = {
            layer.name: [env.event() for _ in devices]
            for layer, kernels in self._bwd
            if layer.is_weighted
        }
        bp_end_times: List[float] = [start] * len(devices)

        # Prefetch the *next* batch while this one computes (double buffer).
        this_input = list(input_ready)
        for pos, dev in enumerate(devices):
            input_ready[pos] = env.process(
                self._stage_input(env, fabric, router, dev, profiler)
            )

        compute = [
            env.process(
                self._gpu_compute(
                    env, dev, pos, iteration, grad_ready, bp_end_times,
                    profiler, this_input[pos],
                )
            )
            for pos, dev in enumerate(devices)
        ]
        update = env.process(self._weight_update(env, comm, grad_ready))

        yield env.all_of(compute)
        compute_done = env.now
        yield update
        wu_end = max(env.now, compute_done)
        profiler.record_span("wu", -1, iteration, compute_done, wu_end)

        # Host-side barrier: one cudaStreamSynchronize per GPU (plus the
        # communicator's per-iteration launch rendezvous) and the
        # framework's iteration bookkeeping.
        yield env.timeout(
            c.framework_iteration_overhead
            + len(devices) * c.stream_sync_overhead
            + comm.per_iteration_overhead()
        )
        dispatch_time = self._kernels_per_iter * c.host_dispatch_per_kernel
        for pos, dev in enumerate(devices):
            # nvprof's view: the engine thread blocks in the sync call
            # from the moment its dispatch work ends until the barrier.
            sync_start = min(start + dispatch_time, env.now)
            profiler.record_api("cudaStreamSynchronize", dev.index, sync_start, env.now)
            profiler.record_api(
                "cudaLaunchKernel", dev.index, start, start + dispatch_time
            )
        profiler.record_span("iteration", -1, iteration, start, env.now)

    def _stage_input(
        self, env: Environment, fabric: Fabric, router: Router, dev: GpuDevice,
        profiler: Profiler,
    ) -> Generator[Event, None, None]:
        """HtoD copy of one GPU's next mini-batch (prefetch)."""
        nbytes = (
            self.stats.input_shape.numel * 4 * self.config.batch_size
        )
        cpu = fabric.topology.home_cpu(dev.node)
        route = router.cpu_to_gpu(cpu, dev.node)
        start = env.now
        yield from fabric.transfer(route, nbytes)
        profiler.record_transfer("h2d", -1, dev.index, nbytes, start, env.now)

    def _gpu_compute(
        self,
        env: Environment,
        dev: GpuDevice,
        pos: int,
        iteration: int,
        grad_ready: Dict[str, List[Event]],
        bp_end_times: List[float],
        profiler: Profiler,
        input_event: Optional[Event],
    ) -> Generator[Event, None, None]:
        """FP then BP on one GPU, signalling per-layer gradient readiness."""
        if input_event is not None and not input_event.triggered:
            yield input_event
        yield env.timeout(
            self.constants.input_pipeline_residual
            + self.constants.input_cost_per_image * self.config.batch_size
        )
        with profiler.span("fp", dev.index, iteration):
            for kernel in self._fwd:
                yield env.process(dev.run_kernel(kernel))
        with profiler.span("bp", dev.index, iteration):
            for layer, kernels in self._bwd:
                for kernel in kernels:
                    yield env.process(dev.run_kernel(kernel))
                if layer.is_weighted:
                    grad_ready[layer.name][pos].succeed()
        bp_end_times[pos] = env.now

    def _weight_update(
        self, env: Environment, comm, grad_ready: Dict[str, List[Event]]
    ) -> Generator[Event, None, None]:
        """The strategy's reduction schedule over the gradient-ready DAG."""
        yield from self.strategy.schedule_weight_update(
            self, env, comm, grad_ready)


def train(
    config: TrainingConfig,
    sim: SimulationConfig = SimulationConfig(),
    constants: CalibrationConstants = CALIBRATION,
    **kwargs,
) -> TrainingResult:
    """Convenience wrapper: build a :class:`Trainer` and run it."""
    return Trainer(config, sim=sim, constants=constants, **kwargs).run()
