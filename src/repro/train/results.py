"""Result objects returned by the trainer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.checks.engine import Violation
from repro.core.config import TrainingConfig
from repro.faults.recovery import FaultSummary
from repro.profile.profiler import Profiler
from repro.profile.smi import MemoryReading
from repro.profile.summary import ApiSummary, StageBreakdown


@dataclass(frozen=True)
class AsyncStats:
    """Staleness accounting of an asynchronous (``async-update``) run.

    The delayed-gradient problem in numbers: how many server updates
    landed between each worker's pull and its push.  ``None`` on
    :attr:`TrainingResult.async_stats` for synchronous strategies.
    """

    staleness_mean: float            # server updates between pull and push
    staleness_max: int
    staleness_samples: Tuple[int, ...]
    server_updates: int


@dataclass(frozen=True)
class TrainingResult:
    """Everything measured for one training configuration."""

    config: TrainingConfig
    iteration_time: float            # mean steady-state iteration (s)
    iteration_times: Tuple[float, ...]
    epoch_time: float                # extrapolated epoch time (s)
    fixed_overhead: float            # once-per-run cost included in epoch_time
    stages: StageBreakdown           # per-iteration FP/BP/WU means
    apis: ApiSummary
    gpu_busy: Dict[int, float]       # busy fraction per GPU over the window
    compute_utilization: float       # achieved/peak FLOP fraction in FP+BP
    memory: Tuple[MemoryReading, ...]
    profiler: Optional[Profiler] = None
    #: What the fault/resilience layer did to this run; ``None`` for a
    #: healthy (no-faults) simulation.
    faults: Optional[FaultSummary] = None
    #: Invariant violations the attached :class:`~repro.checks.CheckEngine`
    #: recorded (always empty with checks off or in a clean strict run).
    violations: Tuple[Violation, ...] = ()
    #: Staleness accounting when the run used the ``async-update``
    #: strategy; ``None`` for every synchronous strategy.
    async_stats: Optional[AsyncStats] = None

    @property
    def iterations_per_epoch(self) -> int:
        return self.config.iterations_per_epoch

    # ------------------------------------------------------------------
    # Epoch-level stage times (what Figures 3-5 plot)
    # ------------------------------------------------------------------
    @property
    def epoch_wu_time(self) -> float:
        """Exposed weight-update (communication) time per epoch."""
        return self.stages.wu * self.iterations_per_epoch

    @property
    def epoch_fp_bp_time(self) -> float:
        """Computation (FP+BP) time per epoch.

        Following the paper's Figure 4, the epoch splits into exactly two
        buckets -- communication (the exposed WU stage) and everything
        else, which nvprof attributes to the FP+BP stages (kernel time
        plus the CUDA API/synchronization overheads that make LeNet's
        FP+BP scale non-linearly).
        """
        return self.epoch_time - self.epoch_wu_time

    @property
    def images_per_second(self) -> float:
        images = self.config.total_images
        return images / self.epoch_time if self.epoch_time > 0 else 0.0

    def speedup_over(self, baseline: "TrainingResult") -> float:
        """Strong/weak-scaling speedup relative to another run.

        For weak scaling both runs process different image counts, so the
        comparison normalizes to time per image.
        """
        mine = self.epoch_time / self.config.total_images
        theirs = baseline.epoch_time / baseline.config.total_images
        return theirs / mine if mine > 0 else 0.0

    def describe(self) -> str:
        return (
            f"{self.config.describe()}: epoch={self.epoch_time:.2f}s "
            f"(fp+bp={self.epoch_fp_bp_time:.2f}s, wu={self.epoch_wu_time:.2f}s, "
            f"{self.images_per_second:.0f} img/s)"
        )
