"""Multi-GPU data-parallel training simulation.

:class:`~repro.train.trainer.Trainer` assembles the whole system -- DGX-1
fabric, V100 devices, kernel cost model, communicator, profiler -- and
simulates training at event fidelity, extrapolating steady-state
iteration time to a full epoch.  *How* an iteration turns gradients into
updated weights is pluggable: the strategy registry
(:mod:`repro.train.strategies`, selected via
``TrainingConfig.strategy``) covers the synchronous P2P/NCCL/parameter-
server reductions, asynchronous parameter-server SGD and the
model-parallel placement estimator behind one result schema.

The direct ``train_async`` / ``train_model_parallel`` entry points are
deprecated (they bypass the registry, the runner cache and the invariant
checks); importing them from this package warns once and keeps working.
Use ``train(TrainingConfig(..., strategy="async-update"))`` /
``strategy="model-parallel"`` instead -- see docs/TRAINING.md.
"""

import warnings

from repro.train.async_trainer import AsyncResult, AsyncTrainer
from repro.train.dataset import SyntheticImageDataset, imagenet_subset
from repro.train.inference import InferenceEstimate, InferenceEstimator
from repro.train.optimizers import ADAM, SGD, SGD_MOMENTUM, OptimizerSpec, available_optimizers, get_optimizer
from repro.train.model_parallel import (
    ModelParallelEstimator,
    ModelParallelPlan,
    ModelParallelResult,
    partition_network,
)
from repro.train.results import AsyncStats, TrainingResult
from repro.train.strategies import (
    ReductionStrategy,
    RecoverySemantics,
    available_strategies,
    get_strategy,
    register_strategy,
    strategy_for,
)
from repro.train.trainer import Trainer, train

__all__ = [
    "ADAM",
    "AsyncResult",
    "AsyncStats",
    "AsyncTrainer",
    "InferenceEstimate",
    "InferenceEstimator",
    "ModelParallelEstimator",
    "ModelParallelPlan",
    "ModelParallelResult",
    "OptimizerSpec",
    "RecoverySemantics",
    "ReductionStrategy",
    "SGD",
    "SGD_MOMENTUM",
    "SyntheticImageDataset",
    "Trainer",
    "TrainingResult",
    "available_optimizers",
    "available_strategies",
    "get_optimizer",
    "get_strategy",
    "imagenet_subset",
    "partition_network",
    "register_strategy",
    "strategy_for",
    "train",
    "train_async",
    "train_model_parallel",
]

#: Deprecated entry points kept importable through a warn-once shim.
_DEPRECATED = ("train_async", "train_model_parallel")
_warned = set()


def __getattr__(name):
    """PEP 562 shim: deprecated entry points warn once, then resolve."""
    if name in _DEPRECATED:
        if name not in _warned:
            _warned.add(name)
            replacement = (
                'strategy="async-update"' if name == "train_async"
                else 'strategy="model-parallel"'
            )
            warnings.warn(
                f"repro.train.{name} is deprecated: run "
                f"train(TrainingConfig(..., {replacement})) through the "
                "strategy registry instead (see docs/TRAINING.md)",
                DeprecationWarning,
                stacklevel=2,
            )
        if name == "train_async":
            from repro.train.async_trainer import train_async
            return train_async
        from repro.train.model_parallel import train_model_parallel
        return train_model_parallel
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
