"""Multi-GPU data-parallel training simulation.

:class:`~repro.train.trainer.Trainer` assembles the whole system -- DGX-1
fabric, V100 devices, kernel cost model, communicator, profiler -- and
simulates synchronous-SGD iterations at event fidelity, extrapolating
steady-state iteration time to a full epoch.
"""

from repro.train.async_trainer import AsyncResult, AsyncTrainer, train_async
from repro.train.dataset import SyntheticImageDataset, imagenet_subset
from repro.train.inference import InferenceEstimate, InferenceEstimator
from repro.train.optimizers import ADAM, SGD, SGD_MOMENTUM, OptimizerSpec, available_optimizers, get_optimizer
from repro.train.model_parallel import (
    ModelParallelEstimator,
    ModelParallelPlan,
    ModelParallelResult,
    partition_network,
    train_model_parallel,
)
from repro.train.results import TrainingResult
from repro.train.trainer import Trainer, train

__all__ = [
    "ADAM",
    "AsyncResult",
    "AsyncTrainer",
    "InferenceEstimate",
    "InferenceEstimator",
    "ModelParallelEstimator",
    "ModelParallelPlan",
    "ModelParallelResult",
    "OptimizerSpec",
    "SGD",
    "SGD_MOMENTUM",
    "SyntheticImageDataset",
    "Trainer",
    "TrainingResult",
    "imagenet_subset",
    "available_optimizers",
    "get_optimizer",
    "partition_network",
    "train",
    "train_async",
    "train_model_parallel",
]
