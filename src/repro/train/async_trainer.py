"""Asynchronous SGD on the simulated DGX-1 (paper Section II-B).

The paper contrasts synchronous SGD with ASGD: each GPU pushes its
gradients to the parameter server and pulls fresh weights *without*
waiting for the other GPUs, eliminating stragglers at the cost of the
**delayed gradient problem** -- by the time a gradient arrives, the server
weights have moved on by however many updates the other workers landed in
between.

The server-model simulation itself lives in the strategy registry
(:class:`~repro.train.strategies.AsyncUpdateStrategy`, registered as
``"async-update"``); :class:`AsyncTrainer` is the thin legacy wrapper
that compiles the network and returns the historical
:class:`AsyncResult` shape.  New code should run
``Trainer(config.with strategy="async-update")`` (or the ``strategies``
experiment) and read :attr:`~repro.train.results.TrainingResult.async_stats`
instead -- see docs/TRAINING.md for the migration notes.

Convergence itself is out of scope for a performance study, but
:attr:`AsyncResult.effective_epoch_time` exposes the standard
linear-staleness penalty model (each unit of mean staleness inflates the
epochs-to-converge proportionally) so examples can show when ASGD's
throughput win survives the statistical cost.  The penalty coefficient is
a documented model input, not a measured quantity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.core.config import SimulationConfig, TrainingConfig
from repro.core.constants import CALIBRATION, CalibrationConstants
from repro.dnn import build_network, compile_network, network_input_shape
from repro.gpu import KernelCostModel, MemoryModel
from repro.gpu.spec import TESLA_V100, GpuSpec

# Re-exported for backwards compatibility; the value lives beside the
# simulation it parameterizes.
from repro.train.strategies import ASYNC_MEASURE_ITERATIONS  # noqa: F401

#: Default linear staleness penalty: epochs-to-converge multiplier is
#: ``1 + coefficient * mean_staleness`` (illustrative model input).
STALENESS_PENALTY_COEFFICIENT = 0.12


@dataclass(frozen=True)
class AsyncResult:
    """Measured behaviour of one asynchronous training run."""

    config: TrainingConfig
    iteration_time: float            # mean per-worker iteration (s)
    epoch_time: float                # wall time for one pass over the data
    images_per_second: float
    staleness_mean: float            # server updates between pull and push
    staleness_max: int
    staleness_samples: Tuple[int, ...]
    server_updates: int

    def effective_epoch_time(
        self, penalty: float = STALENESS_PENALTY_COEFFICIENT
    ) -> float:
        """Epoch time scaled by the linear staleness convergence penalty."""
        return self.epoch_time * (1.0 + penalty * self.staleness_mean)

    def describe(self) -> str:
        return (
            f"{self.config.describe()}[async]: epoch={self.epoch_time:.2f}s "
            f"({self.images_per_second:.0f} img/s, "
            f"staleness mean={self.staleness_mean:.2f} max={self.staleness_max})"
        )


class AsyncTrainer:
    """Thin legacy wrapper over the ``async-update`` strategy.

    Weights live on GPU0.  Each worker (including GPU0's own compute)
    repeatedly pulls the model, computes FP+BP on its mini-batch, and
    pushes gradients back; the server applies each push immediately.
    Transfers ride the same P2P routes as the synchronous ``device``
    KVStore and contend on the NVLink fabric.
    """

    def __init__(
        self,
        config: TrainingConfig,
        sim: SimulationConfig = SimulationConfig(),
        constants: CalibrationConstants = CALIBRATION,
        spec: GpuSpec = TESLA_V100,
        check_memory: bool = True,
        gpu_speed_factors=None,
        checks=None,
    ) -> None:
        self.config = config
        self.gpu_speed_factors = dict(gpu_speed_factors or {})
        #: Accepted for constructor parity with :class:`~repro.train.trainer.Trainer`
        #: so callers can thread one ``CheckEngine`` everywhere; the async
        #: parameter-server path does not run invariant checkpoints yet.
        self.checks = checks
        self.sim = sim
        self.constants = constants
        self.spec = spec
        self.stats = compile_network(
            build_network(config.network), network_input_shape(config.network)
        )
        self.cost_model = KernelCostModel(spec, constants)
        if check_memory:
            MemoryModel(spec, constants).check_fits(
                self.stats, config.batch_size, is_server=config.num_gpus > 1
            )
        self._fwd = self.cost_model.forward_schedule(self.stats, config.batch_size)
        self._bwd = self.cost_model.backward_schedule(self.stats, config.batch_size)

    def run(self) -> AsyncResult:
        """Run the registry's server-model simulation; historical shape."""
        from repro.train.strategies import get_strategy

        measured = get_strategy("async-update").simulate(self)
        return AsyncResult(
            config=self.config,
            iteration_time=measured.iteration_time,
            epoch_time=measured.epoch_time,
            images_per_second=measured.images_per_second,
            staleness_mean=measured.stats.staleness_mean,
            staleness_max=measured.stats.staleness_max,
            staleness_samples=measured.stats.staleness_samples,
            server_updates=measured.stats.server_updates,
        )


def train_async(
    config: TrainingConfig,
    sim: SimulationConfig = SimulationConfig(),
    constants: CalibrationConstants = CALIBRATION,
    **kwargs,
) -> AsyncResult:
    """Convenience wrapper mirroring :func:`repro.train.train`."""
    return AsyncTrainer(config, sim=sim, constants=constants, **kwargs).run()
