"""Asynchronous SGD on the simulated DGX-1 (paper Section II-B).

The paper contrasts synchronous SGD with ASGD: each GPU pushes its
gradients to the parameter server and pulls fresh weights *without*
waiting for the other GPUs, eliminating stragglers at the cost of the
**delayed gradient problem** -- by the time a gradient arrives, the server
weights have moved on by however many updates the other workers landed in
between.

:class:`AsyncTrainer` simulates this execution: per-GPU loops of
pull -> FP -> BP -> push over the real fabric (P2P routes, contention and
all), a server update per arriving push, and staleness accounting.  The
result quantifies the paper's qualitative trade-off: higher hardware
throughput, staleness growing with GPU count.

Convergence itself is out of scope for a performance study, but
:attr:`AsyncResult.effective_epoch_time` exposes the standard
linear-staleness penalty model (each unit of mean staleness inflates the
epochs-to-converge proportionally) so examples can show when ASGD's
throughput win survives the statistical cost.  The penalty coefficient is
a documented model input, not a measured quantity.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Tuple

from repro.core.config import SimulationConfig, TrainingConfig
from repro.core.constants import CALIBRATION, CalibrationConstants
from repro.dnn import build_network, compile_network, network_input_shape
from repro.gpu import GpuDevice, KernelCostModel, MemoryModel
from repro.gpu.kernel import KernelSpec
from repro.gpu.spec import TESLA_V100, GpuSpec
from repro.profile import Profiler
from repro.sim import Environment
from repro.sim.events import Event
from repro.topology import Fabric, Router, build_dgx1v

#: Per-iteration count each worker executes in the simulation window.
ASYNC_MEASURE_ITERATIONS = 4

#: Default linear staleness penalty: epochs-to-converge multiplier is
#: ``1 + coefficient * mean_staleness`` (illustrative model input).
STALENESS_PENALTY_COEFFICIENT = 0.12


@dataclass(frozen=True)
class AsyncResult:
    """Measured behaviour of one asynchronous training run."""

    config: TrainingConfig
    iteration_time: float            # mean per-worker iteration (s)
    epoch_time: float                # wall time for one pass over the data
    images_per_second: float
    staleness_mean: float            # server updates between pull and push
    staleness_max: int
    staleness_samples: Tuple[int, ...]
    server_updates: int

    def effective_epoch_time(
        self, penalty: float = STALENESS_PENALTY_COEFFICIENT
    ) -> float:
        """Epoch time scaled by the linear staleness convergence penalty."""
        return self.epoch_time * (1.0 + penalty * self.staleness_mean)

    def describe(self) -> str:
        return (
            f"{self.config.describe()}[async]: epoch={self.epoch_time:.2f}s "
            f"({self.images_per_second:.0f} img/s, "
            f"staleness mean={self.staleness_mean:.2f} max={self.staleness_max})"
        )


class AsyncTrainer:
    """Simulates asynchronous parameter-server SGD.

    Weights live on GPU0.  Each worker (including GPU0's own compute)
    repeatedly pulls the model, computes FP+BP on its mini-batch, and
    pushes gradients back; the server applies each push immediately.
    Transfers ride the same P2P routes as the synchronous ``device``
    KVStore and contend on the NVLink fabric.
    """

    def __init__(
        self,
        config: TrainingConfig,
        sim: SimulationConfig = SimulationConfig(),
        constants: CalibrationConstants = CALIBRATION,
        spec: GpuSpec = TESLA_V100,
        check_memory: bool = True,
        gpu_speed_factors=None,
        checks=None,
    ) -> None:
        self.config = config
        self.gpu_speed_factors = dict(gpu_speed_factors or {})
        #: Accepted for constructor parity with :class:`~repro.train.trainer.Trainer`
        #: so callers can thread one ``CheckEngine`` everywhere; the async
        #: parameter-server path does not run invariant checkpoints yet.
        self.checks = checks
        self.sim = sim
        self.constants = constants
        self.spec = spec
        self.stats = compile_network(
            build_network(config.network), network_input_shape(config.network)
        )
        self.cost_model = KernelCostModel(spec, constants)
        if check_memory:
            MemoryModel(spec, constants).check_fits(
                self.stats, config.batch_size, is_server=config.num_gpus > 1
            )
        self._fwd = self.cost_model.forward_schedule(self.stats, config.batch_size)
        self._bwd = self.cost_model.backward_schedule(self.stats, config.batch_size)

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def run(self) -> AsyncResult:
        env = Environment()
        topology = build_dgx1v()
        fabric = Fabric(env, topology, self.constants)
        router = Router(topology)
        devices = [
            GpuDevice(env, topology.gpu(i), self.spec,
                      speed_factor=self.gpu_speed_factors.get(i, 1.0))
            for i in range(self.config.num_gpus)
        ]

        state = _ServerState()
        iterations = self.sim.warmup_iterations + ASYNC_MEASURE_ITERATIONS
        workers = [
            env.process(
                self._worker(env, fabric, router, devices, pos, state, iterations)
            )
            for pos in range(len(devices))
        ]
        env.run(until=env.all_of(workers))

        measured = [
            t for pos, it, t in state.iteration_records
            if it >= self.sim.warmup_iterations
        ]
        staleness = tuple(
            s for pos, it, s in state.staleness_records
            if it >= self.sim.warmup_iterations
        )
        mean_iteration = statistics.mean(measured)
        # Workers proceed independently: aggregate throughput is the sum of
        # per-worker rates.
        images_per_second = sum(
            self.config.batch_size / t for t in measured
        ) / max(1, len(measured)) * self.config.num_gpus
        epoch_time = (
            self.config.total_images / images_per_second
            + self.constants.run_startup_overhead
        )
        return AsyncResult(
            config=self.config,
            iteration_time=mean_iteration,
            epoch_time=epoch_time,
            images_per_second=images_per_second,
            staleness_mean=statistics.mean(staleness) if staleness else 0.0,
            staleness_max=max(staleness) if staleness else 0,
            staleness_samples=staleness,
            server_updates=state.version,
        )

    # ------------------------------------------------------------------
    # Worker process
    # ------------------------------------------------------------------
    def _worker(
        self,
        env: Environment,
        fabric: Fabric,
        router: Router,
        devices: List[GpuDevice],
        pos: int,
        state: "_ServerState",
        iterations: int,
    ) -> Generator[Event, None, None]:
        c = self.constants
        dev = devices[pos]
        server = devices[0]
        model_bytes = self.stats.model_bytes
        for iteration in range(iterations):
            start = env.now
            # Pull the current weights from the server.
            version_seen = state.version
            if pos != 0:
                route = router.gpu_to_gpu(
                    fabric.topology.gpu(server.index), fabric.topology.gpu(dev.index)
                )
                yield env.timeout(c.p2p_copy_setup)
                yield from fabric.pipelined_transfer(route, model_bytes, 4 * 2**20)
            # Compute FP + BP.
            yield env.timeout(
                c.input_pipeline_residual
                + c.input_cost_per_image * self.config.batch_size
            )
            for kernel in self._fwd:
                yield env.process(dev.run_kernel(kernel))
            for _, kernels in self._bwd:
                for kernel in kernels:
                    yield env.process(dev.run_kernel(kernel))
            # Push gradients; the server updates immediately on arrival.
            if pos != 0:
                route = router.gpu_to_gpu(
                    fabric.topology.gpu(dev.index), fabric.topology.gpu(server.index)
                )
                yield env.timeout(c.p2p_copy_setup)
                yield from fabric.pipelined_transfer(route, model_bytes, 4 * 2**20)
            yield env.process(server.run_kernel(self._update_kernel()))
            staleness = state.version - version_seen
            state.version += 1
            state.staleness_records.append((pos, iteration, staleness))
            state.iteration_records.append((pos, iteration, env.now - start))
            yield env.timeout(c.stream_sync_overhead)

    def _update_kernel(self) -> KernelSpec:
        numel = self.stats.total_params
        nbytes = self.stats.model_bytes
        return KernelSpec(
            name="asgd_update",
            layer="@server",
            stage="wu",
            duration=self.cost_model.kernel_time(4.0 * numel, 5 * nbytes, False),
            flops=4.0 * numel,
            bytes_moved=5 * nbytes,
        )


class _ServerState:
    """Mutable server-side bookkeeping shared by worker processes."""

    def __init__(self) -> None:
        self.version = 0
        self.staleness_records: List[Tuple[int, int, int]] = []
        self.iteration_records: List[Tuple[int, int, float]] = []


def train_async(
    config: TrainingConfig,
    sim: SimulationConfig = SimulationConfig(),
    constants: CalibrationConstants = CALIBRATION,
    **kwargs,
) -> AsyncResult:
    """Convenience wrapper mirroring :func:`repro.train.train`."""
    return AsyncTrainer(config, sim=sim, constants=constants, **kwargs).run()
