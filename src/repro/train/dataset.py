"""Synthetic dataset descriptors.

The paper trains on a 256K-image ImageNet subset.  Pixel values never
influence time or memory, so the dataset is described by image count and
shape only; :meth:`SyntheticImageDataset.batches` yields the mini-batch
sizes an epoch processes (the trailing batch may be short).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.core.errors import ConfigurationError
from repro.dnn.shapes import Shape
from repro.dnn.stats import DTYPE_BYTES


@dataclass(frozen=True)
class SyntheticImageDataset:
    """A dataset of ``num_images`` images of ``image_shape`` each."""

    name: str
    num_images: int
    image_shape: Shape

    def __post_init__(self) -> None:
        if self.num_images < 1:
            raise ConfigurationError("dataset needs at least one image")

    @property
    def bytes_per_image(self) -> int:
        return self.image_shape.numel * DTYPE_BYTES

    @property
    def total_bytes(self) -> int:
        return self.num_images * self.bytes_per_image

    def batches(self, global_batch_size: int) -> Iterator[int]:
        """Mini-batch sizes for one epoch."""
        if global_batch_size < 1:
            raise ConfigurationError("batch size must be positive")
        remaining = self.num_images
        while remaining > 0:
            size = min(global_batch_size, remaining)
            yield size
            remaining -= size

    def num_batches(self, global_batch_size: int) -> int:
        return -(-self.num_images // global_batch_size)

    def scaled(self, factor: int) -> "SyntheticImageDataset":
        """A weak-scaling variant with ``factor`` times the images."""
        return SyntheticImageDataset(
            name=f"{self.name}-x{factor}",
            num_images=self.num_images * factor,
            image_shape=self.image_shape,
        )


def imagenet_subset(num_images: int, image_shape: Shape) -> SyntheticImageDataset:
    """The paper's ImageNet subset, resized for the target network."""
    return SyntheticImageDataset(
        name="imagenet-subset",
        num_images=num_images,
        image_shape=image_shape,
    )
