"""Model-parallel training estimation (paper Section I / II-B).

The paper motivates its data-parallel focus by the classic trade-off:
*model parallelism* suits networks dominated by fully connected layers
(huge weights, small activations at layer boundaries), *data parallelism*
suits convolutional networks (small weights, huge activations).  This
module makes that trade-off measurable on the simulated DGX-1.

The network's layers are partitioned into contiguous segments (balanced by
forward FLOPs), one per GPU, in the style of 2012-era model parallelism:

* FP: each segment computes, then DMAs every tensor crossing the boundary
  to the next GPU (batch-scaled);
* BP: the reverse flow with activation gradients;
* WU: purely local -- each GPU owns its segment's weights, so *no gradient
  synchronization happens at all*, which is exactly why MP can win for
  AlexNet's 236 MB of FC weights;
* optional microbatch pipelining overlaps segments GPipe-style.

The estimator is analytic (no event simulation): with a single stream per
boundary there is no contention to resolve, and the pipeline algebra is
exact.  Costs reuse the same kernel and link models as the event-driven
trainer, so DP-vs-MP comparisons are apples to apples.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import TrainingConfig
from repro.core.constants import CALIBRATION, CalibrationConstants
from repro.core.errors import ConfigurationError
from repro.dnn import build_network, compile_network, network_input_shape
from repro.dnn.network import INPUT, Network
from repro.dnn.shapes import Shape
from repro.dnn.stats import DTYPE_BYTES, NetworkStats
from repro.gpu import KernelCostModel
from repro.gpu.spec import TESLA_V100, GpuSpec
from repro.topology import Router, build_dgx1v


@dataclass(frozen=True)
class ModelParallelPlan:
    """A contiguous partition of a network across GPUs."""

    network_name: str
    num_gpus: int
    #: segment index of each layer, in topological order.
    assignment: Tuple[int, ...]
    #: per-boundary crossing bytes per sample (boundary i = seg i -> i+1).
    boundary_bytes: Tuple[int, ...]
    #: per-segment forward FLOPs per sample.
    segment_fwd_flops: Tuple[float, ...]
    #: per-segment backward FLOPs per sample.
    segment_bwd_flops: Tuple[float, ...]
    #: per-segment parameter counts.
    segment_params: Tuple[int, ...]

    @property
    def balance(self) -> float:
        """max/mean forward FLOPs across segments (1.0 = perfect)."""
        mean = sum(self.segment_fwd_flops) / len(self.segment_fwd_flops)
        return max(self.segment_fwd_flops) / mean if mean else 1.0


def partition_network(
    network: Network, stats: NetworkStats, num_gpus: int
) -> ModelParallelPlan:
    """Split layers into ``num_gpus`` contiguous FLOP-balanced segments."""
    if num_gpus < 1:
        raise ConfigurationError("num_gpus must be positive")
    layers = stats.layers
    if num_gpus > len(layers):
        raise ConfigurationError(
            f"cannot split {len(layers)} layers across {num_gpus} GPUs"
        )
    # Cut at FLOP quantiles (a small epsilon keeps zero-FLOP layers
    # countable), then repair the cuts so every segment is non-empty.
    weights = [l.forward_flops + 1.0 for l in layers]
    total = sum(weights)
    prefix: List[float] = []
    acc = 0.0
    for w in weights:
        acc += w
        prefix.append(acc)
    cuts: List[int] = []
    for k in range(1, num_gpus):
        cuts.append(bisect.bisect_left(prefix, k * total / num_gpus) + 1)
    for k in range(len(cuts)):
        lower = (cuts[k - 1] + 1) if k else 1
        upper = len(layers) - (num_gpus - 1 - k)
        cuts[k] = min(max(cuts[k], lower), upper)
    assignment = [sum(1 for c in cuts if c <= i) for i in range(len(layers))]
    # Boundary traffic: every producer in segment <= b consumed beyond b.
    seg_of = {name: assignment[i] for i, name in enumerate(network.layer_names)}
    seg_of[INPUT] = 0
    boundary = [0] * max(0, num_gpus - 1)
    out_numel = {l.name: l.output_numel for l in layers}
    for name, node in network.nodes():
        for src in node.inputs:
            if src == INPUT:
                continue
            lo, hi = seg_of[src], seg_of[name]
            if hi > lo:
                for b in range(lo, hi):
                    boundary[b] += out_numel[src] * DTYPE_BYTES
    fwd = [0.0] * num_gpus
    bwd = [0.0] * num_gpus
    params = [0] * num_gpus
    for i, layer in enumerate(layers):
        fwd[assignment[i]] += layer.forward_flops
        bwd[assignment[i]] += layer.backward_flops
        params[assignment[i]] += layer.param_numel
    return ModelParallelPlan(
        network_name=stats.name,
        num_gpus=num_gpus,
        assignment=tuple(assignment),
        boundary_bytes=tuple(boundary),
        segment_fwd_flops=tuple(fwd),
        segment_bwd_flops=tuple(bwd),
        segment_params=tuple(params),
    )


@dataclass(frozen=True)
class ModelParallelResult:
    """Estimated behaviour of one model-parallel configuration."""

    config: TrainingConfig
    plan: ModelParallelPlan
    iteration_time: float
    epoch_time: float
    images_per_second: float
    communication_bytes_per_iteration: int
    pipeline_microbatches: int

    def describe(self) -> str:
        return (
            f"{self.config.describe()}[model-parallel x{self.pipeline_microbatches}]: "
            f"epoch={self.epoch_time:.2f}s ({self.images_per_second:.0f} img/s, "
            f"balance={self.plan.balance:.2f})"
        )


class ModelParallelEstimator:
    """Analytic cost model for layer-split training on the DGX-1."""

    def __init__(
        self,
        config: TrainingConfig,
        constants: CalibrationConstants = CALIBRATION,
        spec: GpuSpec = TESLA_V100,
        network: Optional[Network] = None,
        input_shape: Optional[Shape] = None,
        pipeline_microbatches: int = 1,
    ) -> None:
        if pipeline_microbatches < 1:
            raise ConfigurationError("pipeline_microbatches must be >= 1")
        if config.batch_size % pipeline_microbatches:
            raise ConfigurationError(
                "pipeline_microbatches must divide the batch size"
            )
        self.config = config
        self.constants = constants
        self.pipeline_microbatches = pipeline_microbatches
        self.cost_model = KernelCostModel(spec, constants)
        if network is None:
            network = build_network(config.network)
            input_shape = network_input_shape(config.network)
        elif input_shape is None:
            raise ConfigurationError("a custom network needs an input_shape")
        self.network = network
        self.stats = compile_network(network, input_shape)
        self.plan = partition_network(self.network, self.stats, config.num_gpus)
        self._router = Router(build_dgx1v())

    # ------------------------------------------------------------------
    # Cost components
    # ------------------------------------------------------------------
    def _segment_compute(self, micro_batch: int) -> List[float]:
        """Per-segment FP+BP time for one microbatch."""
        times = [0.0] * self.plan.num_gpus
        layers = self.stats.layers
        for i, layer in enumerate(layers):
            seg = self.plan.assignment[i]
            fwd = self.cost_model.forward_kernels(layer, micro_batch)
            bwd = self.cost_model.backward_kernels(layer, micro_batch)
            times[seg] += sum(k.duration for k in fwd)
            times[seg] += sum(k.duration for k in bwd)
        return times

    def _boundary_times(self, micro_batch: int) -> List[float]:
        """Per-boundary transfer time (forward + backward) per microbatch."""
        topo = self._router.topology
        times = []
        for b, crossing in enumerate(self.plan.boundary_bytes):
            route = self._router.gpu_to_gpu(topo.gpu(b), topo.gpu(b + 1))
            nbytes = crossing * micro_batch
            one_way = (
                self.constants.p2p_copy_setup
                + route.serialized_time(nbytes, self.constants)
            )
            times.append(2.0 * one_way)  # activations forward + grads back
        return times

    def _local_update_time(self) -> float:
        """The slowest segment's local SGD update (runs in parallel)."""
        worst = 0.0
        for numel in self.plan.segment_params:
            if numel:
                worst = max(
                    worst,
                    self.cost_model.kernel_time(
                        4.0 * numel, 5 * numel * DTYPE_BYTES, matmul=False
                    ),
                )
        return worst

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------
    def run(self) -> ModelParallelResult:
        m = self.pipeline_microbatches
        micro = self.config.batch_size // m
        compute = self._segment_compute(micro)
        boundaries = self._boundary_times(micro)
        # One microbatch traverses every stage and boundary once (FP+BP
        # folded together); with m microbatches the pipeline adds m-1
        # repeats of the slowest stage.
        stage_times = list(compute)
        for b, t in enumerate(boundaries):
            stage_times[b] += t  # charge the boundary to its producer side
        path = sum(stage_times)
        steady = max(stage_times) if stage_times else 0.0
        iteration = (
            path
            + (m - 1) * steady
            + self._local_update_time()
            + self.constants.framework_iteration_overhead
            + self.plan.num_gpus * self.constants.stream_sync_overhead
            + self.constants.input_pipeline_residual
            + self.constants.input_cost_per_image * self.config.batch_size
        )
        # Model parallelism processes the *global* batch once per iteration
        # (the batch is not split across GPUs).
        iterations = -(-self.config.total_images // self.config.batch_size)
        epoch = iterations * iteration + self.constants.run_startup_overhead
        comm_bytes = sum(self.plan.boundary_bytes) * self.config.batch_size * 2
        return ModelParallelResult(
            config=self.config,
            plan=self.plan,
            iteration_time=iteration,
            epoch_time=epoch,
            images_per_second=self.config.total_images / epoch,
            communication_bytes_per_iteration=comm_bytes,
            pipeline_microbatches=m,
        )


def train_model_parallel(
    config: TrainingConfig,
    pipeline_microbatches: int = 1,
    **kwargs,
) -> ModelParallelResult:
    """Convenience wrapper mirroring :func:`repro.train.train`."""
    return ModelParallelEstimator(
        config, pipeline_microbatches=pipeline_microbatches, **kwargs
    ).run()
