"""Deterministic fault injection and resilience modeling.

The package splits into four layers:

- :mod:`repro.faults.plan` -- declarative, frozen fault scenarios
  (:class:`FaultPlan`) with seeded expansion (:meth:`FaultPlan.random`);
- :mod:`repro.faults.injector` -- point-in-time queries over a plan
  (:class:`FaultInjector`), consumed at fault-segment boundaries;
- :mod:`repro.faults.view` -- degraded :class:`SystemTopology` views over
  which routing and NCCL ring construction recompute naturally;
- :mod:`repro.faults.recovery` -- recovery-cost models and the
  :class:`FaultSummary` report attached to training results.

Everything is deterministic: no wall clock, no global RNG, and every
type fingerprints into the persistent sweep cache.
"""

from repro.faults.injector import EccModel, FaultInjector
from repro.faults.plan import (
    CrashFault,
    EccFault,
    FaultPlan,
    LinkFault,
    NodeCrashFault,
    NodeStragglerFault,
    RailFault,
    RecoveryCosts,
    ResiliencePolicy,
    SlowdownProfile,
    StragglerFault,
)
from repro.faults.recovery import (
    FaultSummary,
    SegmentReport,
    checkpoint_write_cost,
    crash_recovery_cost,
)
from repro.faults.view import MIN_HOST_SCALE, degraded_topology

__all__ = [
    "CrashFault",
    "EccFault",
    "EccModel",
    "FaultInjector",
    "FaultPlan",
    "FaultSummary",
    "LinkFault",
    "MIN_HOST_SCALE",
    "NodeCrashFault",
    "NodeStragglerFault",
    "RailFault",
    "RecoveryCosts",
    "ResiliencePolicy",
    "SegmentReport",
    "SlowdownProfile",
    "StragglerFault",
    "checkpoint_write_cost",
    "crash_recovery_cost",
    "degraded_topology",
]
