"""Degraded-topology views: the surviving interconnect at a point in time.

:func:`degraded_topology` rebuilds a :class:`~repro.topology.system.SystemTopology`
with failed links removed and degraded links' lane bandwidth scaled, so
routing (:class:`~repro.topology.routing.Router`) and NCCL ring/tree
construction (:mod:`repro.comm.nccl.rings`, :mod:`repro.topology.trees`)
recompute naturally over the surviving graph -- no special-casing in the
consumers, exactly as real NCCL re-rings after ``ncclCommInitRank`` on a
machine with a dead NVLink bridge.

Only NVLink carries outright failures: the PCIe/QPI/host fabric is the
fallback path and must stay connected (a machine whose PCIe tree is gone
cannot run at all), so non-NVLink faults degrade bandwidth but are
floored at :data:`MIN_HOST_SCALE`.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

from repro.topology.links import PEAK_BANDWIDTH, Link, LinkType
from repro.topology.system import SystemTopology

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector

#: Non-NVLink links never degrade below this fraction of peak.
MIN_HOST_SCALE = 0.01


def _scaled_link(link: Link, scale: float) -> Link:
    per_lane = (
        link.lane_bandwidth
        if link.lane_bandwidth is not None
        else PEAK_BANDWIDTH[link.link_type]
    )
    return dataclasses.replace(link, lane_bandwidth=per_lane * scale)


def degraded_topology(
    topology: SystemTopology, injector: "FaultInjector", now: float
) -> SystemTopology:
    """The surviving topology under ``injector``'s faults at time ``now``.

    Returns ``topology`` itself (same object) when no link fault is
    active, so the healthy path never pays a rebuild.  Degraded links
    keep their canonical name (names encode endpoints/type/width, not
    bandwidth), which keeps profiler link counters continuous across a
    degradation.
    """
    if not injector.degrades_links(now):
        return topology

    links = []
    for link in topology.links:
        scale = injector.link_scale(link.name, now)
        if scale >= 1.0:
            links.append(link)
        elif link.link_type is LinkType.NVLINK:
            if scale > 0.0:
                links.append(_scaled_link(link, scale))
            # scale == 0: the link is down -- drop it from the graph.
        else:
            links.append(_scaled_link(link, max(scale, MIN_HOST_SCALE)))
    return SystemTopology(f"{topology.name}@faulted", topology.nodes, links)
