"""Declarative, deterministic fault scenarios.

A :class:`FaultPlan` is plain frozen data describing every degradation a
simulated training run suffers: link faults (NVLink bandwidth loss or
outright failure), GPU stragglers (time-varying slowdown multipliers),
ECC-retry storms (latency adders on memory-bound kernels) and worker
crashes, plus the :class:`ResiliencePolicy` applied when a worker drops
and the :class:`RecoveryCosts` the resilience machinery charges.

The cluster tier (docs/SCALING.md) adds three node-scale primitives:
:class:`RailFault` (an InfiniBand NIC/HCA failing or degrading, with
until-based recovery -- a failed rail re-rails its shard traffic onto the
survivors), :class:`NodeStragglerFault` (a whole chassis running slow)
and :class:`NodeCrashFault` (a chassis dropping out, recovered at node
granularity under SHRINK / CHECKPOINT_RESTART).  These compose with the
intra-node primitives; :meth:`FaultPlan.analytic_conflict` decides
whether the representative-node analytic fast path can still represent
the plan (see docs/SCALING.md's validity envelope).

Plans carry no randomness at execution time: two runs of the same plan
are bit-identical, plans hash into the persistent sweep cache through
:func:`repro.runner.fingerprint.canonical`, and the *only* place a seed
appears is :meth:`FaultPlan.random`, which deterministically expands a
seed into an explicit plan (same seed, same plan -- forever).

Times (``at`` / ``until``) are seconds on the simulated *epoch* timeline;
crash points are epoch iteration indices, matching how elastic training
systems observe failures (between steps).
"""

from __future__ import annotations

import bisect
import enum
import math
import random
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.core.errors import FaultPlanError

_INF = float("inf")


class ResiliencePolicy(str, enum.Enum):
    """What a training run does when a worker GPU crashes.

    ``FAIL_FAST`` aborts the run (raises
    :class:`~repro.core.errors.WorkerCrashError`); ``SHRINK`` re-rings the
    survivors and finishes the epoch on N-1 GPUs (elastic training);
    ``CHECKPOINT_RESTART`` restores the last periodic checkpoint, replays
    the lost iterations, and continues at full width.
    """

    FAIL_FAST = "fail-fast"
    SHRINK = "shrink"
    CHECKPOINT_RESTART = "checkpoint-restart"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class RecoveryCosts:
    """Modeled wall-clock costs of resilience machinery, in seconds.

    Defaults are DGX-scale: an ``ncclCommInitRank`` over 8 ranks is
    sub-second, route recomputation is host-side bookkeeping, draining
    in-flight state for an elastic shrink takes a couple of seconds, a
    multi-GB checkpoint to local NVMe costs seconds, and a full worker
    restart (process spawn, CUDA context, NCCL reinit, input pipeline
    warm-up) dominates at ~30 s.
    """

    ring_rebuild: float = 0.75        # NCCL communicator re-init
    route_recompute: float = 0.05     # host-side route/table rebuild
    shrink_drain: float = 1.5         # drain + re-shard for SHRINK
    checkpoint_write: float = 2.0     # one periodic checkpoint write
    checkpoint_interval: int = 200    # iterations between checkpoints
    restart_overhead: float = 30.0    # worker restart for CHECKPOINT_RESTART

    def __post_init__(self) -> None:
        for name in ("ring_rebuild", "route_recompute", "shrink_drain",
                     "checkpoint_write", "restart_overhead"):
            if getattr(self, name) < 0:
                raise FaultPlanError(f"{name} must be >= 0")
        if self.checkpoint_interval < 1:
            raise FaultPlanError("checkpoint_interval must be >= 1")


@dataclass(frozen=True)
class SlowdownProfile:
    """A piecewise-constant kernel-duration multiplier over simulated time.

    ``steps`` is an ascending sequence of ``(start_time, factor)`` pairs;
    the first step must start at 0.  Generalizes the scalar straggler
    knob: a plain float is the single-step profile.

    >>> p = SlowdownProfile(steps=((0.0, 1.0), (2.0, 1.8)))
    >>> p.at(1.0), p.at(2.0), p.at(99.0)
    (1.0, 1.8, 1.8)
    """

    steps: Tuple[Tuple[float, float], ...]

    def __post_init__(self) -> None:
        if not self.steps:
            raise FaultPlanError("a slowdown profile needs at least one step")
        if self.steps[0][0] != 0.0:
            raise FaultPlanError("the first profile step must start at t=0")
        last = -_INF
        for when, factor in self.steps:
            if when <= last:
                raise FaultPlanError("profile step times must be ascending")
            if factor <= 0:
                raise FaultPlanError("slowdown factors must be positive")
            last = when
        object.__setattr__(
            self, "_times", tuple(when for when, _ in self.steps)
        )

    def at(self, now: float) -> float:
        """The multiplier in effect at simulated time ``now``."""
        index = bisect.bisect_right(self._times, now) - 1
        return self.steps[max(index, 0)][1]

    def scaled(self, factor: float) -> "SlowdownProfile":
        """This profile with every step multiplied by ``factor``."""
        if factor == 1.0:
            return self
        return SlowdownProfile(
            steps=tuple((when, f * factor) for when, f in self.steps)
        )

    @property
    def peak(self) -> float:
        return max(f for _, f in self.steps)


def _check_window(at: float, until: float, what: str) -> None:
    if at < 0 or math.isnan(at):
        raise FaultPlanError(f"{what}: activation time must be >= 0")
    if until <= at:
        raise FaultPlanError(f"{what}: until must be after at")


@dataclass(frozen=True)
class LinkFault:
    """One physical link degrading (or failing) at a point in time.

    ``bandwidth_scale`` multiplies the link's per-lane bandwidth while the
    fault is active; 0 is an outright failure -- the link disappears from
    the routable topology and NCCL must re-ring over the survivors.
    """

    link: str                       # canonical link name (Link.name)
    at: float = 0.0
    bandwidth_scale: float = 0.0
    until: float = _INF

    def __post_init__(self) -> None:
        _check_window(self.at, self.until, f"link fault on {self.link}")
        if not 0.0 <= self.bandwidth_scale < 1.0:
            raise FaultPlanError(
                "bandwidth_scale must be in [0, 1) -- 1.0 would be a no-op"
            )

    @property
    def is_failure(self) -> bool:
        return self.bandwidth_scale == 0.0

    def label(self) -> str:
        mode = "down" if self.is_failure else f"x{self.bandwidth_scale:g}"
        return f"link:{self.link}:{mode}@{self.at:g}s"


@dataclass(frozen=True)
class StragglerFault:
    """One GPU running slow (thermal throttle, preemption, noisy neighbor)."""

    gpu: int
    factor: float                   # kernel-duration multiplier, > 1 = slower
    at: float = 0.0
    until: float = _INF

    def __post_init__(self) -> None:
        _check_window(self.at, self.until, f"straggler on gpu{self.gpu}")
        if self.gpu < 0:
            raise FaultPlanError("straggler gpu index must be >= 0")
        if self.factor <= 0:
            raise FaultPlanError("straggler factor must be positive")

    def label(self) -> str:
        return f"straggler:gpu{self.gpu}:x{self.factor:g}@{self.at:g}s"


@dataclass(frozen=True)
class EccFault:
    """ECC-retry latency on one GPU's memory-bound kernels.

    While active, every kernel whose arithmetic intensity (FLOPs per byte
    moved) falls below ``intensity_ridge`` pays ``retry_latency`` extra
    seconds -- the DRAM-retry penalty of a GPU developing correctable ECC
    errors, which taxes memory-bound weight updates far more than
    compute-bound convolutions.
    """

    gpu: int
    retry_latency: float = 20e-6
    at: float = 0.0
    until: float = _INF
    intensity_ridge: float = 8.0    # FLOPs/byte below which a kernel is memory-bound

    def __post_init__(self) -> None:
        _check_window(self.at, self.until, f"ecc fault on gpu{self.gpu}")
        if self.gpu < 0:
            raise FaultPlanError("ecc gpu index must be >= 0")
        if self.retry_latency <= 0:
            raise FaultPlanError("retry_latency must be positive")
        if self.intensity_ridge <= 0:
            raise FaultPlanError("intensity_ridge must be positive")

    def label(self) -> str:
        return f"ecc:gpu{self.gpu}:{self.retry_latency * 1e6:g}us@{self.at:g}s"


@dataclass(frozen=True)
class CrashFault:
    """A worker GPU dropping out at an epoch iteration boundary."""

    gpu: int
    at_iteration: int

    def __post_init__(self) -> None:
        if self.gpu < 0:
            raise FaultPlanError("crash gpu index must be >= 0")
        if self.at_iteration < 1:
            raise FaultPlanError("crashes happen at iteration >= 1")

    def label(self) -> str:
        return f"crash:gpu{self.gpu}@iter{self.at_iteration}"


@dataclass(frozen=True)
class RailFault:
    """One node's InfiniBand rail (NIC/HCA) failing or degrading.

    ``bandwidth_scale`` multiplies the rail's bandwidth while the fault is
    active; 0 is an outright NIC failure.  The hierarchical collective's
    inter-node rings are rail-global -- every node's rail-*r* HCA is a hop
    on the rail-*r* ring -- so one node's dead NIC takes the whole rail
    ring down and its shard traffic re-rails onto the surviving rails,
    while a degraded NIC paces its ring at the degraded bandwidth (the
    ring moves at its slowest member).  See docs/FAULTS.md.
    """

    node: int                       # chassis whose HCA is faulty
    rail: int                       # rail index, 0 <= rail < rails_per_node
    at: float = 0.0
    bandwidth_scale: float = 0.0
    until: float = _INF

    def __post_init__(self) -> None:
        what = f"rail fault on n{self.node}r{self.rail}"
        _check_window(self.at, self.until, what)
        if self.node < 0:
            raise FaultPlanError("rail fault node index must be >= 0")
        if self.rail < 0:
            raise FaultPlanError("rail index must be >= 0")
        if not 0.0 <= self.bandwidth_scale < 1.0:
            raise FaultPlanError(
                "bandwidth_scale must be in [0, 1) -- 1.0 would be a no-op"
            )

    @property
    def is_failure(self) -> bool:
        return self.bandwidth_scale == 0.0

    def label(self) -> str:
        mode = "down" if self.is_failure else f"x{self.bandwidth_scale:g}"
        return f"rail:n{self.node}r{self.rail}:{mode}@{self.at:g}s"


@dataclass(frozen=True)
class NodeStragglerFault:
    """A whole chassis running slow (shared PSU derate, host contention).

    Every GPU of ``node`` pays the multiplier; it compounds with per-GPU
    :class:`StragglerFault` entries on the same ranks.
    """

    node: int
    factor: float                   # kernel-duration multiplier, > 1 = slower
    at: float = 0.0
    until: float = _INF

    def __post_init__(self) -> None:
        _check_window(self.at, self.until, f"node straggler on n{self.node}")
        if self.node < 0:
            raise FaultPlanError("node straggler index must be >= 0")
        if self.factor <= 0:
            raise FaultPlanError("node straggler factor must be positive")

    def label(self) -> str:
        return f"node-straggler:n{self.node}:x{self.factor:g}@{self.at:g}s"


@dataclass(frozen=True)
class NodeCrashFault:
    """A whole chassis dropping out at an epoch iteration boundary.

    Node crashes recover at node granularity: ``SHRINK`` removes all of
    the node's GPUs and re-ranks the survivors densely (elastic
    training), ``CHECKPOINT_RESTART`` restores full width after replaying
    from the last checkpoint, ``FAIL_FAST`` aborts.
    """

    node: int
    at_iteration: int

    def __post_init__(self) -> None:
        if self.node < 0:
            raise FaultPlanError("crash node index must be >= 0")
        if self.at_iteration < 1:
            raise FaultPlanError("crashes happen at iteration >= 1")

    def label(self) -> str:
        return f"node-crash:n{self.node}@iter{self.at_iteration}"


@dataclass(frozen=True)
class FaultPlan:
    """The complete fault scenario of one training run.

    >>> plan = FaultPlan(
    ...     link_faults=(LinkFault("gpu0<->gpu1:nvlinkx1", at=5.0),),
    ...     stragglers=(StragglerFault(gpu=2, factor=1.5),),
    ... )
    >>> plan.empty
    False
    >>> sorted(plan.boundaries())
    [5.0]
    """

    link_faults: Tuple[LinkFault, ...] = ()
    stragglers: Tuple[StragglerFault, ...] = ()
    ecc_faults: Tuple[EccFault, ...] = ()
    crashes: Tuple[CrashFault, ...] = ()
    policy: ResiliencePolicy = ResiliencePolicy.FAIL_FAST
    costs: RecoveryCosts = field(default_factory=RecoveryCosts)
    description: str = ""
    rail_faults: Tuple[RailFault, ...] = ()
    node_stragglers: Tuple[NodeStragglerFault, ...] = ()
    node_crashes: Tuple[NodeCrashFault, ...] = ()

    def __post_init__(self) -> None:
        if len(self.crashes) + len(self.node_crashes) > 1:
            raise FaultPlanError(
                "the recovery model handles at most one crash per run"
            )
        if not isinstance(self.policy, ResiliencePolicy):
            object.__setattr__(self, "policy", ResiliencePolicy(self.policy))

    @property
    def empty(self) -> bool:
        """True when the plan injects nothing (healthy run)."""
        return not (
            self.link_faults or self.stragglers or self.ecc_faults
            or self.crashes or self.rail_faults or self.node_stragglers
            or self.node_crashes
        )

    @property
    def crash(self) -> Optional[CrashFault]:
        return self.crashes[0] if self.crashes else None

    @property
    def node_crash(self) -> Optional[NodeCrashFault]:
        return self.node_crashes[0] if self.node_crashes else None

    @property
    def cluster_faults(self) -> bool:
        """True when the plan touches the cluster tier (rails / nodes)."""
        return bool(
            self.rail_faults or self.node_stragglers or self.node_crashes
        )

    def boundaries(self) -> Tuple[float, ...]:
        """Sorted activation/deactivation times (> 0) of continuous faults."""
        times = set()
        for f in (*self.link_faults, *self.stragglers, *self.ecc_faults,
                  *self.rail_faults, *self.node_stragglers):
            if f.at > 0:
                times.add(f.at)
            if f.until != _INF:
                times.add(f.until)
        return tuple(sorted(times))

    def labels(self) -> Tuple[str, ...]:
        """One short label per fault, for reports and event payloads."""
        return tuple(
            f.label()
            for f in (*self.link_faults, *self.stragglers,
                      *self.ecc_faults, *self.rail_faults,
                      *self.node_stragglers, *self.crashes,
                      *self.node_crashes)
        )

    def analytic_conflict(self, gpus_per_node: int = 8) -> Optional[str]:
        """Why the representative-node analytic fast path cannot run this
        plan, or ``None`` when it can.

        The analytic path event-simulates only node 0's GPUs and scales
        the collective algebra to the full rank count, so it can
        represent faults that either live on node 0 (the slowest-member
        pacing of synchronous SGD makes the representative node the
        pacemaker) or enter the closed-form rail algebra globally
        (:class:`RailFault`).  Anything else -- crashes (membership
        changes mid-epoch), faults addressing GPUs or nodes the path
        never simulates, or link names it cannot place -- forces the
        event path.  See docs/SCALING.md's validity envelope.
        """
        import re

        if self.crashes or self.node_crashes:
            label = (self.crash or self.node_crash).label()
            return f"{label} changes cluster membership mid-epoch"
        for f in (*self.stragglers, *self.ecc_faults):
            if f.gpu >= gpus_per_node:
                return (
                    f"{f.label()} targets gpu{f.gpu} on unrepresented "
                    f"node {f.gpu // gpus_per_node}"
                )
        for f in self.node_stragglers:
            if f.node != 0:
                return f"{f.label()} targets unrepresented node {f.node}"
        for f in self.link_faults:
            indices = [int(m) for m in re.findall(r"gpu(\d+)", f.link)]
            if not indices:
                return (
                    f"{f.label()} names no GPU endpoint the "
                    f"representative node could place"
                )
            if any(i >= gpus_per_node for i in indices):
                return (
                    f"{f.label()} touches a link on unrepresented "
                    f"node {max(indices) // gpus_per_node}"
                )
        return None

    # ------------------------------------------------------------------
    # Scenario constructors
    # ------------------------------------------------------------------
    @classmethod
    def single_link(
        cls, link: str, bandwidth_scale: float = 0.0, at: float = 0.0,
        **kwargs,
    ) -> "FaultPlan":
        """One link degrading/failing; the smallest interesting scenario."""
        return cls(
            link_faults=(LinkFault(link, at=at, bandwidth_scale=bandwidth_scale),),
            description=f"single link {link}",
            **kwargs,
        )

    @classmethod
    def isolate_gpu(cls, topology, gpu: int, at: float = 0.0, **kwargs) -> "FaultPlan":
        """Fail every NVLink of one GPU (a dead NVLink bridge).

        The surviving graph has no NVLink ring through ``gpu``, so NCCL
        must fall back to a PCIe ring -- the worst-case degradation the
        paper's Figure 2 discussion implies.
        """
        from repro.topology.links import LinkType

        node = topology.gpu(gpu)
        faults = tuple(
            LinkFault(link.name, at=at)
            for link in topology.links_of(node)
            if link.link_type is LinkType.NVLINK
        )
        if not faults:
            raise FaultPlanError(f"gpu{gpu} has no NVLinks to fail")
        return cls(
            link_faults=faults,
            description=f"gpu{gpu} NVLink-isolated",
            **kwargs,
        )

    @classmethod
    def random(
        cls,
        seed: int,
        topology=None,
        num_gpus: int = 8,
        policy: ResiliencePolicy = ResiliencePolicy.SHRINK,
        cluster_nodes: int = 1,
        rails_per_node: int = 4,
    ) -> "FaultPlan":
        """Deterministically expand ``seed`` into a mixed fault scenario.

        The expansion uses only :class:`random.Random` seeded with
        ``seed`` -- no wall clock, no global state -- so the same seed
        always yields the identical plan (and therefore the identical
        simulated epoch), on any machine and any process count.

        With ``cluster_nodes > 1`` the expansion additionally samples the
        nodes x rails grid -- up to two rail faults, an optional node
        straggler, and an optional :class:`NodeCrashFault` in place of
        the single-GPU crash (hierarchical collectives recover at node
        granularity).  Single-node calls draw the exact same sequence as
        before the cluster tier existed, so historical seeds keep their
        plans.
        """
        if cluster_nodes < 1:
            raise FaultPlanError("cluster_nodes must be >= 1")
        if rails_per_node < 1:
            raise FaultPlanError("rails_per_node must be >= 1")
        if topology is None:
            from repro.topology import build_dgx1v

            topology = build_dgx1v()
        rng = random.Random(seed)
        gpus = list(range(num_gpus))
        nvlinks = sorted(
            link.name
            for link in topology.links
            if link.link_type.value == "nvlink"
            and all(
                end.name in {f"gpu{i}" for i in gpus}
                for end in link.endpoints()
            )
        )
        link_faults = []
        for name in rng.sample(nvlinks, k=min(rng.randint(0, 2), len(nvlinks))):
            link_faults.append(LinkFault(
                link=name,
                at=round(rng.uniform(0.0, 30.0), 3),
                bandwidth_scale=rng.choice((0.0, 0.25, 0.5)),
            ))
        stragglers = []
        if rng.random() < 0.75:
            stragglers.append(StragglerFault(
                gpu=rng.choice(gpus),
                factor=round(rng.uniform(1.2, 2.5), 2),
                at=round(rng.uniform(0.0, 20.0), 3),
            ))
        ecc_faults = []
        if rng.random() < 0.5:
            ecc_faults.append(EccFault(
                gpu=rng.choice(gpus),
                retry_latency=round(rng.uniform(5e-6, 50e-6), 7),
                at=round(rng.uniform(0.0, 20.0), 3),
            ))
        crashes = []
        if cluster_nodes == 1 and rng.random() < 0.33 and num_gpus > 1:
            crashes.append(CrashFault(
                gpu=rng.choice(gpus),
                at_iteration=rng.randint(50, 2000),
            ))
        rail_faults = []
        node_stragglers = []
        node_crashes = []
        if cluster_nodes > 1:
            cells = [
                (node, rail)
                for node in range(cluster_nodes)
                for rail in range(rails_per_node)
            ]
            # Cap failed rails below the rail count so re-railing always
            # has a survivor (an all-rails-down cluster cannot train).
            k = min(rng.randint(0, 2), len(cells), rails_per_node - 1)
            for node, rail in rng.sample(cells, k=k):
                rail_faults.append(RailFault(
                    node=node,
                    rail=rail,
                    at=round(rng.uniform(0.0, 30.0), 3),
                    bandwidth_scale=rng.choice((0.0, 0.25, 0.5)),
                ))
            if rng.random() < 0.5:
                node_stragglers.append(NodeStragglerFault(
                    node=rng.randrange(cluster_nodes),
                    factor=round(rng.uniform(1.2, 2.0), 2),
                    at=round(rng.uniform(0.0, 20.0), 3),
                ))
            if rng.random() < 0.33:
                node_crashes.append(NodeCrashFault(
                    node=rng.randrange(cluster_nodes),
                    at_iteration=rng.randint(50, 2000),
                ))
        return cls(
            link_faults=tuple(link_faults),
            stragglers=tuple(stragglers),
            ecc_faults=tuple(ecc_faults),
            crashes=tuple(crashes),
            policy=policy,
            description=f"random(seed={seed})",
            rail_faults=tuple(rail_faults),
            node_stragglers=tuple(node_stragglers),
            node_crashes=tuple(node_crashes),
        )
