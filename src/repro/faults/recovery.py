"""Recovery-cost accounting and the fault report attached to results.

The faulted trainer builds a :class:`FaultSummary` describing the epoch
timeline it assembled: one :class:`SegmentReport` per fault segment (a
maximal window with a constant active-fault set), plus the transition
and recovery costs charged between segments.  The summary rides on
:class:`~repro.train.results.TrainingResult` and round-trips through the
sweep cache (:mod:`repro.analysis.serialization`), so degradation tables
render from cached results without re-simulating.

:func:`crash_recovery_cost` is the policy cost model: what the epoch pays
at the crash point, *excluding* the re-run iterations (the trainer
accounts those on the timeline directly, at the measured segment means).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.faults.plan import CrashFault, RecoveryCosts, ResiliencePolicy


@dataclass(frozen=True)
class SegmentReport:
    """One constant-fault window of the epoch timeline."""

    index: int
    start_time: float               # epoch-timeline start of the segment (s)
    start_iteration: int
    iterations: int                 # epoch iterations charged to this segment
    mean_iteration: float           # measured steady-state iteration (s)
    active: Tuple[str, ...]         # labels of active continuous faults
    ring_bandwidth: float           # NCCL aggregate ring bandwidth (bytes/s)
    ring_uses_pcie: bool            # ring fell back to PCIe
    gpus: int                       # GPUs participating in this segment
    rails_degraded: int = 0         # inter-node rails below full bandwidth

    @property
    def span(self) -> float:
        """Simulated seconds this segment contributes to the epoch."""
        return self.iterations * self.mean_iteration


@dataclass(frozen=True)
class FaultSummary:
    """Everything the resilience layer did to one training run."""

    policy: str
    segments: Tuple[SegmentReport, ...]
    transition_cost: float          # re-ring + route-recompute totals (s)
    recovery_cost: float            # crash recovery (policy-dependent, s)
    checkpoint_cost: float          # periodic checkpoint writes (s)
    healthy_iteration: float        # segment-0 steady-state iteration (s)
    crashed_gpu: Optional[int] = None
    crash_iteration: Optional[int] = None
    replayed_iterations: int = 0    # lost work re-run after restart
    survivors: int = 0              # GPUs that finished the epoch
    crashed_node: Optional[int] = None  # chassis lost (cluster tier)

    @property
    def overhead(self) -> float:
        """Total modeled resilience cost added to the epoch (seconds)."""
        return self.transition_cost + self.recovery_cost + self.checkpoint_cost

    @property
    def degraded(self) -> bool:
        return (
            len(self.segments) > 1
            or self.crashed_gpu is not None
            or self.crashed_node is not None
            or any(s.active for s in self.segments)
        )


def checkpoint_write_cost(iterations: int, costs: RecoveryCosts) -> float:
    """Cost of the periodic checkpoints an epoch of ``iterations`` writes."""
    return (iterations // costs.checkpoint_interval) * costs.checkpoint_write


def crash_recovery_cost(
    crash: CrashFault,
    policy: ResiliencePolicy,
    costs: RecoveryCosts,
) -> Tuple[float, int]:
    """(seconds charged at the crash point, iterations to replay).

    ``SHRINK`` pays the drain plus an NCCL re-ring over the survivors and
    replays nothing (synchronous SGD loses only the crashed in-flight
    iteration, which the shrunk group re-runs -- accounted by the caller
    on the survivor timeline).  ``CHECKPOINT_RESTART`` pays the worker
    restart plus re-ring, then replays the iterations since the last
    periodic checkpoint.  ``FAIL_FAST`` never reaches recovery.

    ``crash`` is any fault with an ``at_iteration`` -- a
    :class:`~repro.faults.plan.CrashFault` or a node-granularity
    :class:`~repro.faults.plan.NodeCrashFault` (the cost model is the
    same machinery either way; only the survivor set differs, and the
    caller owns that).
    """
    if policy is ResiliencePolicy.SHRINK:
        return costs.shrink_drain + costs.ring_rebuild, 0
    if policy is ResiliencePolicy.CHECKPOINT_RESTART:
        replay = crash.at_iteration % costs.checkpoint_interval
        return costs.restart_overhead + costs.ring_rebuild, replay
    raise ValueError(f"no recovery cost defined for policy {policy!r}")
