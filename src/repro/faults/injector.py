"""Runtime evaluation of a :class:`~repro.faults.plan.FaultPlan`.

The injector answers point-in-time queries -- which links are degraded at
``t``, how slow is GPU *i* at ``t``, what ECC penalty does a kernel pay --
without mutating anything.  The trainer samples it at fault-segment
boundaries (continuous faults are piecewise-constant between plan
activation times, so sampling the segment start characterizes the whole
segment) and :class:`~repro.gpu.device.GpuDevice` consults the derived
per-segment models on every kernel.

Activation windows are half-open: a fault with ``at=5, until=9`` is
active for ``5 <= t < 9``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.faults.plan import (
    CrashFault,
    EccFault,
    FaultPlan,
    LinkFault,
    NodeCrashFault,
    RailFault,
    StragglerFault,
)
from repro.topology.cluster import GPUS_PER_NODE


@dataclass(frozen=True)
class EccModel:
    """The combined ECC-retry penalty one GPU pays during one segment.

    ``delay(kernel)`` is what :class:`~repro.gpu.device.GpuDevice` adds to
    a kernel's duration: active faults' retry latencies summed, charged
    only to memory-bound kernels (arithmetic intensity below the ridge).
    """

    retry_latency: float
    intensity_ridge: float

    def delay(self, kernel) -> float:
        """Extra seconds ``kernel`` pays under this ECC regime."""
        if kernel.bytes_moved <= 0:
            return 0.0
        if kernel.flops / kernel.bytes_moved >= self.intensity_ridge:
            return 0.0
        return self.retry_latency


class FaultInjector:
    """Deterministic point-in-time view over a :class:`FaultPlan`."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan

    # ------------------------------------------------------------------
    # Segmenting
    # ------------------------------------------------------------------
    def boundaries(self) -> Tuple[float, ...]:
        """Epoch-timeline instants where the active fault set changes."""
        return self.plan.boundaries()

    def _continuous(self):
        return (*self.plan.link_faults, *self.plan.stragglers,
                *self.plan.ecc_faults, *self.plan.rail_faults,
                *self.plan.node_stragglers)

    def active_labels(self, now: float) -> Tuple[str, ...]:
        """Labels of every continuous fault active at ``now``."""
        return tuple(
            f.label() for f in self._continuous() if f.at <= now < f.until
        )

    def activated_between(self, start: float, end: float) -> Tuple[str, ...]:
        """Labels of faults whose activation lies in ``(start, end]``."""
        return tuple(
            f.label() for f in self._continuous() if start < f.at <= end
        )

    # ------------------------------------------------------------------
    # Link faults
    # ------------------------------------------------------------------
    def _active_link_faults(self, now: float) -> Tuple[LinkFault, ...]:
        return tuple(
            f for f in self.plan.link_faults if f.at <= now < f.until
        )

    def link_scale(self, link_name: str, now: float) -> float:
        """Bandwidth multiplier for ``link_name`` at ``now`` (1 = healthy).

        Overlapping faults on the same link compound by taking the most
        severe (minimum) scale; 0 means the link is down.
        """
        scales = [
            f.bandwidth_scale
            for f in self._active_link_faults(now)
            if f.link == link_name
        ]
        return min(scales) if scales else 1.0

    def failed_links(self, now: float) -> frozenset:
        """Names of links that are outright down at ``now``."""
        return frozenset(
            f.link for f in self._active_link_faults(now) if f.is_failure
        )

    def degrades_links(self, now: float) -> bool:
        return bool(self._active_link_faults(now))

    # ------------------------------------------------------------------
    # Rail faults (cluster tier)
    # ------------------------------------------------------------------
    def _active_rail_faults(self, now: float) -> Tuple[RailFault, ...]:
        return tuple(
            f for f in self.plan.rail_faults if f.at <= now < f.until
        )

    def rail_scales(self, rails: int, now: float) -> Tuple[float, ...]:
        """Per-rail bandwidth multipliers at ``now`` (all 1.0 = healthy).

        The inter-node rail-*r* ring paces at its slowest member, so
        every active rail fault on rail *r* -- whichever node's HCA it
        hits -- applies, and overlapping faults take the most severe
        (minimum) scale.  0 means the rail ring is down and its shard
        traffic re-rails (:func:`repro.comm.nccl.hierarchical.rail_assignment`).
        """
        scales = [1.0] * rails
        for f in self._active_rail_faults(now):
            if f.rail < rails:
                scales[f.rail] = min(scales[f.rail], f.bandwidth_scale)
        return tuple(scales)

    def degrades_rails(self, now: float) -> bool:
        return bool(self._active_rail_faults(now))

    # ------------------------------------------------------------------
    # Stragglers / ECC
    # ------------------------------------------------------------------
    def gpu_factor(self, gpu: int, now: float) -> float:
        """Combined slowdown multiplier for ``gpu`` at ``now``.

        Overlapping stragglers compound multiplicatively (a preempted GPU
        can also be thermally throttled), and a node straggler on the
        GPU's chassis compounds with its per-GPU stragglers.
        """
        factor = 1.0
        for f in self.plan.stragglers:
            if f.gpu == gpu and f.at <= now < f.until:
                factor *= f.factor
        node = gpu // GPUS_PER_NODE
        for f in self.plan.node_stragglers:
            if f.node == node and f.at <= now < f.until:
                factor *= f.factor
        return factor

    def ecc_model(self, gpu: int, now: float) -> Optional[EccModel]:
        """The ECC penalty model for ``gpu`` at ``now``, or ``None``."""
        active = [
            f for f in self.plan.ecc_faults
            if f.gpu == gpu and f.at <= now < f.until
        ]
        if not active:
            return None
        return EccModel(
            retry_latency=sum(f.retry_latency for f in active),
            intensity_ridge=min(f.intensity_ridge for f in active),
        )

    # ------------------------------------------------------------------
    # Crashes
    # ------------------------------------------------------------------
    @property
    def crash(self) -> Optional[CrashFault]:
        return self.plan.crash

    @property
    def node_crash(self) -> Optional[NodeCrashFault]:
        return self.plan.node_crash
