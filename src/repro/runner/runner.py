"""Sweep execution: serial or process-pool, memoized, disk-cached.

:class:`SweepRunner` is the single execution path for every experiment
sweep in the library.  It layers three result sources, checked in order:

1. an in-process memo (what the old ``RunCache`` provided),
2. an optional persistent :class:`~repro.runner.store.ResultStore`
   keyed by content fingerprint,
3. actual simulation -- serially by default, or on a
   ``concurrent.futures`` process pool when ``jobs > 1``.

The simulator is deterministic, so parallel execution returns results
identical to serial execution; outcomes are always assembled in spec
order regardless of completion order.  Progress is published as
``SweepPoint*`` events on an optional :class:`~repro.obs.bus.EventBus`.

The runner degrades gracefully around bad points: a crashing point is
retried with exponential backoff (``retries``) and, if it keeps failing,
recorded as a :class:`~repro.runner.spec.FailureInfo` outcome under the
spec's :class:`~repro.runner.spec.FailurePolicy` instead of aborting the
sweep; ``point_timeout`` bounds each point's wall-clock execution (the
point is recorded as timed out, the rest of the sweep continues).
Failures are transient by definition and are never memoized or written
to the persistent cache.
"""

from __future__ import annotations

import concurrent.futures
import contextlib
import dataclasses
import random
import signal
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple, Union

from repro.checks.engine import CheckMode, merge_stats
from repro.core.config import (
    CommMethodName,
    ScalingMode,
    SimulationConfig,
    TrainingConfig,
)
from repro.core.constants import CALIBRATION, CalibrationConstants
from repro.core.errors import OutOfMemoryError, SweepInterrupted, SweepPointError
from repro.obs.bus import EventBus
from repro.obs.events import (
    SweepPointDone,
    SweepPointFailed,
    SweepPointOom,
    SweepPointRetry,
    SweepPointStart,
)
from repro.runner.fingerprint import point_fingerprint
from repro.runner.spec import (
    FailureInfo,
    FailurePolicy,
    OomInfo,
    OomPolicy,
    SweepPoint,
    SweepSpec,
)
from repro.perf.spans import PERF
from repro.runner.store import CacheEntry, ResultStore, fault_breakdown

#: What one executed/cached point yields: a result object, an OOM record,
#: or a (never-cached) failure record.
PointValue = Union["TrainingResult", "AsyncResult", OomInfo, FailureInfo]  # noqa: F821

#: Poll interval of the timeout-enforcing pool wait loop (wall seconds).
_TIMEOUT_POLL = 0.05


@contextlib.contextmanager
def _sigterm_as_interrupt() -> Iterator[None]:
    """Deliver SIGTERM as :class:`KeyboardInterrupt` while a sweep runs.

    SIGINT already raises ``KeyboardInterrupt``; routing SIGTERM through
    the same exception gives both signals the one graceful-shutdown path
    (flush completed points, report partials, exit 130).  Signal handlers
    can only be installed from the main thread; elsewhere (e.g. a sweep
    driven from a worker thread) this is a no-op and SIGTERM keeps its
    process-default behavior.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return
    previous = signal.getsignal(signal.SIGTERM)

    def _raise_interrupt(signum: int, frame: Any) -> None:
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _raise_interrupt)
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


def _execute_point(
    point: SweepPoint,
    sim: SimulationConfig,
    constants: CalibrationConstants,
    trainer_kwargs: Mapping[str, Any],
    invariants: str = "off",
) -> Tuple[PointValue, float, Dict[str, Tuple[int, int]]]:
    """Run one simulation (also the process-pool worker).

    OOM and crashes are returned as data rather than raised: custom
    exception constructors do not survive the pool's pickle round-trip,
    and the parent applies the spec's policies anyway.  The third element
    is the point's invariant-check statistics (plain picklable dict,
    empty when ``invariants="off"``); it is collected even when the point
    fails, so a strict-mode violation still reports which checks ran.
    """
    from repro.checks.engine import CheckEngine
    from repro.train.async_trainer import AsyncTrainer
    from repro.train.trainer import Trainer

    engine = CheckEngine(invariants)
    kwargs = dict(trainer_kwargs)
    kwargs.update(point.override_dict())
    if engine.enabled and "checks" not in kwargs:
        kwargs["checks"] = engine
    start = time.perf_counter()
    try:
        if point.mode == "async":
            value: PointValue = AsyncTrainer(
                point.config, sim=sim, constants=constants, **kwargs
            ).run()
        else:
            value = Trainer(
                point.config, sim=sim, constants=constants, **kwargs
            ).run()
    except OutOfMemoryError as exc:
        value = OomInfo(
            device=exc.device, requested=exc.requested, free=exc.free,
            message=str(exc),
        )
    except Exception as exc:  # noqa: BLE001 - converted to data, re-raised by policy
        value = FailureInfo(
            error_type=type(exc).__name__, message=str(exc), attempts=1,
        )
    return value, time.perf_counter() - start, engine.stats_dict()


@dataclass(frozen=True)
class PointOutcome:
    """One sweep point's result plus how it was obtained."""

    point: SweepPoint
    result: Optional[Any]        # TrainingResult | AsyncResult | None on OOM
    source: str                  # "executed" | "memory" | "disk"
    oom: Optional[OomInfo] = None
    elapsed: float = 0.0
    failure: Optional[FailureInfo] = None

    @property
    def ok(self) -> bool:
        return self.oom is None and self.failure is None


class SweepResults:
    """Outcomes of one executed spec, in spec order, with lookup helpers."""

    def __init__(self, name: str, outcomes: Tuple[PointOutcome, ...]) -> None:
        self.name = name
        self.outcomes = outcomes

    def __len__(self) -> int:
        return len(self.outcomes)

    def __iter__(self):
        return iter(self.outcomes)

    @staticmethod
    def _matches(outcome: PointOutcome, criteria: Mapping[str, Any]) -> bool:
        tags = outcome.point.tag_dict()
        for key, wanted in criteria.items():
            if key == "mode":
                have: Any = outcome.point.mode
            elif key in tags:
                have = tags[key]
            elif hasattr(outcome.point.config, key):
                have = getattr(outcome.point.config, key)
            else:
                return False
            if have != wanted:
                return False
        return True

    def outcomes_for(self, **criteria: Any) -> List[PointOutcome]:
        """Every outcome matching the criteria, in spec order.

        Criteria match, in precedence order, the point's ``mode``, its
        tags, then :class:`TrainingConfig` fields; enum-valued fields
        compare equal to their string values (``comm_method="nccl"``).
        """
        return [o for o in self.outcomes if self._matches(o, criteria)]

    def outcome(self, **criteria: Any) -> PointOutcome:
        """The unique outcome matching the criteria (KeyError otherwise)."""
        found = self.outcomes_for(**criteria)
        if not found:
            raise KeyError(f"no sweep point matches {criteria!r}")
        if len(found) > 1:
            raise KeyError(
                f"{len(found)} sweep points match {criteria!r}; narrow the lookup"
            )
        return found[0]

    def result(self, **criteria: Any) -> Any:
        """The unique matching result; raises on OOM or failed points."""
        out = self.outcome(**criteria)
        if out.oom is not None:
            raise OutOfMemoryError(out.oom.device, out.oom.requested, out.oom.free)
        if out.failure is not None:
            raise SweepPointError(
                out.point.describe(), out.failure.attempts, out.failure.message
            )
        return out.result

    def try_result(self, **criteria: Any) -> Optional[Any]:
        """Like :meth:`result` but ``None`` for OOM, failed or missing points."""
        try:
            return self.result(**criteria)
        except (KeyError, OutOfMemoryError, SweepPointError):
            return None


@dataclass
class RunnerStats:
    """Where this runner's results came from (for progress reporting)."""

    executed: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    oom: int = 0
    retried: int = 0
    failed: int = 0
    #: Wall-clock seconds spent actually simulating points this run.
    sim_seconds: float = 0.0
    #: Wall-clock seconds cache hits would have cost to re-simulate
    #: (summed from the ``perf`` metadata of the entries they were
    #: answered from; entries without metadata contribute 0).
    saved_seconds: float = 0.0
    #: Fault-injected points seen this run (executed or cache hits with
    #: a recorded ``faults`` breakdown).
    faulted: int = 0
    #: Total modeled resilience overhead across those points (simulated
    #: seconds: re-ring transitions + crash recovery + checkpoints).
    fault_overhead: float = 0.0

    @property
    def total(self) -> int:
        return self.executed + self.memory_hits + self.disk_hits

    def describe(self) -> str:
        base = (
            f"{self.executed} simulated, {self.disk_hits} from disk cache, "
            f"{self.memory_hits} memoized, {self.oom} OOM"
        )
        if self.retried or self.failed:
            base += f", {self.retried} retried, {self.failed} failed"
        return base

    def describe_timing(self) -> Optional[str]:
        """One-line cache-hit/miss timing summary, or ``None`` if idle.

        Kept separate from :meth:`describe` (whose format downstream
        tooling matches) and only rendered once any wall-clock was
        actually spent or saved.
        """
        if self.sim_seconds <= 0.0 and self.saved_seconds <= 0.0:
            return None
        return (
            f"timing: {self.sim_seconds:.2f}s simulating "
            f"({self.executed} point(s)), ~{self.saved_seconds:.2f}s "
            f"avoided by {self.memory_hits + self.disk_hits} cache hit(s)"
        )

    def describe_faults(self) -> Optional[str]:
        """One-line recovery-breakdown summary, or ``None`` if no point
        this run (executed or replayed from cache) was fault-injected."""
        if not self.faulted:
            return None
        return (
            f"faults: {self.faulted} fault-injected point(s), "
            f"{self.fault_overhead:.2f}s modeled recovery overhead"
        )


class SweepRunner:
    """Executes :class:`SweepSpec` points with memoization and caching.

    Also provides the legacy ``RunCache`` interface (:meth:`get` /
    :meth:`try_get` / ``len``), so anchor validation and ad-hoc callers
    can fetch single configurations through the same memo the sweeps
    fill.
    """

    def __init__(
        self,
        sim: SimulationConfig = SimulationConfig(),
        constants: CalibrationConstants = CALIBRATION,
        trainer_kwargs: Optional[Mapping[str, Any]] = None,
        jobs: int = 1,
        store: Optional[ResultStore] = None,
        bus: Optional[EventBus] = None,
        retries: int = 1,
        retry_backoff: float = 0.05,
        retry_jitter: float = 0.0,
        retry_seed: Optional[int] = None,
        point_timeout: Optional[float] = None,
        invariants: str = "off",
    ) -> None:
        """``retries`` is the number of *re*-executions granted to a
        crashing point (so a point runs at most ``retries + 1`` times);
        ``retry_backoff`` is the base of the exponential wall-clock
        backoff slept between attempts.  ``retry_jitter`` widens each
        backoff by a random factor in ``[1, 1 + retry_jitter)`` so N
        clients retrying the same failed point do not thundering-herd a
        shared pool; the default ``0.0`` keeps the historical
        deterministic schedule.  ``retry_seed`` seeds the jitter RNG so
        tests (and the service's reproducibility guarantees) can pin the
        exact sleep sequence.  ``point_timeout`` bounds one
        point's wall-clock execution in seconds; a point that exceeds it
        is recorded as a timed-out failure (not retried -- the simulator
        is deterministic, so a hang would simply hang again) while the
        rest of the sweep continues.  Timeout enforcement routes the
        sweep through a process pool even when ``jobs=1``; the stuck
        worker process is abandoned and may run to completion in the
        background.

        ``invariants`` enables runtime physical-invariant verification
        (:mod:`repro.checks`) for every executed point: ``"off"``
        (default, zero overhead), ``"warn"`` (violations are recorded on
        each result and aggregated in :attr:`check_stats`) or
        ``"strict"`` (a violation fails the point, subject to the spec's
        failure policy; violating results are never cached).  The mode is
        deliberately *not* part of the cache fingerprint -- checks
        observe a run without changing its modeled numbers."""
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if retry_backoff < 0:
            raise ValueError(f"retry_backoff must be >= 0, got {retry_backoff}")
        if retry_jitter < 0:
            raise ValueError(f"retry_jitter must be >= 0, got {retry_jitter}")
        if point_timeout is not None and point_timeout <= 0:
            raise ValueError(f"point_timeout must be positive, got {point_timeout}")
        self.sim = sim
        self.constants = constants
        self.trainer_kwargs: Dict[str, Any] = dict(trainer_kwargs or {})
        self.jobs = jobs
        self.store = store
        self.bus = bus
        self.retries = retries
        self.retry_backoff = retry_backoff
        self.retry_jitter = retry_jitter
        self._retry_rng = random.Random(retry_seed)
        self.point_timeout = point_timeout
        self.invariants = CheckMode.parse(invariants).value
        self.stats = RunnerStats()
        #: Aggregated ``{invariant: [checked, violated]}`` across every
        #: point this runner executed (cache hits contribute nothing --
        #: their checks ran when the entry was first simulated).
        self.check_stats: Dict[str, List[int]] = {}
        self._memo: Dict[str, PointValue] = {}
        #: Wall-clock each memoized point originally cost to simulate,
        #: so memory hits can credit :attr:`RunnerStats.saved_seconds`.
        self._memo_cost: Dict[str, float] = {}
        #: Recovery breakdown of each memoized fault-injected point, so
        #: memory hits report it like disk hits do.
        self._memo_faults: Dict[str, Optional[Dict[str, Any]]] = {}

    def __len__(self) -> int:
        """Distinct results currently held in memory."""
        return len(self._memo)

    # ------------------------------------------------------------------
    # Sweep execution
    # ------------------------------------------------------------------
    def run(self, spec: SweepSpec) -> SweepResults:
        """Execute (or answer from cache) every point of ``spec``."""
        total = len(spec.points)
        outcomes: List[Optional[PointOutcome]] = [None] * total
        pending: List[Tuple[int, Optional[str], SweepPoint]] = []

        for index, point in enumerate(spec.points):
            self._publish(SweepPointStart(
                sweep=spec.name, index=index, total=total,
                label=point.describe(),
            ))
            key = self._key(point)
            entry = self._lookup(key)
            if entry is None:
                pending.append((index, key, point))
            else:
                source = "memory" if key in self._memo else "disk"
                if source == "disk":
                    self._memo[key] = entry.value  # promote for later lookups
                    self._memo_cost[key] = entry.elapsed
                    self._memo_faults[key] = entry.faults
                    self.stats.disk_hits += 1
                else:
                    self.stats.memory_hits += 1
                self.stats.saved_seconds += entry.elapsed
                self._note_faults(entry.faults)
                outcomes[index] = self._finish(
                    spec, index, total, point, entry.value, source, 0.0
                )

        if pending:
            try:
                with _sigterm_as_interrupt():
                    self._execute_pending(spec, total, pending, outcomes)
            except KeyboardInterrupt:
                completed = sum(1 for o in outcomes if o is not None)
                print(
                    f"sweep {spec.name!r} interrupted: {completed}/{total} "
                    f"point(s) finished and flushed to the result store "
                    f"({self.stats.describe()})",
                    file=sys.stderr,
                )
                raise SweepInterrupted(spec.name, completed, total) from None

        final = [o for o in outcomes if o is not None]
        if spec.oom_policy is OomPolicy.RAISE:
            for outcome in final:
                if outcome.oom is not None:
                    raise OutOfMemoryError(
                        outcome.oom.device, outcome.oom.requested, outcome.oom.free
                    )
        elif spec.oom_policy is OomPolicy.SKIP:
            final = [o for o in final if o.oom is None]
        if spec.failure_policy is FailurePolicy.RAISE:
            for outcome in final:
                if outcome.failure is not None:
                    raise SweepPointError(
                        outcome.point.describe(),
                        outcome.failure.attempts,
                        outcome.failure.message,
                    )
        elif spec.failure_policy is FailurePolicy.SKIP:
            final = [o for o in final if o.failure is None]
        return SweepResults(name=spec.name, outcomes=tuple(final))

    def map(self, spec: SweepSpec, fn: Any) -> List[Any]:
        """Apply picklable ``fn(config)`` to every point, in spec order.

        For analyses that iterate a declarative grid without running the
        trainer (Table IV's memory-model sweep).  Parallelized like
        :meth:`run` but never cached -- ``fn``'s output has no schema.
        """
        configs = [point.config for point in spec.points]
        total = len(configs)
        for index, point in enumerate(spec.points):
            self._publish(SweepPointStart(
                sweep=spec.name, index=index, total=total, label=point.describe(),
            ))
        if self.jobs > 1 and total > 1:
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=min(self.jobs, total)
            ) as pool:
                values = list(pool.map(fn, configs))
        else:
            values = [fn(config) for config in configs]
        for index, point in enumerate(spec.points):
            self._publish(SweepPointDone(
                sweep=spec.name, index=index, total=total,
                label=point.describe(), source="executed", elapsed=0.0,
            ))
        return values

    # ------------------------------------------------------------------
    # Single-point interface (RunCache compatibility)
    # ------------------------------------------------------------------
    def run_point(self, point: SweepPoint) -> Any:
        """Execute one point (memo/disk-cached); raises on OOM."""
        results = self.run(SweepSpec(name="point", points=(point,)))
        return results.outcomes[0].result

    def get(
        self,
        network: str,
        batch_size: int,
        num_gpus: int,
        comm_method: CommMethodName,
        scaling: ScalingMode = ScalingMode.STRONG,
        overlap_bp_wu: bool = True,
    ) -> Any:
        """The (memoized) result for one configuration.

        Propagates :class:`~repro.core.errors.OutOfMemoryError` so callers
        can report untrainable configurations, as the paper does.
        """
        config = TrainingConfig(
            network=network,
            batch_size=batch_size,
            num_gpus=num_gpus,
            comm_method=comm_method,
            scaling=scaling,
            overlap_bp_wu=overlap_bp_wu,
        )
        return self.run_point(SweepPoint(config=config))

    def try_get(self, *args: Any, **kwargs: Any) -> Optional[Any]:
        """Like :meth:`get` but returns ``None`` on OOM."""
        try:
            return self.get(*args, **kwargs)
        except OutOfMemoryError:
            return None

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _key(self, point: SweepPoint) -> Optional[str]:
        return point_fingerprint(
            point, self.sim, self.constants, self.trainer_kwargs
        )

    def _lookup(self, key: Optional[str]) -> Optional[CacheEntry]:
        if key is None:
            return None
        if key in self._memo:
            return CacheEntry(
                value=self._memo[key],
                elapsed=self._memo_cost.get(key, 0.0),
                faults=self._memo_faults.get(key),
            )
        if self.store is not None:
            return self.store.load_entry(key)
        return None

    def _record(
        self,
        key: Optional[str],
        value: PointValue,
        elapsed: float = 0.0,
        check_stats: Optional[Dict[str, Tuple[int, int]]] = None,
    ) -> None:
        if key is None:
            return
        if isinstance(value, FailureInfo):
            # Failures are transient: caching one would make a crashed
            # point permanently "fail" from cache on every future run.
            return
        self._memo[key] = value
        self._memo_cost[key] = elapsed
        self._memo_faults[key] = fault_breakdown(value)
        self._note_faults(self._memo_faults[key])
        if self.store is not None:
            self.store.store(key, value, elapsed=elapsed, check_stats=check_stats)

    def _finish(
        self,
        spec: SweepSpec,
        index: int,
        total: int,
        point: SweepPoint,
        value: PointValue,
        source: str,
        elapsed: float,
    ) -> PointOutcome:
        if isinstance(value, OomInfo):
            self.stats.oom += 1
            self._publish(SweepPointOom(
                sweep=spec.name, index=index, total=total,
                label=point.describe(), message=value.message,
            ))
            return PointOutcome(
                point=point, result=None, source=source, oom=value,
                elapsed=elapsed,
            )
        if isinstance(value, FailureInfo):
            self.stats.failed += 1
            self._publish(SweepPointFailed(
                sweep=spec.name, index=index, total=total,
                label=point.describe(), attempts=value.attempts,
                reason=f"{value.error_type}: {value.message}",
            ))
            return PointOutcome(
                point=point, result=None, source=source, failure=value,
                elapsed=elapsed,
            )
        self._publish(SweepPointDone(
            sweep=spec.name, index=index, total=total,
            label=point.describe(), source=source, elapsed=elapsed,
        ))
        return PointOutcome(
            point=point, result=value, source=source, elapsed=elapsed
        )

    def _note_faults(self, breakdown: Optional[Dict[str, Any]]) -> None:
        if breakdown is not None:
            self.stats.faulted += 1
            self.stats.fault_overhead += breakdown.get("overhead", 0.0)

    def _backoff(self, attempt: int) -> float:
        """Exponential backoff slept before re-attempt ``attempt + 1``.

        With ``retry_jitter > 0`` the exponential base is widened by a
        seeded random factor in ``[1, 1 + retry_jitter)``; drawing from
        the runner's own RNG keeps concurrent runners decorrelated while
        a fixed ``retry_seed`` keeps any single runner reproducible.
        """
        backoff = self.retry_backoff * (2 ** (attempt - 1))
        if self.retry_jitter:
            backoff *= 1.0 + self._retry_rng.random() * self.retry_jitter
        return backoff

    def _note_retry(
        self, spec: SweepSpec, total: int, index: int, point: SweepPoint,
        attempt: int, value: FailureInfo,
    ) -> float:
        backoff = self._backoff(attempt)
        self.stats.retried += 1
        self._publish(SweepPointRetry(
            sweep=spec.name, index=index, total=total,
            label=point.describe(), attempt=attempt,
            max_attempts=self.retries + 1,
            reason=f"{value.error_type}: {value.message}", backoff=backoff,
        ))
        return backoff

    def _execute_pending(
        self,
        spec: SweepSpec,
        total: int,
        pending: List[Tuple[int, Optional[str], SweepPoint]],
        outcomes: List[Optional[PointOutcome]],
    ) -> None:
        # Timeouts need an interruptible boundary around the simulation,
        # which only a separate worker process provides -- so a timeout
        # routes even a serial sweep through a 1-worker pool.
        if (self.jobs > 1 and len(pending) > 1) or self.point_timeout is not None:
            self._execute_pool(spec, total, pending, outcomes)
            return
        for index, key, point in pending:
            attempt = 1
            while True:
                with PERF.span("runner.point"):
                    value, elapsed, cstats = _execute_point(
                        point, self.sim, self.constants, self.trainer_kwargs,
                        self.invariants,
                    )
                merge_stats(self.check_stats, cstats)
                if not isinstance(value, FailureInfo) or attempt > self.retries:
                    break
                time.sleep(self._note_retry(
                    spec, total, index, point, attempt, value))
                attempt += 1
            if isinstance(value, FailureInfo):
                value = dataclasses.replace(value, attempts=attempt)
            self.stats.executed += 1
            self.stats.sim_seconds += elapsed
            self._record(key, value, elapsed, cstats)
            outcomes[index] = self._finish(
                spec, index, total, point, value, "executed", elapsed
            )

    def _execute_pool(
        self,
        spec: SweepSpec,
        total: int,
        pending: List[Tuple[int, Optional[str], SweepPoint]],
        outcomes: List[Optional[PointOutcome]],
    ) -> None:
        """Pool execution with per-point retry and wall-clock timeout.

        A timed-out future cannot be interrupted (ProcessPoolExecutor has
        no kill primitive), so it is abandoned: its outcome is recorded
        as a timeout failure, the wait loop stops tracking it, and the
        final ``shutdown(wait=False, cancel_futures=True)`` leaves the
        stuck worker to die with the process.
        """
        deadline = self.point_timeout
        pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=min(self.jobs, len(pending))
        )
        state: Dict[concurrent.futures.Future, Tuple[int, Optional[str], SweepPoint, int]] = {}
        running_since: Dict[concurrent.futures.Future, float] = {}
        abandoned = False
        interrupted = False

        def submit(index: int, key: Optional[str], point: SweepPoint,
                   attempt: int) -> None:
            future = pool.submit(
                _execute_point, point, self.sim, self.constants,
                self.trainer_kwargs, self.invariants,
            )
            state[future] = (index, key, point, attempt)

        try:
            for index, key, point in pending:
                submit(index, key, point, 1)
            while state:
                done, _ = concurrent.futures.wait(
                    set(state),
                    timeout=_TIMEOUT_POLL if deadline is not None else None,
                    return_when=concurrent.futures.FIRST_COMPLETED,
                )
                now = time.monotonic()
                for future in done:
                    index, key, point, attempt = state.pop(future)
                    running_since.pop(future, None)
                    try:
                        value, elapsed, cstats = future.result()
                        merge_stats(self.check_stats, cstats)
                    except Exception as exc:  # noqa: BLE001 - worker died
                        value = FailureInfo(
                            error_type=type(exc).__name__,
                            message=str(exc), attempts=attempt,
                        )
                        elapsed = 0.0
                        cstats = {}
                    if isinstance(value, FailureInfo) and attempt <= self.retries:
                        time.sleep(self._note_retry(
                            spec, total, index, point, attempt, value))
                        submit(index, key, point, attempt + 1)
                        continue
                    if isinstance(value, FailureInfo):
                        value = dataclasses.replace(value, attempts=attempt)
                    self.stats.executed += 1
                    self.stats.sim_seconds += elapsed
                    self._record(key, value, elapsed, cstats)
                    outcomes[index] = self._finish(
                        spec, index, total, point, value, "executed", elapsed
                    )
                if deadline is None:
                    continue
                for future in [f for f in state if f.running()]:
                    started = running_since.setdefault(future, now)
                    if now - started < deadline:
                        continue
                    index, key, point, attempt = state.pop(future)
                    running_since.pop(future, None)
                    abandoned = True
                    value = FailureInfo(
                        error_type="TimeoutError",
                        message=(
                            f"point exceeded the {deadline:g}s wall-clock "
                            f"timeout and was abandoned"
                        ),
                        attempts=attempt,
                        timed_out=True,
                    )
                    self.stats.executed += 1
                    self.stats.sim_seconds += now - started
                    outcomes[index] = self._finish(
                        spec, index, total, point, value, "executed",
                        now - started,
                    )
        except KeyboardInterrupt:
            # Graceful shutdown: pending futures are cancelled and busy
            # workers terminated by the cleanup below; completed points
            # were recorded (and flushed to the store) as they finished.
            interrupted = True
            raise
        finally:
            # Snapshot before shutdown(): the executor nulls _processes out.
            workers = list((getattr(pool, "_processes", None) or {}).values())
            pool.shutdown(wait=False, cancel_futures=True)
            if abandoned or interrupted:
                # After an abandon every tracked future has completed, so
                # the only busy workers are the stuck ones; after an
                # interrupt the in-flight points are abandoned by design.
                # Kill them, or the interpreter's process-pool atexit
                # join would hang on them forever.
                for proc in workers:
                    proc.terminate()

    def _publish(self, event: Any) -> None:
        if self.bus is not None:
            self.bus.publish(event)
