"""Sweep execution: serial or process-pool, memoized, disk-cached.

:class:`SweepRunner` is the single execution path for every experiment
sweep in the library.  It layers three result sources, checked in order:

1. an in-process memo (what the old ``RunCache`` provided),
2. an optional persistent :class:`~repro.runner.store.ResultStore`
   keyed by content fingerprint,
3. actual simulation -- serially by default, or on a
   ``concurrent.futures`` process pool when ``jobs > 1``.

The simulator is deterministic, so parallel execution returns results
identical to serial execution; outcomes are always assembled in spec
order regardless of completion order.  Progress is published as
``SweepPoint*`` events on an optional :class:`~repro.obs.bus.EventBus`.
"""

from __future__ import annotations

import concurrent.futures
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.core.config import (
    CommMethodName,
    ScalingMode,
    SimulationConfig,
    TrainingConfig,
)
from repro.core.constants import CALIBRATION, CalibrationConstants
from repro.core.errors import OutOfMemoryError
from repro.obs.bus import EventBus
from repro.obs.events import SweepPointDone, SweepPointOom, SweepPointStart
from repro.runner.fingerprint import point_fingerprint
from repro.runner.spec import OomInfo, OomPolicy, SweepPoint, SweepSpec
from repro.runner.store import ResultStore

#: What one executed/cached point yields: a result object or an OOM record.
PointValue = Union["TrainingResult", "AsyncResult", OomInfo]  # noqa: F821


def _execute_point(
    point: SweepPoint,
    sim: SimulationConfig,
    constants: CalibrationConstants,
    trainer_kwargs: Mapping[str, Any],
) -> Tuple[PointValue, float]:
    """Run one simulation (also the process-pool worker).

    OOM is returned as data rather than raised: custom exception
    constructors do not survive the pool's pickle round-trip, and the
    parent applies the spec's OOM policy anyway.
    """
    from repro.train.async_trainer import AsyncTrainer
    from repro.train.trainer import Trainer

    kwargs = dict(trainer_kwargs)
    kwargs.update(point.override_dict())
    start = time.perf_counter()
    try:
        if point.mode == "async":
            value: PointValue = AsyncTrainer(
                point.config, sim=sim, constants=constants, **kwargs
            ).run()
        else:
            value = Trainer(
                point.config, sim=sim, constants=constants, **kwargs
            ).run()
    except OutOfMemoryError as exc:
        value = OomInfo(
            device=exc.device, requested=exc.requested, free=exc.free,
            message=str(exc),
        )
    return value, time.perf_counter() - start


@dataclass(frozen=True)
class PointOutcome:
    """One sweep point's result plus how it was obtained."""

    point: SweepPoint
    result: Optional[Any]        # TrainingResult | AsyncResult | None on OOM
    source: str                  # "executed" | "memory" | "disk"
    oom: Optional[OomInfo] = None
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return self.oom is None


class SweepResults:
    """Outcomes of one executed spec, in spec order, with lookup helpers."""

    def __init__(self, name: str, outcomes: Tuple[PointOutcome, ...]) -> None:
        self.name = name
        self.outcomes = outcomes

    def __len__(self) -> int:
        return len(self.outcomes)

    def __iter__(self):
        return iter(self.outcomes)

    @staticmethod
    def _matches(outcome: PointOutcome, criteria: Mapping[str, Any]) -> bool:
        tags = outcome.point.tag_dict()
        for key, wanted in criteria.items():
            if key == "mode":
                have: Any = outcome.point.mode
            elif key in tags:
                have = tags[key]
            elif hasattr(outcome.point.config, key):
                have = getattr(outcome.point.config, key)
            else:
                return False
            if have != wanted:
                return False
        return True

    def outcomes_for(self, **criteria: Any) -> List[PointOutcome]:
        """Every outcome matching the criteria, in spec order.

        Criteria match, in precedence order, the point's ``mode``, its
        tags, then :class:`TrainingConfig` fields; enum-valued fields
        compare equal to their string values (``comm_method="nccl"``).
        """
        return [o for o in self.outcomes if self._matches(o, criteria)]

    def outcome(self, **criteria: Any) -> PointOutcome:
        """The unique outcome matching the criteria (KeyError otherwise)."""
        found = self.outcomes_for(**criteria)
        if not found:
            raise KeyError(f"no sweep point matches {criteria!r}")
        if len(found) > 1:
            raise KeyError(
                f"{len(found)} sweep points match {criteria!r}; narrow the lookup"
            )
        return found[0]

    def result(self, **criteria: Any) -> Any:
        """The unique matching result; raises on OOM points."""
        out = self.outcome(**criteria)
        if out.oom is not None:
            raise OutOfMemoryError(out.oom.device, out.oom.requested, out.oom.free)
        return out.result

    def try_result(self, **criteria: Any) -> Optional[Any]:
        """Like :meth:`result` but ``None`` for OOM or missing points."""
        try:
            return self.result(**criteria)
        except (KeyError, OutOfMemoryError):
            return None


@dataclass
class RunnerStats:
    """Where this runner's results came from (for progress reporting)."""

    executed: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    oom: int = 0

    @property
    def total(self) -> int:
        return self.executed + self.memory_hits + self.disk_hits

    def describe(self) -> str:
        return (
            f"{self.executed} simulated, {self.disk_hits} from disk cache, "
            f"{self.memory_hits} memoized, {self.oom} OOM"
        )


class SweepRunner:
    """Executes :class:`SweepSpec` points with memoization and caching.

    Also provides the legacy ``RunCache`` interface (:meth:`get` /
    :meth:`try_get` / ``len``), so anchor validation and ad-hoc callers
    can fetch single configurations through the same memo the sweeps
    fill.
    """

    def __init__(
        self,
        sim: SimulationConfig = SimulationConfig(),
        constants: CalibrationConstants = CALIBRATION,
        trainer_kwargs: Optional[Mapping[str, Any]] = None,
        jobs: int = 1,
        store: Optional[ResultStore] = None,
        bus: Optional[EventBus] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.sim = sim
        self.constants = constants
        self.trainer_kwargs: Dict[str, Any] = dict(trainer_kwargs or {})
        self.jobs = jobs
        self.store = store
        self.bus = bus
        self.stats = RunnerStats()
        self._memo: Dict[str, PointValue] = {}

    def __len__(self) -> int:
        """Distinct results currently held in memory."""
        return len(self._memo)

    # ------------------------------------------------------------------
    # Sweep execution
    # ------------------------------------------------------------------
    def run(self, spec: SweepSpec) -> SweepResults:
        """Execute (or answer from cache) every point of ``spec``."""
        total = len(spec.points)
        outcomes: List[Optional[PointOutcome]] = [None] * total
        pending: List[Tuple[int, Optional[str], SweepPoint]] = []

        for index, point in enumerate(spec.points):
            self._publish(SweepPointStart(
                sweep=spec.name, index=index, total=total,
                label=point.describe(),
            ))
            key = self._key(point)
            value = self._lookup(key)
            if value is None:
                pending.append((index, key, point))
            else:
                source = "memory" if key in self._memo else "disk"
                if source == "disk":
                    self._memo[key] = value  # promote for later lookups
                    self.stats.disk_hits += 1
                else:
                    self.stats.memory_hits += 1
                outcomes[index] = self._finish(
                    spec, index, total, point, value, source, 0.0
                )

        if pending:
            self._execute_pending(spec, total, pending, outcomes)

        final = [o for o in outcomes if o is not None]
        if spec.oom_policy is OomPolicy.RAISE:
            for outcome in final:
                if outcome.oom is not None:
                    raise OutOfMemoryError(
                        outcome.oom.device, outcome.oom.requested, outcome.oom.free
                    )
        elif spec.oom_policy is OomPolicy.SKIP:
            final = [o for o in final if o.oom is None]
        return SweepResults(name=spec.name, outcomes=tuple(final))

    def map(self, spec: SweepSpec, fn: Any) -> List[Any]:
        """Apply picklable ``fn(config)`` to every point, in spec order.

        For analyses that iterate a declarative grid without running the
        trainer (Table IV's memory-model sweep).  Parallelized like
        :meth:`run` but never cached -- ``fn``'s output has no schema.
        """
        configs = [point.config for point in spec.points]
        total = len(configs)
        for index, point in enumerate(spec.points):
            self._publish(SweepPointStart(
                sweep=spec.name, index=index, total=total, label=point.describe(),
            ))
        if self.jobs > 1 and total > 1:
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=min(self.jobs, total)
            ) as pool:
                values = list(pool.map(fn, configs))
        else:
            values = [fn(config) for config in configs]
        for index, point in enumerate(spec.points):
            self._publish(SweepPointDone(
                sweep=spec.name, index=index, total=total,
                label=point.describe(), source="executed", elapsed=0.0,
            ))
        return values

    # ------------------------------------------------------------------
    # Single-point interface (RunCache compatibility)
    # ------------------------------------------------------------------
    def run_point(self, point: SweepPoint) -> Any:
        """Execute one point (memo/disk-cached); raises on OOM."""
        results = self.run(SweepSpec(name="point", points=(point,)))
        return results.outcomes[0].result

    def get(
        self,
        network: str,
        batch_size: int,
        num_gpus: int,
        comm_method: CommMethodName,
        scaling: ScalingMode = ScalingMode.STRONG,
        overlap_bp_wu: bool = True,
    ) -> Any:
        """The (memoized) result for one configuration.

        Propagates :class:`~repro.core.errors.OutOfMemoryError` so callers
        can report untrainable configurations, as the paper does.
        """
        config = TrainingConfig(
            network=network,
            batch_size=batch_size,
            num_gpus=num_gpus,
            comm_method=comm_method,
            scaling=scaling,
            overlap_bp_wu=overlap_bp_wu,
        )
        return self.run_point(SweepPoint(config=config))

    def try_get(self, *args: Any, **kwargs: Any) -> Optional[Any]:
        """Like :meth:`get` but returns ``None`` on OOM."""
        try:
            return self.get(*args, **kwargs)
        except OutOfMemoryError:
            return None

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _key(self, point: SweepPoint) -> Optional[str]:
        return point_fingerprint(
            point, self.sim, self.constants, self.trainer_kwargs
        )

    def _lookup(self, key: Optional[str]) -> Optional[PointValue]:
        if key is None:
            return None
        if key in self._memo:
            return self._memo[key]
        if self.store is not None:
            return self.store.load(key)
        return None

    def _record(self, key: Optional[str], value: PointValue) -> None:
        if key is None:
            return
        self._memo[key] = value
        if self.store is not None:
            self.store.store(key, value)

    def _finish(
        self,
        spec: SweepSpec,
        index: int,
        total: int,
        point: SweepPoint,
        value: PointValue,
        source: str,
        elapsed: float,
    ) -> PointOutcome:
        if isinstance(value, OomInfo):
            self.stats.oom += 1
            self._publish(SweepPointOom(
                sweep=spec.name, index=index, total=total,
                label=point.describe(), message=value.message,
            ))
            return PointOutcome(
                point=point, result=None, source=source, oom=value,
                elapsed=elapsed,
            )
        self._publish(SweepPointDone(
            sweep=spec.name, index=index, total=total,
            label=point.describe(), source=source, elapsed=elapsed,
        ))
        return PointOutcome(
            point=point, result=value, source=source, elapsed=elapsed
        )

    def _execute_pending(
        self,
        spec: SweepSpec,
        total: int,
        pending: List[Tuple[int, Optional[str], SweepPoint]],
        outcomes: List[Optional[PointOutcome]],
    ) -> None:
        if self.jobs > 1 and len(pending) > 1:
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=min(self.jobs, len(pending))
            ) as pool:
                futures = {
                    pool.submit(
                        _execute_point, point, self.sim, self.constants,
                        self.trainer_kwargs,
                    ): (index, key, point)
                    for index, key, point in pending
                }
                for future in concurrent.futures.as_completed(futures):
                    index, key, point = futures[future]
                    value, elapsed = future.result()
                    self.stats.executed += 1
                    self._record(key, value)
                    outcomes[index] = self._finish(
                        spec, index, total, point, value, "executed", elapsed
                    )
        else:
            for index, key, point in pending:
                value, elapsed = _execute_point(
                    point, self.sim, self.constants, self.trainer_kwargs
                )
                self.stats.executed += 1
                self._record(key, value)
                outcomes[index] = self._finish(
                    spec, index, total, point, value, "executed", elapsed
                )

    def _publish(self, event: Any) -> None:
        if self.bus is not None:
            self.bus.publish(event)
