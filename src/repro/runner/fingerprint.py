"""Content-hash keys for the persistent result cache.

A cached result is only reusable when *everything* that determines it is
identical: the training configuration, the simulation fidelity, every
calibration constant, any trainer overrides, and the serialization schema
version.  :func:`point_fingerprint` canonicalizes all of those into JSON
and hashes it -- so editing a constant in
:mod:`repro.core.constants` silently invalidates every affected cache
entry (the key changes; stale files are simply never read again).

Values the canonicalizer cannot prove stable (custom network objects,
lambdas, closures) make the point *uncacheable* rather than wrongly
cached: :func:`point_fingerprint` returns ``None`` and the runner
executes the point every time.
"""

from __future__ import annotations

import dataclasses
import enum
import functools
import hashlib
import json
from typing import Any, Mapping, Optional

from repro.core.config import SimulationConfig
from repro.core.constants import CalibrationConstants
from repro.runner.spec import SweepPoint


class Unfingerprintable(Exception):
    """A value has no stable content-addressable representation."""


def canonical(value: Any) -> Any:
    """A JSON-ready canonical form of ``value``.

    Raises :class:`Unfingerprintable` for anything whose identity cannot
    be captured by content (arbitrary objects, lambdas, closures).
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, enum.Enum):
        return canonical(value.value)
    if isinstance(value, (list, tuple)):
        return [canonical(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): canonical(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            f.name: canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return {"__dataclass__": type(value).__qualname__, **fields}
    if isinstance(value, functools.partial):
        return {
            "__partial__": canonical(value.func),
            "args": canonical(value.args),
            "kwargs": canonical(value.keywords or {}),
        }
    if callable(value):
        qualname = getattr(value, "__qualname__", "")
        module = getattr(value, "__module__", "")
        if not module or not qualname or "<" in qualname:
            raise Unfingerprintable(f"cannot fingerprint callable {value!r}")
        if getattr(value, "__closure__", None):
            raise Unfingerprintable(f"cannot fingerprint closure {qualname}")
        return f"__callable__:{module}:{qualname}"
    raise Unfingerprintable(f"cannot fingerprint {type(value).__qualname__} value")


def point_fingerprint(
    point: SweepPoint,
    sim: SimulationConfig,
    constants: CalibrationConstants,
    trainer_kwargs: Optional[Mapping[str, Any]] = None,
) -> Optional[str]:
    """The cache key for one sweep point, or ``None`` if uncacheable.

    The serialization schema version is folded in so a format change can
    never resurrect results written by an incompatible library version.
    """
    from repro.analysis.serialization import SCHEMA_VERSION

    try:
        payload = {
            "schema": SCHEMA_VERSION,
            "mode": point.mode,
            "config": canonical(point.config),
            "sim": canonical(sim),
            "constants": canonical(constants),
            "overrides": canonical(point.override_dict()),
            "trainer_kwargs": canonical(dict(trainer_kwargs or {})),
        }
    except Unfingerprintable:
        return None
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
