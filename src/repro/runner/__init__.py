"""Unified sweep execution: declarative specs, parallel runner, result cache.

Every artifact in the paper is a sweep over (network, batch size, GPU
count, communication method).  This package gives all of them one
execution path:

* :mod:`repro.runner.spec`        -- :class:`SweepSpec` /
  :class:`SweepPoint`: declarative grid and explicit-point construction,
  OOM policy, free-form tags.
* :mod:`repro.runner.runner`      -- :class:`SweepRunner`: serial or
  process-pool execution (``jobs > 1``), in-process memoization, obs-bus
  progress events, bounded retry-with-backoff and per-point wall-clock
  timeouts (failed points degrade to :class:`FailureInfo` outcomes under
  the spec's :class:`FailurePolicy` instead of aborting the sweep), plus
  the legacy ``RunCache`` ``get``/``try_get`` interface.
* :mod:`repro.runner.store`       -- :class:`ResultStore`: persistent
  JSON cache keyed by content fingerprint; :class:`ShardedResultStore`
  adds per-shard directories and a write-ahead journal for concurrent
  writers (the :mod:`repro.service` backend).
* :mod:`repro.runner.fingerprint` -- the content hash over config +
  simulation fidelity + calibration constants + schema version that makes
  the disk cache self-invalidating.

See ``docs/RUNNER.md`` for the full contract.
"""

from repro.runner.fingerprint import Unfingerprintable, canonical, point_fingerprint
from repro.runner.runner import (
    PointOutcome,
    RunnerStats,
    SweepResults,
    SweepRunner,
)
from repro.runner.spec import (
    FailureInfo,
    FailurePolicy,
    OomInfo,
    OomPolicy,
    SweepPoint,
    SweepSpec,
)
from repro.runner.store import (
    CacheCorruptionWarning,
    CacheSchemaError,
    ResultStore,
    ShardedResultStore,
)

__all__ = [
    "CacheCorruptionWarning",
    "CacheSchemaError",
    "FailureInfo",
    "FailurePolicy",
    "OomInfo",
    "OomPolicy",
    "PointOutcome",
    "ResultStore",
    "ShardedResultStore",
    "RunnerStats",
    "SweepPoint",
    "SweepResults",
    "SweepRunner",
    "SweepSpec",
    "Unfingerprintable",
    "canonical",
    "point_fingerprint",
]
