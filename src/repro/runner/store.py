"""Persistent on-disk result cache.

One JSON file per sweep point, named by its content fingerprint (see
:mod:`repro.runner.fingerprint`), written atomically.  Because the key
hashes the config, simulation fidelity, calibration constants and schema
version, invalidation is automatic: change a constant and the old files
are simply never addressed again.  ``repro-experiments`` points a
:class:`ResultStore` at ``results/cache`` by default, making a repeat run
of the full paper suite near-instant.

Layout::

    <root>/
        <sha256-fingerprint>.json    # {"schema": N, "kind": ..., "result": {...}}

``kind`` is ``"training"`` (synchronous :class:`TrainingResult`),
``"async"`` (:class:`AsyncResult`) or ``"oom"`` (a recorded
out-of-memory failure, so untrainable points are not re-attempted).

Entries may additionally carry a ``"perf"`` object -- the wall-clock the
point originally cost to simulate and its invariant-check statistics
(see :meth:`ResultStore.load_entry`).  The field is additive: readers of
the original layout ignore unknown keys, so no schema bump is needed,
and files written before the field exist load fine with ``perf=None``.

Fault-injected training results additionally carry a ``"faults"`` object
-- a flat recovery breakdown (policy, resilience overheads, crashed
GPU/node, degraded rails) lifted out of the
:class:`~repro.faults.recovery.FaultSummary` so replays of cached
faulted points can report what the resilience layer did without
deserializing the full result.  Same additive contract as ``"perf"``:
healthy entries and pre-existing files simply load with ``faults=None``.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
import warnings
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple, Union

from repro.core.errors import ReproError
from repro.runner.spec import OomInfo


class CacheSchemaError(ReproError, RuntimeError):
    """A cache file was written by an incompatible schema version."""


class CacheCorruptionWarning(UserWarning):
    """A cache file was unreadable/corrupted and treated as a miss.

    Truncated writes (a killed process, a full disk) or hand-edited files
    must not abort a long sweep mid-way: the point is simply re-simulated
    and the next :meth:`ResultStore.store` atomically replaces the bad
    file.  The warning keeps the corruption visible.
    """


StoredValue = Union["TrainingResult", "AsyncResult", OomInfo]  # noqa: F821


@dataclass(frozen=True)
class CacheEntry:
    """One loaded cache entry: the value plus its recorded cost.

    ``elapsed`` is the wall-clock seconds the point took when it was
    first simulated (0.0 for entries written before the ``perf`` field
    existed); ``check_stats`` is the invariant-statistics snapshot from
    that original execution.  ``faults`` is the recovery breakdown of a
    fault-injected training point (``None`` for healthy points and for
    entries written before the field existed).
    """

    value: StoredValue
    elapsed: float = 0.0
    check_stats: Optional[Dict[str, Tuple[int, int]]] = None
    faults: Optional[Dict[str, Any]] = None


def fault_breakdown(value: Any) -> Optional[Dict[str, Any]]:
    """The flat ``"faults"`` entry field for ``value``, or ``None``.

    Only fault-injected :class:`TrainingResult`\\ s (a non-``None``
    ``faults`` summary) produce a breakdown; everything else -- healthy
    results, async results, OOM records -- maps to ``None`` so the field
    stays absent from their entries.
    """
    summary = getattr(value, "faults", None)
    if summary is None:
        return None
    return {
        "policy": summary.policy,
        "segments": len(summary.segments),
        "transition_cost": summary.transition_cost,
        "recovery_cost": summary.recovery_cost,
        "checkpoint_cost": summary.checkpoint_cost,
        "overhead": summary.overhead,
        "crashed_gpu": summary.crashed_gpu,
        "crashed_node": summary.crashed_node,
        "replayed_iterations": summary.replayed_iterations,
        "rails_degraded": max(
            (s.rails_degraded for s in summary.segments), default=0
        ),
    }


def _parse_faults(raw: Any) -> Optional[Dict[str, Any]]:
    """Best-effort decode of an entry's ``"faults"`` object.

    Like ``"perf"``, the breakdown is advisory (it only feeds the
    runner's fault-summary line), so a malformed shape degrades to
    ``None`` rather than poisoning an otherwise intact result.
    """
    if not isinstance(raw, dict):
        return None
    try:
        return {
            "policy": str(raw["policy"]),
            "segments": int(raw["segments"]),
            "transition_cost": float(raw["transition_cost"]),
            "recovery_cost": float(raw["recovery_cost"]),
            "checkpoint_cost": float(raw["checkpoint_cost"]),
            "overhead": float(raw["overhead"]),
            "crashed_gpu": (
                None if raw.get("crashed_gpu") is None
                else int(raw["crashed_gpu"])
            ),
            "crashed_node": (
                None if raw.get("crashed_node") is None
                else int(raw["crashed_node"])
            ),
            "replayed_iterations": int(raw["replayed_iterations"]),
            "rails_degraded": int(raw["rails_degraded"]),
        }
    except (TypeError, ValueError, KeyError):
        return None


def _parse_perf(
    raw: Any,
) -> Tuple[float, Optional[Dict[str, Tuple[int, int]]]]:
    """Best-effort decode of an entry's ``"perf"`` object.

    Perf metadata is advisory (it only feeds timing summaries), so any
    malformed shape degrades to ``(0.0, None)`` rather than poisoning an
    otherwise intact result.
    """
    if not isinstance(raw, dict):
        return 0.0, None
    try:
        elapsed = float(raw.get("elapsed", 0.0))
    except (TypeError, ValueError):
        elapsed = 0.0
    if elapsed < 0.0:
        elapsed = 0.0
    stats_raw = raw.get("check_stats")
    check_stats: Optional[Dict[str, Tuple[int, int]]] = None
    if isinstance(stats_raw, dict):
        try:
            check_stats = {
                str(name): (int(pair[0]), int(pair[1]))
                for name, pair in stats_raw.items()
            }
        except (TypeError, ValueError, IndexError, KeyError):
            check_stats = None
    return elapsed, check_stats


class ResultStore:
    """Loads and saves simulation results keyed by content fingerprint."""

    def __init__(self, root: Union[str, pathlib.Path]) -> None:
        self.root = pathlib.Path(root)

    def path_for(self, key: str) -> pathlib.Path:
        return self.root / f"{key}.json"

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))

    def _corrupt(self, path: pathlib.Path, why: str) -> None:
        warnings.warn(
            f"sweep cache file {path} is corrupted ({why}); treating as a "
            f"cache miss -- the point will be re-simulated and the file "
            f"overwritten",
            CacheCorruptionWarning,
            stacklevel=3,
        )

    def load(self, key: str) -> Optional[StoredValue]:
        """The stored value for ``key``, or ``None`` on a miss."""
        entry = self.load_entry(key)
        return entry.value if entry is not None else None

    def load_entry(self, key: str) -> Optional[CacheEntry]:
        """The stored value plus its recorded perf metadata, or ``None``.

        Corrupted or truncated files -- invalid JSON, a non-dict payload,
        a missing ``schema`` stamp, missing result fields -- count as
        misses with a :class:`CacheCorruptionWarning` (the next store
        atomically overwrites them), so one bad file cannot abort a sweep
        mid-way.  Only an explicit *different* schema version is refused
        loudly with :class:`CacheSchemaError`: those files are internally
        consistent data from another library version, and silently
        re-simulating would mask a whole directory of unusable entries.

        A malformed ``perf`` field never fails the load: the result data
        is intact, so the entry is returned with ``elapsed=0.0``.
        """
        # Imported lazily: repro.analysis's package __init__ pulls in
        # modules that import repro.runner back.
        from repro.analysis.serialization import (
            SCHEMA_VERSION,
            SchemaMismatchError,
            async_result_from_dict,
            result_from_dict,
        )

        path = self.path_for(key)
        try:
            text = path.read_text()
        except OSError:
            return None  # plain miss: the file does not exist (or is unreadable)
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            self._corrupt(path, f"invalid JSON: {exc}")
            return None
        if not isinstance(data, dict) or "schema" not in data:
            self._corrupt(path, "not a schema-stamped result object")
            return None
        found = data["schema"]
        if found != SCHEMA_VERSION:
            raise CacheSchemaError(
                f"cache file {path} has schema {found!r} but this library "
                f"writes schema {SCHEMA_VERSION}; delete the cache directory "
                f"(or pass --no-cache) and re-run"
            )
        kind = data.get("kind")
        value: Optional[StoredValue] = None
        try:
            if kind == "training":
                value = result_from_dict(data["result"])
            elif kind == "async":
                value = async_result_from_dict(data["result"])
            elif kind == "oom":
                o = data["result"]
                value = OomInfo(
                    device=o["device"],
                    requested=o["requested"],
                    free=o["free"],
                    message=o["message"],
                )
        except SchemaMismatchError as exc:
            raise CacheSchemaError(f"cache file {path}: {exc}") from exc
        except (KeyError, TypeError, ValueError) as exc:
            self._corrupt(path, f"missing/invalid result fields: {exc}")
            return None
        if value is None:
            self._corrupt(path, f"unknown result kind {kind!r}")
            return None
        elapsed, check_stats = _parse_perf(data.get("perf"))
        return CacheEntry(
            value=value, elapsed=elapsed, check_stats=check_stats,
            faults=_parse_faults(data.get("faults")),
        )

    def store(
        self,
        key: str,
        value: StoredValue,
        elapsed: Optional[float] = None,
        check_stats: Optional[Dict[str, Tuple[int, int]]] = None,
    ) -> pathlib.Path:
        """Persist ``value`` under ``key`` (atomic write-then-rename).

        ``elapsed`` (wall-clock seconds the point took to simulate) and
        ``check_stats`` (its invariant statistics) are recorded in the
        additive ``"perf"`` entry field when given.  Fault-injected
        training results additionally get the ``"faults"`` breakdown
        (see :func:`fault_breakdown`).
        """
        from repro.analysis.serialization import (
            SCHEMA_VERSION,
            async_result_to_dict,
            result_to_dict,
        )
        from repro.train.async_trainer import AsyncResult

        if isinstance(value, OomInfo):
            kind, payload = "oom", {
                "device": value.device,
                "requested": value.requested,
                "free": value.free,
                "message": value.message,
            }
        elif isinstance(value, AsyncResult):
            kind, payload = "async", async_result_to_dict(value)
        else:
            kind, payload = "training", result_to_dict(value)

        self.root.mkdir(parents=True, exist_ok=True)
        data: Dict[str, Any] = {
            "schema": SCHEMA_VERSION, "kind": kind, "result": payload,
        }
        breakdown = fault_breakdown(value)
        if breakdown is not None:
            data["faults"] = breakdown
        if elapsed is not None:
            perf: Dict[str, Any] = {"elapsed": float(elapsed)}
            if check_stats:
                perf["check_stats"] = {
                    name: [int(checked), int(violated)]
                    for name, (checked, violated) in sorted(check_stats.items())
                }
            data["perf"] = perf
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fp:
                json.dump(data, fp)
            os.replace(tmp, self.path_for(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return self.path_for(key)
