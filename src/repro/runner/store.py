"""Persistent on-disk result cache.

One JSON file per sweep point, named by its content fingerprint (see
:mod:`repro.runner.fingerprint`), written atomically.  Because the key
hashes the config, simulation fidelity, calibration constants and schema
version, invalidation is automatic: change a constant and the old files
are simply never addressed again.  ``repro-experiments`` points a
:class:`ResultStore` at ``results/cache`` by default, making a repeat run
of the full paper suite near-instant.

Layout::

    <root>/
        <sha256-fingerprint>.json    # {"schema": N, "kind": ..., "result": {...}}

``kind`` is ``"training"`` (synchronous :class:`TrainingResult`),
``"async"`` (:class:`AsyncResult`) or ``"oom"`` (a recorded
out-of-memory failure, so untrainable points are not re-attempted).

Entries may additionally carry a ``"perf"`` object -- the wall-clock the
point originally cost to simulate and its invariant-check statistics
(see :meth:`ResultStore.load_entry`).  The field is additive: readers of
the original layout ignore unknown keys, so no schema bump is needed,
and files written before the field exist load fine with ``perf=None``.

Fault-injected training results additionally carry a ``"faults"`` object
-- a flat recovery breakdown (policy, resilience overheads, crashed
GPU/node, degraded rails) lifted out of the
:class:`~repro.faults.recovery.FaultSummary` so replays of cached
faulted points can report what the resilience layer did without
deserializing the full result.  Same additive contract as ``"perf"``:
healthy entries and pre-existing files simply load with ``faults=None``.

:class:`ShardedResultStore` extends the same contract for concurrent
writers (the sweep service): entries live in per-shard directories
(``shard-XX/<fingerprint>.json``, shard = CRC32 of the key) so directory
churn is spread across ``shards`` inodes, and every write is journaled to
a per-process write-ahead log (``journal/wal-<pid>.jsonl``, fsynced
before the point file is renamed into place) that is replayed on startup
-- a SIGKILL between the journal append and the rename can never lose a
committed entry, and a torn trailing journal line is simply an
uncommitted write.  See ``docs/RUNNER.md`` and ``docs/SERVICE.md``.
"""

from __future__ import annotations

import itertools
import json
import os
import pathlib
import warnings
import zlib
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional, Tuple, Union

from repro.core.errors import ReproError
from repro.runner.spec import OomInfo


class CacheSchemaError(ReproError, RuntimeError):
    """A cache file was written by an incompatible schema version."""


class CacheCorruptionWarning(UserWarning):
    """A cache file was unreadable/corrupted and treated as a miss.

    Truncated writes (a killed process, a full disk) or hand-edited files
    must not abort a long sweep mid-way: the point is simply re-simulated
    and the next :meth:`ResultStore.store` atomically replaces the bad
    file.  The warning keeps the corruption visible.
    """


StoredValue = Union["TrainingResult", "AsyncResult", OomInfo]  # noqa: F821


@dataclass(frozen=True)
class CacheEntry:
    """One loaded cache entry: the value plus its recorded cost.

    ``elapsed`` is the wall-clock seconds the point took when it was
    first simulated (0.0 for entries written before the ``perf`` field
    existed); ``check_stats`` is the invariant-statistics snapshot from
    that original execution.  ``faults`` is the recovery breakdown of a
    fault-injected training point (``None`` for healthy points and for
    entries written before the field existed).
    """

    value: StoredValue
    elapsed: float = 0.0
    check_stats: Optional[Dict[str, Tuple[int, int]]] = None
    faults: Optional[Dict[str, Any]] = None


def fault_breakdown(value: Any) -> Optional[Dict[str, Any]]:
    """The flat ``"faults"`` entry field for ``value``, or ``None``.

    Only fault-injected :class:`TrainingResult`\\ s (a non-``None``
    ``faults`` summary) produce a breakdown; everything else -- healthy
    results, async results, OOM records -- maps to ``None`` so the field
    stays absent from their entries.
    """
    summary = getattr(value, "faults", None)
    if summary is None:
        return None
    return {
        "policy": summary.policy,
        "segments": len(summary.segments),
        "transition_cost": summary.transition_cost,
        "recovery_cost": summary.recovery_cost,
        "checkpoint_cost": summary.checkpoint_cost,
        "overhead": summary.overhead,
        "crashed_gpu": summary.crashed_gpu,
        "crashed_node": summary.crashed_node,
        "replayed_iterations": summary.replayed_iterations,
        "rails_degraded": max(
            (s.rails_degraded for s in summary.segments), default=0
        ),
    }


def _parse_faults(raw: Any) -> Optional[Dict[str, Any]]:
    """Best-effort decode of an entry's ``"faults"`` object.

    Like ``"perf"``, the breakdown is advisory (it only feeds the
    runner's fault-summary line), so a malformed shape degrades to
    ``None`` rather than poisoning an otherwise intact result.
    """
    if not isinstance(raw, dict):
        return None
    try:
        return {
            "policy": str(raw["policy"]),
            "segments": int(raw["segments"]),
            "transition_cost": float(raw["transition_cost"]),
            "recovery_cost": float(raw["recovery_cost"]),
            "checkpoint_cost": float(raw["checkpoint_cost"]),
            "overhead": float(raw["overhead"]),
            "crashed_gpu": (
                None if raw.get("crashed_gpu") is None
                else int(raw["crashed_gpu"])
            ),
            "crashed_node": (
                None if raw.get("crashed_node") is None
                else int(raw["crashed_node"])
            ),
            "replayed_iterations": int(raw["replayed_iterations"]),
            "rails_degraded": int(raw["rails_degraded"]),
        }
    except (TypeError, ValueError, KeyError):
        return None


def _parse_perf(
    raw: Any,
) -> Tuple[float, Optional[Dict[str, Tuple[int, int]]]]:
    """Best-effort decode of an entry's ``"perf"`` object.

    Perf metadata is advisory (it only feeds timing summaries), so any
    malformed shape degrades to ``(0.0, None)`` rather than poisoning an
    otherwise intact result.
    """
    if not isinstance(raw, dict):
        return 0.0, None
    try:
        elapsed = float(raw.get("elapsed", 0.0))
    except (TypeError, ValueError):
        elapsed = 0.0
    if elapsed < 0.0:
        elapsed = 0.0
    stats_raw = raw.get("check_stats")
    check_stats: Optional[Dict[str, Tuple[int, int]]] = None
    if isinstance(stats_raw, dict):
        try:
            check_stats = {
                str(name): (int(pair[0]), int(pair[1]))
                for name, pair in stats_raw.items()
            }
        except (TypeError, ValueError, IndexError, KeyError):
            check_stats = None
    return elapsed, check_stats


# Monotonic per-process suffix for atomic-write temp names.  Combined
# with the pid it makes temp paths unique across concurrent writers in
# the same directory (mkstemp would too, but a deterministic name keeps
# leftover temp files attributable to the process that crashed).
_TMP_COUNTER = itertools.count()


def _atomic_write_json(path: pathlib.Path, data: Any) -> None:
    """Write ``data`` as JSON to ``path`` via an O_EXCL temp + rename.

    The temp name embeds the writer's pid and a monotonic counter, so two
    concurrent writers in one directory can never race on the same temp
    path; ``O_EXCL`` turns any residual collision (pid reuse after a
    crash) into an explicit error instead of silent interleaving.
    """
    tmp = path.with_name(
        f"{path.name}.{os.getpid()}.{next(_TMP_COUNTER)}.tmp"
    )
    fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
    try:
        with os.fdopen(fd, "w") as fp:
            json.dump(data, fp)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class ResultStore:
    """Loads and saves simulation results keyed by content fingerprint."""

    def __init__(self, root: Union[str, pathlib.Path]) -> None:
        self.root = pathlib.Path(root)

    def path_for(self, key: str) -> pathlib.Path:
        return self.root / f"{key}.json"

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))

    def _corrupt(self, path: pathlib.Path, why: str) -> None:
        warnings.warn(
            f"sweep cache file {path} is corrupted ({why}); treating as a "
            f"cache miss -- the point will be re-simulated and the file "
            f"overwritten",
            CacheCorruptionWarning,
            stacklevel=3,
        )

    def load(self, key: str) -> Optional[StoredValue]:
        """The stored value for ``key``, or ``None`` on a miss."""
        entry = self.load_entry(key)
        return entry.value if entry is not None else None

    def load_entry(self, key: str) -> Optional[CacheEntry]:
        """The stored value plus its recorded perf metadata, or ``None``.

        Corrupted or truncated files -- invalid JSON, a non-dict payload,
        a missing ``schema`` stamp, missing result fields -- count as
        misses with a :class:`CacheCorruptionWarning` (the next store
        atomically overwrites them), so one bad file cannot abort a sweep
        mid-way.  Only an explicit *different* schema version is refused
        loudly with :class:`CacheSchemaError`: those files are internally
        consistent data from another library version, and silently
        re-simulating would mask a whole directory of unusable entries.

        A malformed ``perf`` field never fails the load: the result data
        is intact, so the entry is returned with ``elapsed=0.0``.
        """
        # Imported lazily: repro.analysis's package __init__ pulls in
        # modules that import repro.runner back.
        from repro.analysis.serialization import (
            SCHEMA_VERSION,
            SchemaMismatchError,
            async_result_from_dict,
            result_from_dict,
        )

        path = self.path_for(key)
        try:
            text = path.read_text()
        except OSError:
            return None  # plain miss: the file does not exist (or is unreadable)
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            self._corrupt(path, f"invalid JSON: {exc}")
            return None
        if not isinstance(data, dict) or "schema" not in data:
            self._corrupt(path, "not a schema-stamped result object")
            return None
        found = data["schema"]
        if found != SCHEMA_VERSION:
            raise CacheSchemaError(
                f"cache file {path} has schema {found!r} but this library "
                f"writes schema {SCHEMA_VERSION}; delete the cache directory "
                f"(or pass --no-cache) and re-run"
            )
        kind = data.get("kind")
        value: Optional[StoredValue] = None
        try:
            if kind == "training":
                value = result_from_dict(data["result"])
            elif kind == "async":
                value = async_result_from_dict(data["result"])
            elif kind == "oom":
                o = data["result"]
                value = OomInfo(
                    device=o["device"],
                    requested=o["requested"],
                    free=o["free"],
                    message=o["message"],
                )
        except SchemaMismatchError as exc:
            raise CacheSchemaError(f"cache file {path}: {exc}") from exc
        except (KeyError, TypeError, ValueError) as exc:
            self._corrupt(path, f"missing/invalid result fields: {exc}")
            return None
        if value is None:
            self._corrupt(path, f"unknown result kind {kind!r}")
            return None
        elapsed, check_stats = _parse_perf(data.get("perf"))
        return CacheEntry(
            value=value, elapsed=elapsed, check_stats=check_stats,
            faults=_parse_faults(data.get("faults")),
        )

    def store(
        self,
        key: str,
        value: StoredValue,
        elapsed: Optional[float] = None,
        check_stats: Optional[Dict[str, Tuple[int, int]]] = None,
    ) -> pathlib.Path:
        """Persist ``value`` under ``key`` (atomic write-then-rename).

        ``elapsed`` (wall-clock seconds the point took to simulate) and
        ``check_stats`` (its invariant statistics) are recorded in the
        additive ``"perf"`` entry field when given.  Fault-injected
        training results additionally get the ``"faults"`` breakdown
        (see :func:`fault_breakdown`).
        """
        data = self._encode(value, elapsed=elapsed, check_stats=check_stats)
        return self._write(key, data)

    def _encode(
        self,
        value: StoredValue,
        elapsed: Optional[float] = None,
        check_stats: Optional[Dict[str, Tuple[int, int]]] = None,
    ) -> Dict[str, Any]:
        """The JSON-ready entry document for ``value`` (no I/O)."""
        from repro.analysis.serialization import (
            SCHEMA_VERSION,
            async_result_to_dict,
            result_to_dict,
        )
        from repro.train.async_trainer import AsyncResult

        if isinstance(value, OomInfo):
            kind, payload = "oom", {
                "device": value.device,
                "requested": value.requested,
                "free": value.free,
                "message": value.message,
            }
        elif isinstance(value, AsyncResult):
            kind, payload = "async", async_result_to_dict(value)
        else:
            kind, payload = "training", result_to_dict(value)

        data: Dict[str, Any] = {
            "schema": SCHEMA_VERSION, "kind": kind, "result": payload,
        }
        breakdown = fault_breakdown(value)
        if breakdown is not None:
            data["faults"] = breakdown
        if elapsed is not None:
            perf: Dict[str, Any] = {"elapsed": float(elapsed)}
            if check_stats:
                perf["check_stats"] = {
                    name: [int(checked), int(violated)]
                    for name, (checked, violated) in sorted(check_stats.items())
                }
            data["perf"] = perf
        return data

    def _write(self, key: str, data: Dict[str, Any]) -> pathlib.Path:
        """Atomically persist an encoded entry document under ``key``."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        _atomic_write_json(path, data)
        return path

    def flush(self) -> None:
        """Durability barrier; a no-op for the flat store.

        Every :meth:`store` is already an atomic rename, so there is
        nothing buffered.  :class:`ShardedResultStore` overrides this to
        checkpoint its write-ahead journal.
        """


class ShardedResultStore(ResultStore):
    """A :class:`ResultStore` hardened for concurrent writers.

    Two additions over the flat layout, both transparent to readers of
    the :class:`ResultStore` API:

    * **Sharding** -- entries live under ``shard-XX/`` subdirectories
      (``XX`` = CRC32 of the key modulo ``shards``, hex), bounding
      per-directory entry counts when a service writes tens of thousands
      of points.
    * **Write-ahead journal** -- every :meth:`store` first appends the
      full entry to ``journal/wal-<pid>.jsonl`` (flushed *and* fsynced)
      and only then renames the point file into place.  On startup,
      :meth:`replay_journal` re-applies any journaled entry whose point
      file is missing or unreadable, then removes the consumed logs: a
      SIGKILL at any instant loses at most the single entry whose journal
      line was itself torn -- which by definition had not been
      acknowledged -- and never corrupts or loses a committed one.

    The journal is bounded: it is truncated every
    ``checkpoint_every`` writes (all prior entries have durable point
    files by then) and on :meth:`flush` / :meth:`close` during graceful
    drain.
    """

    #: Journal lines between automatic truncations.
    checkpoint_every = 256

    def __init__(
        self,
        root: Union[str, pathlib.Path],
        shards: int = 16,
        replay: bool = True,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        super().__init__(root)
        self.shards = int(shards)
        self.journal_dir = self.root / "journal"
        self._wal_path = self.journal_dir / f"wal-{os.getpid()}.jsonl"
        self._wal_fp = None
        self._wal_entries = 0
        self.replayed = 0
        if replay:
            self.replayed = self.replay_journal()

    def shard_for(self, key: str) -> pathlib.Path:
        """The shard directory holding ``key``'s entry file."""
        index = zlib.crc32(key.encode("utf-8")) % self.shards
        return self.root / f"shard-{index:02x}"

    def path_for(self, key: str) -> pathlib.Path:
        return self.shard_for(key) / f"{key}.json"

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("shard-*/*.json"))

    def _journal_entries(
        self, wal: pathlib.Path
    ) -> Iterator[Tuple[str, Dict[str, Any]]]:
        """Yield the committed ``(key, data)`` records in one log.

        A torn trailing line (the writer was killed mid-append) or any
        non-decodable line is skipped: the corresponding write was never
        acknowledged, so dropping it is the correct recovery.
        """
        try:
            text = wal.read_text()
        except OSError:
            return
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                key, data = record["key"], record["data"]
            except (json.JSONDecodeError, TypeError, KeyError):
                continue  # torn or malformed append: uncommitted
            if isinstance(key, str) and isinstance(data, dict):
                yield key, data

    def _entry_intact(self, path: pathlib.Path) -> bool:
        """Whether the point file at ``path`` is structurally sound."""
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return False
        return isinstance(data, dict) and "schema" in data

    def replay_journal(self) -> int:
        """Re-apply journaled writes whose point files did not survive.

        Returns the number of entries restored.  Consumed logs are
        removed; the store's own (not-yet-opened) log is never touched by
        other processes because log names embed the writer pid.
        """
        if not self.journal_dir.is_dir():
            return 0
        restored = 0
        for wal in sorted(self.journal_dir.glob("wal-*.jsonl")):
            for key, data in self._journal_entries(wal):
                path = self.path_for(key)
                if not self._entry_intact(path):
                    path.parent.mkdir(parents=True, exist_ok=True)
                    _atomic_write_json(path, data)
                    restored += 1
            try:
                wal.unlink()
            except OSError:
                pass
        return restored

    def _append_journal(self, key: str, data: Dict[str, Any]) -> None:
        if self._wal_fp is None:
            self.journal_dir.mkdir(parents=True, exist_ok=True)
            self._wal_fp = open(self._wal_path, "a")
        json.dump({"key": key, "data": data}, self._wal_fp)
        self._wal_fp.write("\n")
        self._wal_fp.flush()
        os.fsync(self._wal_fp.fileno())
        self._wal_entries += 1

    def _write(self, key: str, data: Dict[str, Any]) -> pathlib.Path:
        self._append_journal(key, data)
        path = super()._write(key, data)
        if self._wal_entries >= self.checkpoint_every:
            self.flush()
        return path

    def flush(self) -> None:
        """Truncate the write-ahead journal.

        Safe because :meth:`_write` only returns after the point file's
        rename, so every journaled entry already has a durable file.
        """
        if self._wal_fp is None:
            return
        self._wal_fp.truncate(0)
        self._wal_fp.seek(0)
        self._wal_fp.flush()
        os.fsync(self._wal_fp.fileno())
        self._wal_entries = 0

    def close(self) -> None:
        """Flush and remove this process's (now empty) journal file."""
        if self._wal_fp is None:
            return
        self.flush()
        self._wal_fp.close()
        self._wal_fp = None
        try:
            self._wal_path.unlink()
        except OSError:
            pass
