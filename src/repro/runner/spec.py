"""Declarative sweep specifications.

A :class:`SweepSpec` names the full set of training simulations an
experiment needs -- the cross-product grids behind Figures 3-5 and
Tables II-III as much as the hand-picked point lists of the extension
studies.  Specs are plain data: building one runs nothing, so the same
spec can be executed serially, on a process pool, or answered entirely
from a persistent cache by :class:`~repro.runner.runner.SweepRunner`.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Mapping, Optional, Sequence, Tuple

from repro.core.config import (
    CommMethodName,
    ScalingMode,
    TrainingConfig,
)

#: ``mode`` values a point may carry.
POINT_MODES = ("sync", "async")


class OomPolicy(str, enum.Enum):
    """What a sweep does when a point raises :class:`OutOfMemoryError`.

    The paper itself needs all three behaviours: the headline sweeps must
    never OOM (``RAISE``), Table IV reports *which* configurations OOM
    (``RECORD``), and exploratory sweeps simply skip untrainable points
    (``SKIP``).
    """

    RAISE = "raise"
    SKIP = "skip"
    RECORD = "record"


class FailurePolicy(str, enum.Enum):
    """What a sweep does when a point crashes or times out.

    Unlike OOM (an expected, physical outcome the paper itself reports),
    a crash is exceptional -- but one bad point must not abort a
    many-point sweep, so the default is ``RECORD``: the point is retried
    with backoff (see :class:`~repro.runner.runner.SweepRunner`) and, if
    it keeps failing, recorded as a :class:`FailureInfo` outcome while
    the rest of the sweep completes.  ``RAISE`` re-raises as
    :class:`~repro.core.errors.SweepPointError` after the whole sweep
    ran; ``SKIP`` silently drops failed points from the results.
    """

    RAISE = "raise"
    SKIP = "skip"
    RECORD = "record"


def _freeze(mapping: Optional[Mapping[str, Any]]) -> Tuple[Tuple[str, Any], ...]:
    if not mapping:
        return ()
    return tuple(sorted(mapping.items()))


@dataclass(frozen=True)
class OomInfo:
    """Details of one recorded out-of-memory failure."""

    device: str
    requested: int
    free: int
    message: str


@dataclass(frozen=True)
class FailureInfo:
    """Details of one sweep point that failed after exhausting retries.

    Carried as plain data because worker exceptions do not reliably
    survive the process pool's pickle round-trip.  Failures are
    considered transient and are never written to the persistent cache
    or the in-process memo -- a re-run re-attempts the point.
    """

    error_type: str       # exception class name, e.g. "WorkerCrashError"
    message: str          # one-line failure description
    attempts: int         # execution attempts made (1 = no retries)
    timed_out: bool = False


@dataclass(frozen=True)
class SweepPoint:
    """One simulation in a sweep.

    ``config`` is the training configuration; ``overrides`` are extra
    :class:`~repro.train.trainer.Trainer` keyword arguments (GPU spec,
    topology builder, custom network, ...) stored as a sorted tuple of
    ``(name, value)`` pairs so the point stays hashable; ``tags`` are
    free-form labels the experiment attaches for later lookup -- they do
    not influence execution; ``mode`` selects the synchronous trainer or
    the asynchronous parameter-server trainer.
    """

    config: TrainingConfig
    mode: str = "sync"
    overrides: Tuple[Tuple[str, Any], ...] = ()
    tags: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.mode not in POINT_MODES:
            raise ValueError(f"mode must be one of {POINT_MODES}, got {self.mode!r}")

    @classmethod
    def make(
        cls,
        config: TrainingConfig,
        mode: str = "sync",
        overrides: Optional[Mapping[str, Any]] = None,
        tags: Optional[Mapping[str, Any]] = None,
    ) -> "SweepPoint":
        """Build a point from plain dicts (the ergonomic constructor)."""
        return cls(
            config=config,
            mode=mode,
            overrides=_freeze(overrides),
            tags=_freeze(tags),
        )

    def override_dict(self) -> Dict[str, Any]:
        return dict(self.overrides)

    def tag_dict(self) -> Dict[str, Any]:
        return dict(self.tags)

    def describe(self) -> str:
        """Short human-readable label, e.g. ``lenet/b16/g4/nccl[async]``."""
        suffix = f"[{self.mode}]" if self.mode != "sync" else ""
        extra = "+" + ",".join(k for k, _ in self.overrides) if self.overrides else ""
        return f"{self.config.describe()}{suffix}{extra}"


@dataclass(frozen=True)
class SweepSpec:
    """A named, ordered collection of sweep points plus failure policies."""

    name: str
    points: Tuple[SweepPoint, ...] = ()
    oom_policy: OomPolicy = OomPolicy.RAISE
    failure_policy: FailurePolicy = FailurePolicy.RECORD

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[SweepPoint]:
        return iter(self.points)

    def __add__(self, other: "SweepSpec") -> "SweepSpec":
        """Concatenate two specs (the stricter policies win)."""
        policy = (
            OomPolicy.RAISE
            if OomPolicy.RAISE in (self.oom_policy, other.oom_policy)
            else self.oom_policy
        )
        failure = (
            FailurePolicy.RAISE
            if FailurePolicy.RAISE in (self.failure_policy, other.failure_policy)
            else self.failure_policy
        )
        return SweepSpec(
            name=f"{self.name}+{other.name}",
            points=self.points + other.points,
            oom_policy=policy,
            failure_policy=failure,
        )

    @classmethod
    def explicit(
        cls,
        name: str,
        points: Sequence[SweepPoint],
        oom_policy: OomPolicy = OomPolicy.RAISE,
        failure_policy: FailurePolicy = FailurePolicy.RECORD,
    ) -> "SweepSpec":
        """A spec from hand-constructed points (extension studies)."""
        return cls(name=name, points=tuple(points), oom_policy=oom_policy,
                   failure_policy=failure_policy)

    @classmethod
    def grid(
        cls,
        name: str,
        networks: Sequence[str],
        batch_sizes: Sequence[int],
        gpu_counts: Sequence[int],
        comm_methods: Sequence[CommMethodName] = (CommMethodName.NCCL,),
        scalings: Sequence[ScalingMode] = (ScalingMode.STRONG,),
        mode: str = "sync",
        oom_policy: OomPolicy = OomPolicy.RAISE,
        config_extra: Optional[Mapping[str, Any]] = None,
        overrides: Optional[Mapping[str, Any]] = None,
        tags: Optional[Mapping[str, Any]] = None,
    ) -> "SweepSpec":
        """The cross-product sweep the paper's artifacts are built from.

        Iteration order is deterministic and canonical: network, then
        communication method, then scaling mode, then batch size, then
        GPU count -- the same nesting every experiment module used to
        hand-roll.  ``config_extra`` passes fixed additional
        :class:`TrainingConfig` fields (``cluster_nodes``,
        ``overlap_bp_wu``, ...); ``overrides``/``tags`` apply to every
        point.
        """
        extra = dict(config_extra or {})
        frozen_overrides = _freeze(overrides)
        frozen_tags = _freeze(tags)
        points = tuple(
            SweepPoint(
                config=TrainingConfig(
                    network=network,
                    batch_size=batch,
                    num_gpus=gpus,
                    comm_method=method,
                    scaling=scaling,
                    **extra,
                ),
                mode=mode,
                overrides=frozen_overrides,
                tags=frozen_tags,
            )
            for network, method, scaling, batch, gpus in itertools.product(
                networks, comm_methods, scalings, batch_sizes, gpu_counts
            )
        )
        return cls(name=name, points=points, oom_policy=oom_policy)
