"""Core primitives shared by every subsystem.

This package holds the small, dependency-free building blocks of the
simulator: physical units (:mod:`repro.core.units`), calibrated hardware
constants (:mod:`repro.core.constants`), common exception types
(:mod:`repro.core.errors`) and run-level configuration objects
(:mod:`repro.core.config`).
"""

from repro.core.config import CommMethodName, ScalingMode, SimulationConfig, TrainingConfig
from repro.core.constants import CALIBRATION, CalibrationConstants
from repro.core.errors import (
    ConfigurationError,
    InvariantViolationError,
    OutOfMemoryError,
    ReproError,
    RoutingError,
    SimulationError,
    SweepInterrupted,
)
from repro.core.units import (
    GB,
    GIB,
    KB,
    KIB,
    MB,
    MIB,
    Bytes,
    Seconds,
    format_bytes,
    format_seconds,
    gbps,
)

__all__ = [
    "Bytes",
    "CALIBRATION",
    "CalibrationConstants",
    "CommMethodName",
    "ConfigurationError",
    "GB",
    "GIB",
    "InvariantViolationError",
    "KB",
    "KIB",
    "MB",
    "MIB",
    "OutOfMemoryError",
    "ReproError",
    "RoutingError",
    "ScalingMode",
    "Seconds",
    "SimulationConfig",
    "SimulationError",
    "SweepInterrupted",
    "TrainingConfig",
    "format_bytes",
    "format_seconds",
    "gbps",
]
