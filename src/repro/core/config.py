"""Run-level configuration objects.

:class:`TrainingConfig` describes one training experiment (network, batch
size, GPU count, communication method, dataset size); it validates itself on
construction so an invalid sweep fails fast.  :class:`SimulationConfig`
controls how the discrete-event simulation extrapolates steady-state
iterations to a full epoch.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.errors import ConfigurationError

#: The GPU counts the paper evaluates.
PAPER_GPU_COUNTS = (1, 2, 4, 8)
#: The per-GPU batch sizes the paper evaluates.
PAPER_BATCH_SIZES = (16, 32, 64)
#: The strong-scaling dataset: 256K ImageNet images.
PAPER_DATASET_IMAGES = 256 * 1024


class CommMethodName(str, enum.Enum):
    """Inter-GPU communication method, matching the paper's terminology."""

    P2P = "p2p"
    NCCL = "nccl"
    #: CPU aggregation over PCIe (MXNet ``kvstore=local``); not part of the
    #: paper's sweep but the baseline its background section contrasts.
    LOCAL = "local"
    #: Modern AllReduce with replicated local updates (DDP/Horovod style);
    #: the forward-looking comparison point.
    NCCL_ALLREDUCE = "nccl-allreduce"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class ScalingMode(str, enum.Enum):
    """Strong scaling keeps the dataset fixed; weak scaling grows it with N."""

    STRONG = "strong"
    WEAK = "weak"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Valid ``TrainingConfig.nccl_algorithm`` values.  ``"compat"`` pins the
#: pre-fidelity-layer ring model exactly (byte-stable golden outputs);
#: ``"auto"`` mirrors NCCL's internal cost-model selection; ``"ring"`` /
#: ``"tree"`` pin one algorithm.
NCCL_ALGORITHMS = ("compat", "auto", "ring", "tree")
#: Valid ``TrainingConfig.nccl_protocol`` values (see docs/COMM.md).
NCCL_PROTOCOLS = ("compat", "auto", "simple", "ll", "ll128")

#: Valid ``TrainingConfig.cluster_fabric`` values.  ``"compat"`` keeps the
#: aggregated width-4 InfiniBand attachment (byte-identical to the
#: pre-cluster-tier graph); the others select a
#: :class:`repro.topology.cluster.ClusterSpec` interconnect
#: (docs/SCALING.md).
CLUSTER_FABRICS = ("compat", "single-switch", "fat-tree")
#: Valid ``TrainingConfig.cluster_collective`` values.  ``"compat"`` keeps
#: the flat global NCCL ring; the hierarchical values enable the
#: rail-aware three-phase AllReduce with a ring or tree inter-node
#: exchange (docs/SCALING.md).
CLUSTER_COLLECTIVES = ("compat", "hierarchical-ring", "hierarchical-tree")
#: Valid ``TrainingConfig.cluster_fast_path`` values: how inter-node
#: collective segments are folded into the event timeline.  ``"auto"``
#: picks ``"event"`` up to 4 nodes and ``"analytic"`` beyond.
CLUSTER_FAST_PATHS = ("auto", "event", "analytic")


@dataclass(frozen=True)
class SimulationConfig:
    """Controls the event-level simulation of a training run.

    Training is periodic per iteration, so we simulate ``warmup_iterations``
    to reach steady state, then ``measure_iterations`` at full event fidelity
    and extrapolate the mean steady-state iteration time to the epoch's
    iteration count (plus once-per-run fixed costs).
    """

    warmup_iterations: int = 1
    measure_iterations: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.warmup_iterations < 0:
            raise ConfigurationError("warmup_iterations must be >= 0")
        if self.measure_iterations < 1:
            raise ConfigurationError("measure_iterations must be >= 1")


@dataclass(frozen=True)
class TrainingConfig:
    """One point of the paper's experimental sweep."""

    network: str
    batch_size: int
    num_gpus: int
    comm_method: CommMethodName = CommMethodName.NCCL
    scaling: ScalingMode = ScalingMode.STRONG
    dataset_images: int = PAPER_DATASET_IMAGES
    overlap_bp_wu: bool = True
    #: DGX-1 nodes in the system; >1 simulates an InfiniBand cluster
    #: (extension beyond the paper's single node, NCCL only).
    cluster_nodes: int = 1
    #: Communicate gradients/weights in half precision (halves WU traffic;
    #: an extension in the direction the paper's insights point).
    fp16_gradients: bool = False
    #: Optimizer name ('sgd', 'sgd-momentum', 'adam'); resolved by the
    #: trainer against :mod:`repro.train.optimizers`.
    optimizer: str = "sgd-momentum"
    #: NCCL collective algorithm: "compat" (default -- the pinned legacy
    #: ring model, byte-identical to pre-fidelity-layer outputs), "auto"
    #: (NCCL's cost-model selection per message size), "ring" or "tree".
    #: Ignored by non-NCCL communication methods.
    nccl_algorithm: str = "compat"
    #: NCCL wire protocol: "compat" (default), "auto", "simple", "ll" or
    #: "ll128".  "compat" must pair with ``nccl_algorithm="compat"``.
    nccl_protocol: str = "compat"
    #: Skip the model-zoo name check (for tests that monkeypatch the zoo
    #: or supply hand-built networks outside :mod:`repro.dnn.zoo`).
    custom_network: bool = False
    #: Training strategy (see :mod:`repro.train.strategies` and
    #: docs/TRAINING.md).  The default ``"auto"`` selects the synchronous
    #: strategy matching ``comm_method`` -- byte-identical to the
    #: pre-registry trainer -- while an explicit name ("p2p-tree",
    #: "nccl-collective", "nccl-allreduce-replicated", "ps-cpu",
    #: "ps-gpu", "async-update", "model-parallel") pins one point of the
    #: strategy matrix.
    strategy: str = "auto"
    #: Inter-node fabric: "compat" (default -- the aggregated width-4
    #: InfiniBand attachment, byte-identical to the pre-cluster-tier
    #: graph), "single-switch" or "fat-tree" (per-HCA rails; see
    #: docs/SCALING.md).  Ignored for single-node runs.
    cluster_fabric: str = "compat"
    #: Multi-node collective: "compat" (default -- the flat global NCCL
    #: ring), "hierarchical-ring" or "hierarchical-tree" (rail-aware
    #: reduce-scatter / inter-node exchange / allgather).  Requires an
    #: NCCL comm method, compat NCCL tuning, and full nodes.
    cluster_collective: str = "compat"
    #: How inter-node collective phases enter the event timeline:
    #: "auto" (default; "event" up to 4 nodes, "analytic" beyond),
    #: "event" (per-phase, per-rail events) or "analytic" (one
    #: closed-form segment per collective).  Only meaningful with a
    #: hierarchical ``cluster_collective``.
    cluster_fast_path: str = "auto"

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ConfigurationError(f"batch_size must be positive, got {self.batch_size}")
        if self.num_gpus < 1:
            raise ConfigurationError(f"num_gpus must be positive, got {self.num_gpus}")
        if self.cluster_nodes < 1:
            raise ConfigurationError("cluster_nodes must be positive")
        if self.num_gpus > 8 * self.cluster_nodes:
            raise ConfigurationError(
                f"num_gpus={self.num_gpus} does not fit the modeled topology: "
                f"{self.cluster_nodes} DGX-1 node(s) hold at most "
                f"{8 * self.cluster_nodes} GPUs (raise cluster_nodes to "
                "simulate a larger InfiniBand cluster)"
            )
        if not self.custom_network:
            # Imported lazily: the zoo sits above core in the layer order.
            from repro.dnn.zoo import available_networks

            if self.network not in available_networks():
                raise ConfigurationError(
                    f"unknown network {self.network!r}; available: "
                    f"{sorted(available_networks())} (pass custom_network=True "
                    "to bypass the zoo lookup)"
                )
        from repro.train.optimizers import get_optimizer

        get_optimizer(self.optimizer)  # raises ConfigurationError if unknown
        # Strategy x comm x topology validation matrix.  Imported lazily:
        # the strategy registry sits above core in the layer order.  This
        # replaces the old multi-node string check, which let incompatible
        # strategy/topology pairs (e.g. a parameter server spanning nodes)
        # slip through as soon as the wording drifted.
        from repro.train.strategies import validate_config

        validate_config(self)
        if self.dataset_images < 1:
            raise ConfigurationError("dataset_images must be positive")
        if self.nccl_algorithm not in NCCL_ALGORITHMS:
            raise ConfigurationError(
                f"nccl_algorithm must be one of {NCCL_ALGORITHMS}, "
                f"got {self.nccl_algorithm!r}"
            )
        if self.nccl_protocol not in NCCL_PROTOCOLS:
            raise ConfigurationError(
                f"nccl_protocol must be one of {NCCL_PROTOCOLS}, "
                f"got {self.nccl_protocol!r}"
            )
        if (self.nccl_algorithm == "compat") != (self.nccl_protocol == "compat"):
            raise ConfigurationError(
                "'compat' pins the whole legacy NCCL model: nccl_algorithm "
                "and nccl_protocol must both be 'compat' or neither "
                f"(got algorithm={self.nccl_algorithm!r}, "
                f"protocol={self.nccl_protocol!r})"
            )
        if self.cluster_fabric not in CLUSTER_FABRICS:
            raise ConfigurationError(
                f"cluster_fabric must be one of {CLUSTER_FABRICS}, "
                f"got {self.cluster_fabric!r}"
            )
        if self.cluster_collective not in CLUSTER_COLLECTIVES:
            raise ConfigurationError(
                f"cluster_collective must be one of {CLUSTER_COLLECTIVES}, "
                f"got {self.cluster_collective!r}"
            )
        if self.cluster_fast_path not in CLUSTER_FAST_PATHS:
            raise ConfigurationError(
                f"cluster_fast_path must be one of {CLUSTER_FAST_PATHS}, "
                f"got {self.cluster_fast_path!r}"
            )
        if self.cluster_collective != "compat":
            if self.comm_method not in (
                CommMethodName.NCCL,
                CommMethodName.NCCL_ALLREDUCE,
            ):
                raise ConfigurationError(
                    "hierarchical cluster collectives require an NCCL "
                    "communication method (nccl or nccl-allreduce), got "
                    f"{self.comm_method.value!r}"
                )
            if self.nccl_algorithm != "compat":
                raise ConfigurationError(
                    "hierarchical cluster collectives pin their own "
                    "intra/inter-node schedule; nccl_algorithm/nccl_protocol "
                    "must stay 'compat' (got "
                    f"algorithm={self.nccl_algorithm!r})"
                )
            if self.num_gpus != 8 * self.cluster_nodes:
                raise ConfigurationError(
                    "hierarchical cluster collectives assume full DGX-1 "
                    f"nodes: num_gpus must equal 8 * cluster_nodes "
                    f"(got num_gpus={self.num_gpus}, "
                    f"cluster_nodes={self.cluster_nodes})"
                )

    @property
    def total_images(self) -> int:
        """Images processed per epoch (weak scaling grows the dataset)."""
        if self.scaling is ScalingMode.WEAK:
            return self.dataset_images * self.num_gpus
        return self.dataset_images

    @property
    def global_batch_size(self) -> int:
        """Combined mini-batch across all GPUs per iteration."""
        return self.batch_size * self.num_gpus

    @property
    def iterations_per_epoch(self) -> int:
        """Number of synchronous-SGD iterations in one epoch."""
        images = self.total_images
        return max(1, -(-images // self.global_batch_size))  # ceil division

    def describe(self) -> str:
        """Short human-readable tag, e.g. ``alexnet/b32/g4/nccl``."""
        nodes = f"/n{self.cluster_nodes}" if self.cluster_nodes > 1 else ""
        tuning = (
            f"/{self.nccl_algorithm}+{self.nccl_protocol}"
            if self.nccl_algorithm != "compat"
            else ""
        )
        strat = f"/{self.strategy}" if self.strategy != "auto" else ""
        coll = (
            f"/{self.cluster_collective}"
            if self.cluster_collective != "compat"
            else ""
        )
        fabric = (
            f"/{self.cluster_fabric}" if self.cluster_fabric != "compat" else ""
        )
        return (
            f"{self.network}/b{self.batch_size}/g{self.num_gpus}/"
            f"{self.comm_method.value}{nodes}{tuning}{strat}{coll}{fabric}"
        )
