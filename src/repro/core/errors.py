"""Exception hierarchy for the repro library.

All library-specific failures derive from :class:`ReproError` so callers can
catch one base type at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError, ValueError):
    """An experiment or simulation configuration is invalid."""


class SimulationError(ReproError, RuntimeError):
    """The discrete-event engine reached an inconsistent state."""


class RoutingError(ReproError, LookupError):
    """No route exists between two nodes in the interconnect topology."""


class OutOfMemoryError(ReproError, MemoryError):
    """A GPU memory allocation exceeded device capacity.

    Mirrors the cudaErrorMemoryAllocation failures the paper hit when
    training Inception-v3/ResNet with batch sizes above 64 per GPU.
    """

    def __init__(self, device: str, requested: int, free: int) -> None:
        self.device = device
        self.requested = requested
        self.free = free
        super().__init__(
            f"{device}: allocation of {requested} bytes exceeds free memory ({free} bytes)"
        )


class ShapeError(ReproError, ValueError):
    """Layer shape inference failed (incompatible tensor dimensions)."""
