"""Exception hierarchy for the repro library.

All library-specific failures derive from :class:`ReproError` so callers can
catch one base type at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError, ValueError):
    """An experiment or simulation configuration is invalid."""


class SimulationError(ReproError, RuntimeError):
    """The discrete-event engine reached an inconsistent state."""


class RoutingError(ReproError, LookupError):
    """No route exists between two nodes in the interconnect topology."""


class OutOfMemoryError(ReproError, MemoryError):
    """A GPU memory allocation exceeded device capacity.

    Mirrors the cudaErrorMemoryAllocation failures the paper hit when
    training Inception-v3/ResNet with batch sizes above 64 per GPU.
    """

    def __init__(self, device: str, requested: int, free: int) -> None:
        self.device = device
        self.requested = requested
        self.free = free
        super().__init__(
            f"{device}: allocation of {requested} bytes exceeds free memory ({free} bytes)"
        )


class ShapeError(ReproError, ValueError):
    """Layer shape inference failed (incompatible tensor dimensions)."""


class FaultPlanError(ReproError, ValueError):
    """A fault-injection plan is malformed (bad window, scale, or target)."""


class WorkerCrashError(ReproError, RuntimeError):
    """A simulated worker GPU crashed under the FAIL_FAST resilience policy."""

    def __init__(self, gpu: int, iteration: int) -> None:
        self.gpu = gpu
        self.iteration = iteration
        super().__init__(
            f"gpu{gpu} crashed at iteration {iteration} (policy=fail-fast)"
        )


class InvariantViolationError(ReproError, AssertionError):
    """A physical invariant was violated while checks ran in strict mode.

    Raised by :class:`repro.checks.CheckEngine` when a registered checker
    (conservation, capacity, temporal, or structural) rejects a checkpoint
    payload and the engine's enforcement mode is ``strict``.  In ``warn``
    mode the same violation is logged and published to the observability
    bus instead of raising.
    """

    def __init__(self, invariant: str, checkpoint: str, message: str) -> None:
        self.invariant = invariant
        self.checkpoint = checkpoint
        self.message = message
        super().__init__(f"invariant {invariant} violated at {checkpoint}: {message}")


class SweepInterrupted(ReproError, RuntimeError):
    """A sweep was interrupted (SIGINT/SIGTERM) before all points finished.

    Completed points were already flushed to the :class:`ResultStore`; the
    CLI converts this into exit code 130 (the conventional SIGINT status).
    """

    def __init__(self, sweep: str, completed: int, total: int) -> None:
        self.sweep = sweep
        self.completed = completed
        self.total = total
        super().__init__(
            f"sweep {sweep!r} interrupted after {completed}/{total} point(s); "
            "completed results were flushed to the cache"
        )


class SweepPointError(ReproError, RuntimeError):
    """A sweep point exhausted its retries (or timed out) and was abandoned."""

    def __init__(self, point: str, attempts: int, cause: str) -> None:
        self.point = point
        self.attempts = attempts
        self.cause = cause
        super().__init__(
            f"sweep point {point} failed after {attempts} attempt(s): {cause}"
        )
