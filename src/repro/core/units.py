"""Physical units and formatting helpers.

The simulator works in SI base units throughout: **seconds** for time and
**bytes** for data.  Bandwidths are bytes/second.  These aliases and
constants make call sites self-documenting without introducing a heavyweight
unit system.
"""

from __future__ import annotations

# Type aliases used in signatures across the code base.  They are plain
# floats/ints at runtime; the names carry the unit.
Seconds = float
Bytes = int
BytesPerSecond = float

# Decimal (SI) sizes -- matches how link bandwidths are quoted (25 GB/s).
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000

# Binary sizes -- matches how device memory is quoted (16 GiB HBM2).
KIB = 1024
MIB = 1024**2
GIB = 1024**3

MICROSECOND = 1e-6
MILLISECOND = 1e-3


def gbps(value: float) -> BytesPerSecond:
    """Convert a bandwidth quoted in GB/s into bytes/second."""
    return value * GB


def format_bytes(n: float) -> str:
    """Render a byte count with a human-friendly binary suffix.

    >>> format_bytes(2.37 * GIB)
    '2.37 GiB'
    >>> format_bytes(512)
    '512 B'
    """
    value = float(n)
    for suffix, scale in (("GiB", GIB), ("MiB", MIB), ("KiB", KIB)):
        if abs(value) >= scale:
            return f"{value / scale:.2f} {suffix}"
    return f"{value:.0f} B"


def format_seconds(t: float) -> str:
    """Render a duration with an appropriate unit.

    >>> format_seconds(0.000012)
    '12.00 us'
    >>> format_seconds(90)
    '1m30.0s'
    """
    if t < 0:
        return "-" + format_seconds(-t)
    if t < MILLISECOND:
        return f"{t / MICROSECOND:.2f} us"
    if t < 1.0:
        return f"{t / MILLISECOND:.2f} ms"
    if t < 60.0:
        return f"{t:.2f} s"
    minutes, seconds = divmod(t, 60.0)
    return f"{int(minutes)}m{seconds:.1f}s"
