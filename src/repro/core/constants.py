"""Calibrated hardware and runtime constants.

Everything structural in the simulator (FLOP counts, tensor bytes, topology,
iteration counts) derives from first principles.  The handful of constants
that cannot be derived -- per-call software overheads and efficiency knees --
live here, each with documented provenance.  They were calibrated once
against the anchors the paper reports (see DESIGN.md section 4) and are not
tuned per experiment.

Provenance notes
----------------
* ``kernel_launch_overhead``: 3-10 us is the commonly measured CUDA kernel
  launch latency on x86 + V100 class systems.
* ``stream_sync_overhead``: host-side cost per device of the end-of-
  iteration stream synchronization (the cudaStreamSynchronize calls whose
  growth with GPU count Table III isolates); the time spent *waiting* for
  GPU work is computed by the simulator, this constant covers the engine
  wake-up/arbitration cost itself.
* ``nccl_group_sync_per_gpu``: per-iteration cost of rendezvousing all
  engine threads for the grouped NCCL launch; proportional to GPU count
  and independent of model size, which is why it dominates LeNet's NCCL
  scaling but is invisible for Inception-v3.
* ``p2p_copy_setup``: driver-side setup of one cudaMemcpyPeerAsync DMA.
* ``nccl_call_overhead``: enqueue + kernel-launch cost of one NCCL
  collective; NCCL 2.x collectives launch one cooperative kernel per device.
* ``nccl_epoch_fixed_overhead``: per-run communicator/stream/buffer setup
  that MXNet's NCCL KVStore pays; the paper's per-epoch measurements (5
  repetitions of short runs) include it, which is why Table II's overhead
  *grows* with batch size for the small networks (the epoch shrinks while
  this term does not).
* Efficiency knees: a V100 needs on the order of 10^8 FLOPs in flight per
  kernel to approach peak; below that launch/drain effects dominate.  The
  half-saturation constants encode that knee.
* NCCL protocol constants (``nccl_simple_*`` / ``nccl_ll*``): the
  Simple/LL/LL128 wire protocols differ in per-hop handshake latency and
  in how much of each wire line is payload.  The bandwidth ratios are
  protocol arithmetic (LL: 4 data bytes per 8-byte word; LL128: 120 data
  bytes per 128-byte line); the hop latencies are the measured per-hop
  costs these protocols exhibit on V100 NVLink systems.  Used only by the
  protocol fidelity layer (:mod:`repro.comm.nccl.protocol`) -- the
  compat path never reads them, so the calibrated paper figures are
  unaffected.  See docs/COMM.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class CalibrationConstants:
    """All tunable constants of the performance model, in SI units."""

    # --- CUDA runtime / driver software costs (seconds) ---
    kernel_launch_overhead: float = 4.5e-6
    stream_sync_overhead: float = 65.0e-6
    p2p_copy_setup: float = 20.0e-6
    host_dispatch_per_kernel: float = 2.0e-6

    # --- NCCL library costs ---
    nccl_call_overhead: float = 6.0e-6
    nccl_single_gpu_kernel: float = 7.0e-6   # Reduce/BroadcastKernel on 1 GPU, per array
    nccl_engine_tax: float = 1.0e-6          # per-GPU SM occupancy per collective
    nccl_group_sync_per_gpu: float = 195.0e-6  # per-iteration grouped-launch rendezvous
    nccl_epoch_fixed_overhead: float = 0.75  # communicator + stream setup per run
    nccl_chunk_bytes: int = 4 * 1024 * 1024  # ring pipelining granularity
    nccl_ring_step_latency: float = 1.0e-6   # per chunk-step hop latency
    nccl_bandwidth_efficiency: float = 0.80  # achieved fraction of link peak in rings

    # --- NCCL wire protocols (the Simple / LL / LL128 selection space) ---
    # Simple moves full cache lines but must fence and flush per hop;
    # LL packs 4B of data with a 4B validity flag per 8B word (half the
    # wire is flags, but receivers poll flags instead of fencing); LL128
    # exploits NVLink's 128B-atomic stores to carry 120 data bytes per
    # 128B line.  Ratios are protocol arithmetic; latencies are the
    # commonly measured per-hop handshake costs on V100 NVLink systems
    # (see "Demystifying NCCL", arXiv:2507.04786).
    nccl_simple_hop_latency: float = 6.0e-6   # per-hop sync + fence, Simple
    nccl_simple_flush_cost: float = 5.0e-6    # end-of-collective flush, Simple
    nccl_ll_hop_latency: float = 1.3e-6       # flag-polling hop cost, LL
    nccl_ll128_hop_latency: float = 2.2e-6    # per-hop cost, LL128
    nccl_ll_bandwidth_ratio: float = 0.50     # 4B data / 8B word on the wire
    nccl_ll128_bandwidth_ratio: float = 0.9375  # 120B data / 128B line
    nccl_ll_max_bytes: int = 1024 * 1024      # NCCL caps LL buffers (per op)

    # --- interconnect latencies (seconds, per hop) ---
    nvlink_latency: float = 1.8e-6
    pcie_latency: float = 5.0e-6
    qpi_latency: float = 3.0e-6
    infiniband_latency: float = 2.0e-6   # EDR switch + HCA, RDMA path

    # --- link efficiencies (achieved fraction of peak for large DMAs) ---
    nvlink_efficiency: float = 0.92
    pcie_efficiency: float = 0.80

    # --- GPU compute efficiency model ---
    # Achieved throughput = peak * work / (work + half_saturation_work).
    fp32_half_saturation_flops: float = 1.5e8
    tensor_half_saturation_flops: float = 1.0e9
    memory_half_saturation_bytes: float = 5.0e6
    max_compute_efficiency: float = 0.78
    # Fraction of conv/dense FLOPs eligible for tensor cores (fp16 matmul
    # paths that cuDNN actually selects in the MXNet 18.04 container).
    tensor_core_fraction: float = 0.55

    # --- framework (MXNet) costs ---
    # Once-per-run startup: CUDA stream creation, cuDNN autotune, engine
    # spin-up.  Weak scaling amortizes this over a growing dataset, which
    # is why the paper's weak-scaling speedups beat strong scaling,
    # dramatically so for LeNet.
    run_startup_overhead: float = 0.2
    # CPU-side work per iteration to schedule the dependency engine.
    framework_iteration_overhead: float = 25.0e-6
    # Input pipeline: decode + H2D staging is overlapped with compute; a
    # residual per-iteration cost plus a small exposed per-image cost
    # remain (the latter is why batch-size doubling falls slightly short
    # of halving LeNet's epoch time -- x1.92/x3.67 in the paper).
    input_pipeline_residual: float = 8.0e-6
    input_cost_per_image: float = 3.0e-6

    # --- memory model (bytes / ratios) ---
    cuda_context_bytes: int = 360 * 1000 * 1000   # driver + cuDNN/cuBLAS handles
    framework_reserved_bytes: int = 140 * 1000 * 1000
    # Training keeps the materialized forward activations (gradient buffers
    # are recycled by MXNet's memory planner): bytes * multiplier.
    activation_training_multiplier: float = 1.0
    # Per-convolution cuDNN workspace: im2col-sized, batch-proportional,
    # capped per operator (MXNet caches one workspace per autotuned op).
    cudnn_per_op_workspace_cap: int = 64 * 1000 * 1000
    # GPU0 additionally stores the aggregation buffers of the KVStore.
    server_extra_copies: int = 2

    def scaled(self, **overrides: float) -> "CalibrationConstants":
        """Return a copy with the given fields replaced (for ablations)."""
        return replace(self, **overrides)


#: Library-wide default calibration.  Experiments take a ``constants``
#: argument, so ablation studies can pass modified copies without mutating
#: global state.
CALIBRATION = CalibrationConstants()
