"""Network container: a DAG of named layers with shape inference."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.errors import ConfigurationError, ShapeError
from repro.dnn.layers.base import Layer
from repro.dnn.shapes import Shape

#: Reserved node name for the network input tensor.
INPUT = "@input"


@dataclass(frozen=True)
class NetworkNode:
    """One layer instance wired to its predecessors."""

    layer: Layer
    inputs: Tuple[str, ...]
    #: Optional tag grouping layers into a structural module (e.g. the
    #: inception module or residual block a layer belongs to).
    module: Optional[str] = None


class Network:
    """An immutable-once-built DAG of layers.

    Nodes are appended with :meth:`add`; predecessors must already exist, so
    insertion order is a topological order by construction.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._nodes: Dict[str, NetworkNode] = {}
        self._order: List[str] = []
        self._output: Optional[str] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(
        self,
        layer: Layer,
        inputs: Sequence[str] | str = INPUT,
        module: Optional[str] = None,
    ) -> str:
        """Append ``layer``; returns its name for wiring successors."""
        if isinstance(inputs, str):
            inputs = (inputs,)
        if layer.name in self._nodes or layer.name == INPUT:
            raise ConfigurationError(f"duplicate layer name {layer.name!r}")
        if not inputs:
            raise ConfigurationError(f"{layer.name}: needs at least one input")
        for src in inputs:
            if src != INPUT and src not in self._nodes:
                raise ConfigurationError(
                    f"{layer.name}: unknown input {src!r} (predecessors must be added first)"
                )
        self._nodes[layer.name] = NetworkNode(layer, tuple(inputs), module)
        self._order.append(layer.name)
        self._output = layer.name
        return layer.name

    def set_output(self, name: str) -> None:
        if name not in self._nodes:
            raise ConfigurationError(f"unknown output node {name!r}")
        self._output = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def output(self) -> str:
        if self._output is None:
            raise ConfigurationError("empty network has no output")
        return self._output

    @property
    def layer_names(self) -> Tuple[str, ...]:
        """Topological order of layers."""
        return tuple(self._order)

    def __len__(self) -> int:
        return len(self._order)

    def node(self, name: str) -> NetworkNode:
        try:
            return self._nodes[name]
        except KeyError:
            raise ConfigurationError(f"no layer named {name!r} in {self.name}") from None

    def nodes(self) -> Iterable[Tuple[str, NetworkNode]]:
        for name in self._order:
            yield name, self._nodes[name]

    def modules(self) -> Tuple[str, ...]:
        """Distinct module tags, in first-appearance order."""
        seen: List[str] = []
        for _, node in self.nodes():
            if node.module is not None and node.module not in seen:
                seen.append(node.module)
        return tuple(seen)

    # ------------------------------------------------------------------
    # Shape inference
    # ------------------------------------------------------------------
    def infer_shapes(self, input_shape: Shape) -> Dict[str, Shape]:
        """Per-sample output shape of every layer, keyed by layer name."""
        shapes: Dict[str, Shape] = {INPUT: input_shape}
        for name, node in self.nodes():
            try:
                in_shapes = [shapes[s] for s in node.inputs]
            except KeyError as missing:
                raise ShapeError(f"{name}: input {missing} has no shape") from None
            shapes[name] = node.layer.infer_shape(in_shapes)
        return shapes
