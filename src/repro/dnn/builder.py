"""A small fluent DSL for constructing networks.

The builder keeps a *cursor* (the most recently added node) so sequential
architectures read top-to-bottom; branch-and-merge structures (inception
modules, residual blocks) capture the cursor, build each branch from it, and
merge with :meth:`concat` or :meth:`add_residual`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.dnn.layers import (
    LRN,
    Activation,
    Add,
    AvgPool2d,
    BatchNorm,
    Concat,
    Conv2d,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool,
    MaxPool2d,
    Softmax,
)
from repro.dnn.network import INPUT, Network


class NetworkBuilder:
    """Builds a :class:`~repro.dnn.network.Network` incrementally."""

    def __init__(self, name: str) -> None:
        self.network = Network(name)
        self.cursor: str = INPUT
        self._seq = 0

    # ------------------------------------------------------------------
    # Naming
    # ------------------------------------------------------------------
    def _name(self, prefix: str, name: Optional[str]) -> str:
        if name is not None:
            return name
        self._seq += 1
        return f"{prefix}{self._seq}"

    def _append(self, layer, inputs=None, module: Optional[str] = None) -> str:
        src = self.cursor if inputs is None else inputs
        self.cursor = self.network.add(layer, src, module=module)
        return self.cursor

    # ------------------------------------------------------------------
    # Layers
    # ------------------------------------------------------------------
    def conv(
        self,
        out_channels: int,
        kernel,
        stride=1,
        pad=0,
        groups: int = 1,
        act: Optional[str] = "relu",
        bn: bool = False,
        name: Optional[str] = None,
        module: Optional[str] = None,
    ) -> str:
        """Convolution, optionally followed by batch norm and activation."""
        base = self._name("conv", name)
        self._append(
            Conv2d(base, out_channels, kernel, stride=stride, pad=pad, groups=groups,
                   bias=not bn),
            module=module,
        )
        if bn:
            self._append(BatchNorm(f"{base}.bn"), module=module)
        if act is not None:
            self._append(Activation(f"{base}.{act}", act), module=module)
        return self.cursor

    def maxpool(self, kernel, stride=None, pad=0, ceil_mode=False,
                name: Optional[str] = None, module: Optional[str] = None) -> str:
        return self._append(
            MaxPool2d(self._name("maxpool", name), kernel, stride, pad, ceil_mode),
            module=module,
        )

    def avgpool(self, kernel, stride=None, pad=0, ceil_mode=False,
                name: Optional[str] = None, module: Optional[str] = None) -> str:
        return self._append(
            AvgPool2d(self._name("avgpool", name), kernel, stride, pad, ceil_mode),
            module=module,
        )

    def global_avgpool(self, name: Optional[str] = None,
                       module: Optional[str] = None) -> str:
        return self._append(GlobalAvgPool(self._name("gap", name)), module=module)

    def flatten(self, name: Optional[str] = None) -> str:
        return self._append(Flatten(self._name("flatten", name)))

    def dense(self, units: int, act: Optional[str] = None,
              name: Optional[str] = None, module: Optional[str] = None) -> str:
        base = self._name("fc", name)
        self._append(Dense(base, units), module=module)
        if act is not None:
            self._append(Activation(f"{base}.{act}", act), module=module)
        return self.cursor

    def dropout(self, rate: float = 0.5, name: Optional[str] = None) -> str:
        return self._append(Dropout(self._name("dropout", name), rate))

    def lrn(self, local_size: int = 5, name: Optional[str] = None) -> str:
        return self._append(LRN(self._name("lrn", name), local_size))

    def softmax(self, name: Optional[str] = None) -> str:
        return self._append(Softmax(self._name("softmax", name)))

    # ------------------------------------------------------------------
    # Branch & merge
    # ------------------------------------------------------------------
    def at(self, node: str) -> "NetworkBuilder":
        """Move the cursor to an existing node (to start a branch)."""
        if node != INPUT:
            self.network.node(node)  # validate
        self.cursor = node
        return self

    def concat(self, branches: Sequence[str], name: Optional[str] = None,
               module: Optional[str] = None) -> str:
        return self._append(
            Concat(self._name("concat", name)), inputs=list(branches), module=module
        )

    def add_residual(self, a: str, b: str, name: Optional[str] = None,
                     module: Optional[str] = None) -> str:
        base = self._name("add", name)
        self._append(Add(base), inputs=[a, b], module=module)
        self._append(Activation(f"{base}.relu", "relu"), module=module)
        return self.cursor

    def build(self) -> Network:
        return self.network
