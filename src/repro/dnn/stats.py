"""Compilation of a network into the quantities the simulator consumes.

``compile_network`` runs shape inference once and derives, per layer:
parameter arrays, forward/backward FLOPs per sample, and activation bytes.
The resulting :class:`NetworkStats` feeds three consumers:

* the GPU kernel model (FLOPs and bytes per kernel),
* the communicators (the list of gradient/weight arrays, i.e. KVStore keys),
* the memory model (activation and parameter footprints).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dnn.layers.base import Layer, LayerKind, ParamArray
from repro.dnn.network import INPUT, Network
from repro.dnn.shapes import Shape

#: All tensors are single-precision in the paper's MXNet container.
DTYPE_BYTES = 4


@dataclass(frozen=True)
class WeightArray:
    """One KVStore key: a learnable array owned by a layer."""

    key: int
    name: str
    numel: int
    layer: str

    @property
    def nbytes(self) -> int:
        return self.numel * DTYPE_BYTES


@dataclass(frozen=True)
class CompiledLayer:
    """Per-layer cost summary (per sample, batch-independent)."""

    name: str
    kind: LayerKind
    module: Optional[str]
    output_shape: Shape
    input_numel: int
    output_numel: int
    forward_flops: float
    backward_flops: float
    backward_kernels: int
    param_numel: int

    @property
    def output_bytes(self) -> int:
        return self.output_numel * DTYPE_BYTES

    @property
    def is_weighted(self) -> bool:
        return self.param_numel > 0

    @property
    def im2col_bytes(self) -> int:
        """Per-sample im2col patch-matrix size (convolutions only).

        ``forward_flops = 2 * patch_elements * out_channels``, so the patch
        matrix holds ``forward_flops / (2 * out_channels)`` elements.  This
        bounds the cuDNN workspace the fastest algorithms request.
        """
        if self.kind is not LayerKind.CONV or not self.output_numel:
            return 0
        return (
            int(self.forward_flops / 2) * DTYPE_BYTES
            // max(1, self.output_shape.channels)
        )

    @property
    def allocates_output(self) -> bool:
        """Whether the layer materializes a new output buffer.

        MXNet's memory planner runs element-wise activations and dropout
        in place and implements flatten as a view, so those layers do not
        contribute to the activation footprint.
        """
        return self.kind not in (
            LayerKind.ACTIVATION,
            LayerKind.DROPOUT,
            LayerKind.RESHAPE,
        )


@dataclass(frozen=True)
class NetworkStats:
    """Everything the simulator needs to know about one network."""

    name: str
    input_shape: Shape
    layers: Tuple[CompiledLayer, ...]
    weight_arrays: Tuple[WeightArray, ...]

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def total_params(self) -> int:
        return sum(w.numel for w in self.weight_arrays)

    @property
    def model_bytes(self) -> int:
        """Bytes of the parameter set (and of one gradient set)."""
        return self.total_params * DTYPE_BYTES

    @property
    def forward_flops_per_sample(self) -> float:
        return sum(l.forward_flops for l in self.layers)

    @property
    def backward_flops_per_sample(self) -> float:
        return sum(l.backward_flops for l in self.layers)

    @property
    def activation_numel_per_sample(self) -> int:
        """Sum of all layer outputs (the feature maps kept for BP)."""
        return sum(l.output_numel for l in self.layers)

    @property
    def activation_bytes_per_sample(self) -> int:
        return self.activation_numel_per_sample * DTYPE_BYTES

    @property
    def materialized_activation_bytes_per_sample(self) -> int:
        """Bytes of feature maps actually allocated per sample.

        Excludes in-place layers (see
        :attr:`CompiledLayer.allocates_output`); this is the quantity the
        memory model scales with batch size.
        """
        return sum(l.output_bytes for l in self.layers if l.allocates_output)

    @property
    def largest_im2col_bytes_per_sample(self) -> int:
        """The largest single convolution's im2col workspace per sample."""
        return max((l.im2col_bytes for l in self.layers), default=0)

    @property
    def conv_im2col_bytes_per_sample(self) -> Tuple[int, ...]:
        """Per-convolution im2col sizes (one workspace is cached per op)."""
        return tuple(l.im2col_bytes for l in self.layers if l.im2col_bytes > 0)

    @property
    def largest_output_bytes(self) -> int:
        return max(l.output_bytes for l in self.layers)

    def count_layers(self, kind: LayerKind) -> int:
        return sum(1 for l in self.layers if l.kind is kind)

    @property
    def conv_layer_count(self) -> int:
        return self.count_layers(LayerKind.CONV)

    @property
    def fc_layer_count(self) -> int:
        return self.count_layers(LayerKind.FC)

    @property
    def module_count(self) -> int:
        modules = {l.module for l in self.layers if l.module is not None}
        return len(modules)

    @property
    def weighted_layer_count(self) -> int:
        return sum(1 for l in self.layers if l.is_weighted)

    def arrays_of_layer(self, layer_name: str) -> Tuple[WeightArray, ...]:
        return tuple(w for w in self.weight_arrays if w.layer == layer_name)


def compile_network(network: Network, input_shape: Shape) -> NetworkStats:
    """Run shape inference and cost accounting over ``network``."""
    shapes = network.infer_shapes(input_shape)
    layers: List[CompiledLayer] = []
    arrays: List[WeightArray] = []
    key = 0
    for name, node in network.nodes():
        in_shapes = [shapes[s] for s in node.inputs]
        out_shape = shapes[name]
        params = node.layer.param_arrays(in_shapes)
        for p in params:
            arrays.append(WeightArray(key=key, name=p.name, numel=p.numel, layer=name))
            key += 1
        layers.append(
            CompiledLayer(
                name=name,
                kind=node.layer.kind,
                module=node.module,
                output_shape=out_shape,
                input_numel=sum(s.numel for s in in_shapes),
                output_numel=out_shape.numel,
                forward_flops=node.layer.forward_flops(in_shapes, out_shape),
                backward_flops=node.layer.backward_flops(in_shapes, out_shape),
                backward_kernels=node.layer.backward_kernel_count(),
                param_numel=sum(p.numel for p in params),
            )
        )
    return NetworkStats(
        name=network.name,
        input_shape=input_shape,
        layers=tuple(layers),
        weight_arrays=tuple(arrays),
    )
