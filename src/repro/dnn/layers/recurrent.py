"""Recurrent layers: embedding lookup and LSTM.

The framework studies the paper builds on (Shi et al.) profile three
workload classes -- FCNs, CNNs and RNNs; these layers let the simulator
cover the third.  Sequences use rank-2 per-sample shapes ``(T, F)``
(timesteps x features); token inputs are rank-1 ``(T,)``.

An LSTM is communication-light per FLOP (weights are reused across all T
timesteps) but hard to parallelize across the time dimension -- its
kernels are many and small, which is the LeNet-like regime of the paper's
analysis.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.core.errors import ShapeError
from repro.dnn.layers.base import Layer, LayerKind, ParamArray
from repro.dnn.shapes import Shape


class Embedding(Layer):
    """Token-id lookup table: ``(T,) -> (T, dim)``."""

    kind = LayerKind.FC

    def __init__(self, name: str, vocab_size: int, dim: int) -> None:
        super().__init__(name)
        if vocab_size < 1 or dim < 1:
            raise ShapeError(f"{name}: vocab_size and dim must be positive")
        self.vocab_size = int(vocab_size)
        self.dim = int(dim)

    def infer_shape(self, inputs: Sequence[Shape]) -> Shape:
        self._check_arity(inputs)
        x = inputs[0]
        if x.rank != 1:
            raise ShapeError(f"{self.name}: embedding expects a (T,) token sequence")
        return Shape(x.dims[0], self.dim)

    def param_arrays(self, inputs: Sequence[Shape]) -> Tuple[ParamArray, ...]:
        return (ParamArray(f"{self.name}.weight", self.vocab_size * self.dim),)

    def forward_flops(self, inputs: Sequence[Shape], output: Shape) -> float:
        # a gather: one copy per output element
        return float(output.numel)

    def param_arrays_possible(self) -> bool:
        return True


class LSTM(Layer):
    """Single-direction LSTM over a sequence: ``(T, F) -> (T, H)``.

    Per timestep the four gates compute ``4H x (F + H)`` matrix-vector
    products plus elementwise gate math; forward FLOPs are
    ``T * (8H(F + H) + 24H)`` (2 FLOPs per MAC convention).  Backward
    through time costs roughly double, like the other weighted layers.
    """

    kind = LayerKind.FC

    def __init__(self, name: str, hidden_size: int) -> None:
        super().__init__(name)
        if hidden_size < 1:
            raise ShapeError(f"{name}: hidden_size must be positive")
        self.hidden_size = int(hidden_size)

    def infer_shape(self, inputs: Sequence[Shape]) -> Shape:
        self._check_arity(inputs)
        x = inputs[0]
        if x.rank != 2:
            raise ShapeError(f"{self.name}: LSTM expects a (T, F) sequence input")
        return Shape(x.dims[0], self.hidden_size)

    def _in_features(self, inputs: Sequence[Shape]) -> int:
        return inputs[0].dims[1]

    def param_arrays(self, inputs: Sequence[Shape]) -> Tuple[ParamArray, ...]:
        f, h = self._in_features(inputs), self.hidden_size
        return (
            ParamArray(f"{self.name}.weight_ih", 4 * h * f),
            ParamArray(f"{self.name}.weight_hh", 4 * h * h),
            ParamArray(f"{self.name}.bias", 8 * h),
        )

    def forward_flops(self, inputs: Sequence[Shape], output: Shape) -> float:
        t = inputs[0].dims[0]
        f, h = self._in_features(inputs), self.hidden_size
        return float(t) * (8.0 * h * (f + h) + 24.0 * h)

    def backward_flops(self, inputs: Sequence[Shape], output: Shape) -> float:
        return 2.0 * self.forward_flops(inputs, output)

    def param_arrays_possible(self) -> bool:
        return True


class SequenceLast(Layer):
    """Select the final timestep: ``(T, F) -> (F,)`` (a view, zero cost)."""

    kind = LayerKind.RESHAPE

    def infer_shape(self, inputs: Sequence[Shape]) -> Shape:
        self._check_arity(inputs)
        x = inputs[0]
        if x.rank != 2:
            raise ShapeError(f"{self.name}: expects a (T, F) sequence input")
        return Shape(x.dims[1])

    def forward_flops(self, inputs: Sequence[Shape], output: Shape) -> float:
        return 0.0

    def backward_kernel_count(self) -> int:
        return 0
