"""Fully connected layers and the flatten adapter."""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.dnn.layers.base import Layer, LayerKind, ParamArray
from repro.dnn.shapes import Shape


class Flatten(Layer):
    """Collapse a (C, H, W) feature map into a flat vector; zero cost."""

    kind = LayerKind.RESHAPE

    def infer_shape(self, inputs: Sequence[Shape]) -> Shape:
        self._check_arity(inputs)
        return Shape(inputs[0].numel)

    def forward_flops(self, inputs: Sequence[Shape], output: Shape) -> float:
        return 0.0

    def backward_kernel_count(self) -> int:
        return 0


class Dense(Layer):
    """Fully connected layer: ``y = W x + b``.

    FLOPs: ``2 * in_features * out_features`` forward; backward computes
    dgrad and wgrad, each a matmul of the same size.
    """

    kind = LayerKind.FC

    def __init__(self, name: str, units: int, bias: bool = True) -> None:
        super().__init__(name)
        self.units = int(units)
        self.bias = bias
        if self.units < 1:
            raise ValueError(f"{name}: units must be positive")

    def infer_shape(self, inputs: Sequence[Shape]) -> Shape:
        self._check_arity(inputs)
        return Shape(self.units)

    def param_arrays(self, inputs: Sequence[Shape]) -> Tuple[ParamArray, ...]:
        in_features = inputs[0].numel
        arrays = [ParamArray(f"{self.name}.weight", in_features * self.units)]
        if self.bias:
            arrays.append(ParamArray(f"{self.name}.bias", self.units))
        return tuple(arrays)

    def forward_flops(self, inputs: Sequence[Shape], output: Shape) -> float:
        return 2.0 * inputs[0].numel * self.units

    def backward_flops(self, inputs: Sequence[Shape], output: Shape) -> float:
        return 2.0 * self.forward_flops(inputs, output)

    def param_arrays_possible(self) -> bool:
        return True
