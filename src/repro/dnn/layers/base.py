"""Layer base class.

A layer declares shape inference, its learnable parameter arrays, and
per-sample FLOP counts for forward and backward.  FLOPs count multiply and
add separately (one MAC = 2 FLOPs), matching the convention of the V100's
quoted 15.7 TFLOP/s.

Backward cost convention: for parameterized layers backward runs two
kernels, data-gradient (dgrad) and weight-gradient (wgrad), each roughly as
expensive as forward; element-wise layers run one backward kernel of
forward cost.  These are standard cuDNN cost relationships.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.core.errors import ShapeError
from repro.dnn.shapes import Shape


class LayerKind(str, enum.Enum):
    """Layer taxonomy used for costing and Table I accounting."""

    CONV = "conv"
    FC = "fc"
    POOL = "pool"
    ACTIVATION = "activation"
    NORM = "norm"
    MERGE = "merge"
    DROPOUT = "dropout"
    RESHAPE = "reshape"
    LOSS = "loss"


@dataclass(frozen=True)
class ParamArray:
    """One learnable array: the unit of KVStore communication."""

    name: str
    numel: int
    dtype_bytes: int = 4

    @property
    def nbytes(self) -> int:
        return self.numel * self.dtype_bytes


class Layer(abc.ABC):
    """Abstract layer of the IR.

    ``n_inputs`` is the number of predecessor tensors the layer consumes
    (``None`` means variadic, e.g. concat).
    """

    kind: LayerKind
    n_inputs: int | None = 1

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("layer name must be non-empty")
        self.name = name

    # ------------------------------------------------------------------
    # Shape and parameters
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def infer_shape(self, inputs: Sequence[Shape]) -> Shape:
        """Per-sample output shape given per-sample input shapes."""

    def param_arrays(self, inputs: Sequence[Shape]) -> Tuple[ParamArray, ...]:
        """Learnable arrays; default none."""
        return ()

    def param_count(self, inputs: Sequence[Shape]) -> int:
        return sum(p.numel for p in self.param_arrays(inputs))

    # ------------------------------------------------------------------
    # Cost model (per sample)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def forward_flops(self, inputs: Sequence[Shape], output: Shape) -> float:
        """Forward FLOPs per sample."""

    def backward_flops(self, inputs: Sequence[Shape], output: Shape) -> float:
        """Backward FLOPs per sample; default mirrors forward."""
        return self.forward_flops(inputs, output)

    def backward_kernel_count(self) -> int:
        """Number of backward kernels (dgrad/wgrad split for weighted layers)."""
        return 2 if self.param_arrays_possible() else 1

    def param_arrays_possible(self) -> bool:
        """Whether this layer type ever carries parameters."""
        return False

    # ------------------------------------------------------------------
    # Validation helpers
    # ------------------------------------------------------------------
    def _check_arity(self, inputs: Sequence[Shape]) -> None:
        if self.n_inputs is not None and len(inputs) != self.n_inputs:
            raise ShapeError(
                f"{self.name}: expected {self.n_inputs} input(s), got {len(inputs)}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
