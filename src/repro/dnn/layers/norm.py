"""Batch normalization."""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.core.errors import ShapeError
from repro.dnn.layers.base import Layer, LayerKind, ParamArray
from repro.dnn.shapes import Shape


class BatchNorm(Layer):
    """Per-channel batch normalization with learnable scale and shift.

    Carries two learnable arrays (gamma, beta) of ``channels`` elements;
    the running statistics are not learnable and do not enter gradient
    communication.
    """

    kind = LayerKind.NORM

    def infer_shape(self, inputs: Sequence[Shape]) -> Shape:
        self._check_arity(inputs)
        return inputs[0]

    def _channels(self, inputs: Sequence[Shape]) -> int:
        x = inputs[0]
        return x.channels if x.is_spatial else x.features

    def param_arrays(self, inputs: Sequence[Shape]) -> Tuple[ParamArray, ...]:
        c = self._channels(inputs)
        return (
            ParamArray(f"{self.name}.gamma", c),
            ParamArray(f"{self.name}.beta", c),
        )

    def forward_flops(self, inputs: Sequence[Shape], output: Shape) -> float:
        # normalize (subtract, divide) + scale + shift per element, plus the
        # reduction for the batch statistics (~2 passes).
        return 6.0 * output.numel

    def param_arrays_possible(self) -> bool:
        return True
