"""2-D convolution."""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.core.errors import ShapeError
from repro.dnn.layers.base import Layer, LayerKind, ParamArray
from repro.dnn.shapes import Shape, conv_output_hw


class Conv2d(Layer):
    """Standard (optionally grouped) 2-D convolution.

    FLOPs: ``2 * K_h * K_w * C_in/groups * C_out * H_out * W_out`` per
    sample forward; backward runs dgrad + wgrad, each of comparable cost,
    for a total of twice the forward FLOPs.
    """

    kind = LayerKind.CONV

    def __init__(
        self,
        name: str,
        out_channels: int,
        kernel: int | Tuple[int, int],
        stride: int | Tuple[int, int] = 1,
        pad: int | Tuple[int, int] = 0,
        groups: int = 1,
        bias: bool = True,
    ) -> None:
        super().__init__(name)
        self.out_channels = int(out_channels)
        self.kernel = _pair(kernel)
        self.stride = _pair(stride)
        self.pad = _pair(pad)
        self.groups = int(groups)
        self.bias = bias
        if self.out_channels < 1:
            raise ShapeError(f"{name}: out_channels must be positive")
        if self.groups < 1 or self.out_channels % self.groups:
            raise ShapeError(f"{name}: groups must divide out_channels")

    def infer_shape(self, inputs: Sequence[Shape]) -> Shape:
        self._check_arity(inputs)
        x = inputs[0]
        if not x.is_spatial:
            raise ShapeError(f"{self.name}: convolution needs a (C, H, W) input, got {x}")
        if x.channels % self.groups:
            raise ShapeError(f"{self.name}: groups must divide input channels")
        h = conv_output_hw(x.height, self.kernel[0], self.stride[0], self.pad[0])
        w = conv_output_hw(x.width, self.kernel[1], self.stride[1], self.pad[1])
        return Shape(self.out_channels, h, w)

    def param_arrays(self, inputs: Sequence[Shape]) -> Tuple[ParamArray, ...]:
        x = inputs[0]
        weight = (
            self.out_channels
            * (x.channels // self.groups)
            * self.kernel[0]
            * self.kernel[1]
        )
        arrays = [ParamArray(f"{self.name}.weight", weight)]
        if self.bias:
            arrays.append(ParamArray(f"{self.name}.bias", self.out_channels))
        return tuple(arrays)

    def forward_flops(self, inputs: Sequence[Shape], output: Shape) -> float:
        x = inputs[0]
        macs = (
            output.numel
            * (x.channels // self.groups)
            * self.kernel[0]
            * self.kernel[1]
        )
        return 2.0 * macs

    def backward_flops(self, inputs: Sequence[Shape], output: Shape) -> float:
        return 2.0 * self.forward_flops(inputs, output)

    def param_arrays_possible(self) -> bool:
        return True


def _pair(value: int | Tuple[int, int]) -> Tuple[int, int]:
    if isinstance(value, tuple):
        if len(value) != 2:
            raise ShapeError(f"expected (h, w) pair, got {value}")
        return (int(value[0]), int(value[1]))
    return (int(value), int(value))
