"""Pooling layers."""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.core.errors import ShapeError
from repro.dnn.layers.base import Layer, LayerKind
from repro.dnn.layers.conv import _pair
from repro.dnn.shapes import Shape, conv_output_hw


class _Pool2d(Layer):
    """Shared machinery for max/average pooling."""

    kind = LayerKind.POOL
    #: FLOPs per output element (comparison or addition per window element).
    _flops_per_window_element = 1.0

    def __init__(
        self,
        name: str,
        kernel: int | Tuple[int, int],
        stride: int | Tuple[int, int] | None = None,
        pad: int | Tuple[int, int] = 0,
        ceil_mode: bool = False,
    ) -> None:
        super().__init__(name)
        self.kernel = _pair(kernel)
        self.stride = _pair(stride if stride is not None else kernel)
        self.pad = _pair(pad)
        self.ceil_mode = ceil_mode

    def infer_shape(self, inputs: Sequence[Shape]) -> Shape:
        self._check_arity(inputs)
        x = inputs[0]
        if not x.is_spatial:
            raise ShapeError(f"{self.name}: pooling needs a (C, H, W) input, got {x}")
        h = self._extent(x.height, 0)
        w = self._extent(x.width, 1)
        return Shape(x.channels, h, w)

    def _extent(self, size: int, axis: int) -> int:
        if self.ceil_mode:
            padded = size + 2 * self.pad[axis] - self.kernel[axis]
            out = -(-padded // self.stride[axis]) + 1
            if out < 1:
                raise ShapeError(f"{self.name}: window does not fit input extent {size}")
            return out
        return conv_output_hw(size, self.kernel[axis], self.stride[axis], self.pad[axis])

    def forward_flops(self, inputs: Sequence[Shape], output: Shape) -> float:
        window = self.kernel[0] * self.kernel[1]
        return output.numel * window * self._flops_per_window_element


class MaxPool2d(_Pool2d):
    """Max pooling; one comparison per window element."""


class AvgPool2d(_Pool2d):
    """Average pooling; one addition per window element plus the divide."""

    _flops_per_window_element = 1.0


class GlobalAvgPool(Layer):
    """Average over all spatial positions, producing a flat feature vector."""

    kind = LayerKind.POOL

    def infer_shape(self, inputs: Sequence[Shape]) -> Shape:
        self._check_arity(inputs)
        x = inputs[0]
        if not x.is_spatial:
            raise ShapeError(f"{self.name}: global pooling needs a (C, H, W) input")
        return Shape(x.channels)

    def forward_flops(self, inputs: Sequence[Shape], output: Shape) -> float:
        return float(inputs[0].numel)
