"""Layer types of the DNN IR."""

from repro.dnn.layers.base import Layer, LayerKind, ParamArray
from repro.dnn.layers.activation import LRN, Activation, Dropout, Softmax
from repro.dnn.layers.conv import Conv2d
from repro.dnn.layers.dense import Dense, Flatten
from repro.dnn.layers.merge import Add, Concat
from repro.dnn.layers.norm import BatchNorm
from repro.dnn.layers.pool import AvgPool2d, GlobalAvgPool, MaxPool2d
from repro.dnn.layers.recurrent import LSTM, Embedding, SequenceLast

__all__ = [
    "Activation",
    "Add",
    "AvgPool2d",
    "BatchNorm",
    "Concat",
    "Conv2d",
    "Dense",
    "Dropout",
    "Embedding",
    "Flatten",
    "GlobalAvgPool",
    "LRN",
    "LSTM",
    "Layer",
    "LayerKind",
    "MaxPool2d",
    "ParamArray",
    "SequenceLast",
    "Softmax",
]
