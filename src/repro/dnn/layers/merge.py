"""Multi-input merge layers: concat (inception) and add (residual)."""

from __future__ import annotations

from typing import Sequence

from repro.core.errors import ShapeError
from repro.dnn.layers.base import Layer, LayerKind
from repro.dnn.shapes import Shape


class Concat(Layer):
    """Channel-axis concatenation of feature maps (inception modules)."""

    kind = LayerKind.MERGE
    n_inputs = None  # variadic

    def infer_shape(self, inputs: Sequence[Shape]) -> Shape:
        if len(inputs) < 2:
            raise ShapeError(f"{self.name}: concat needs at least two inputs")
        first = inputs[0]
        if not first.is_spatial:
            raise ShapeError(f"{self.name}: concat expects (C, H, W) inputs")
        for shape in inputs[1:]:
            if not shape.is_spatial or (shape.height, shape.width) != (
                first.height,
                first.width,
            ):
                raise ShapeError(
                    f"{self.name}: spatial dims must match, got {first} vs {shape}"
                )
        channels = sum(s.channels for s in inputs)
        return Shape(channels, first.height, first.width)

    def forward_flops(self, inputs: Sequence[Shape], output: Shape) -> float:
        return 0.0  # pure data movement; bytes are accounted separately


class Add(Layer):
    """Element-wise addition (residual shortcut)."""

    kind = LayerKind.MERGE
    n_inputs = 2

    def infer_shape(self, inputs: Sequence[Shape]) -> Shape:
        self._check_arity(inputs)
        a, b = inputs
        if a != b:
            raise ShapeError(f"{self.name}: addend shapes differ, {a} vs {b}")
        return a

    def forward_flops(self, inputs: Sequence[Shape], output: Shape) -> float:
        return float(output.numel)
