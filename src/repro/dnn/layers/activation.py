"""Element-wise activations, LRN, dropout and softmax."""

from __future__ import annotations

from typing import Sequence

from repro.dnn.layers.base import Layer, LayerKind
from repro.dnn.shapes import Shape


class Activation(Layer):
    """Element-wise nonlinearity (relu, sigmoid, tanh)."""

    kind = LayerKind.ACTIVATION
    _COSTS = {"relu": 1.0, "sigmoid": 4.0, "tanh": 6.0}

    def __init__(self, name: str, function: str = "relu") -> None:
        super().__init__(name)
        if function not in self._COSTS:
            raise ValueError(f"{name}: unknown activation {function!r}")
        self.function = function

    def infer_shape(self, inputs: Sequence[Shape]) -> Shape:
        self._check_arity(inputs)
        return inputs[0]

    def forward_flops(self, inputs: Sequence[Shape], output: Shape) -> float:
        return output.numel * self._COSTS[self.function]


class Softmax(Layer):
    """Softmax over a flat feature vector (the classifier output)."""

    kind = LayerKind.LOSS

    def infer_shape(self, inputs: Sequence[Shape]) -> Shape:
        self._check_arity(inputs)
        return inputs[0]

    def forward_flops(self, inputs: Sequence[Shape], output: Shape) -> float:
        # exp + sum + divide per element.
        return 6.0 * output.numel


class LRN(Layer):
    """Local response normalization (AlexNet/GoogLeNet era)."""

    kind = LayerKind.NORM

    def __init__(self, name: str, local_size: int = 5) -> None:
        super().__init__(name)
        self.local_size = int(local_size)

    def infer_shape(self, inputs: Sequence[Shape]) -> Shape:
        self._check_arity(inputs)
        return inputs[0]

    def forward_flops(self, inputs: Sequence[Shape], output: Shape) -> float:
        # A window of squares plus scaling per element.
        return output.numel * (self.local_size + 3.0)


class Dropout(Layer):
    """Dropout; masks elements during training."""

    kind = LayerKind.DROPOUT

    def __init__(self, name: str, rate: float = 0.5) -> None:
        super().__init__(name)
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"{name}: dropout rate must be in [0, 1)")
        self.rate = rate

    def infer_shape(self, inputs: Sequence[Shape]) -> Shape:
        self._check_arity(inputs)
        return inputs[0]

    def forward_flops(self, inputs: Sequence[Shape], output: Shape) -> float:
        return 2.0 * output.numel  # RNG compare + mask multiply
