"""DNN intermediate representation and model zoo.

Networks are DAGs of :class:`~repro.dnn.layers.Layer` objects with shape
inference, parameter/FLOP/activation accounting, and the five workloads the
paper profiles (LeNet, AlexNet, GoogLeNet, Inception-v3, ResNet-50) built
layer by layer in :mod:`repro.dnn.zoo`.
"""

from repro.dnn.network import Network
from repro.dnn.shapes import Shape
from repro.dnn.stats import CompiledLayer, NetworkStats, WeightArray, compile_network
from repro.dnn.zoo import available_networks, build_network, network_input_shape

__all__ = [
    "CompiledLayer",
    "Network",
    "NetworkStats",
    "Shape",
    "WeightArray",
    "available_networks",
    "build_network",
    "compile_network",
    "network_input_shape",
]
