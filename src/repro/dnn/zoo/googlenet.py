"""GoogLeNet / Inception-v1 (Szegedy et al., 2015).

Nine inception modules over a convolutional stem; ~7M parameters.  The
auxiliary classifiers are omitted, matching inference-graph training setups
and keeping the weight-array list identical across iterations.
"""

from __future__ import annotations

from typing import Tuple

from repro.dnn.builder import NetworkBuilder
from repro.dnn.network import Network

NUM_CLASSES = 1000

#: (c1, c3_reduce, c3, c5_reduce, c5, pool_proj) per module.
INCEPTION_V1_CONFIGS: Tuple[Tuple[str, Tuple[int, int, int, int, int, int]], ...] = (
    ("3a", (64, 96, 128, 16, 32, 32)),
    ("3b", (128, 128, 192, 32, 96, 64)),
    ("4a", (192, 96, 208, 16, 48, 64)),
    ("4b", (160, 112, 224, 24, 64, 64)),
    ("4c", (128, 128, 256, 24, 64, 64)),
    ("4d", (112, 144, 288, 32, 64, 64)),
    ("4e", (256, 160, 320, 32, 128, 128)),
    ("5a", (256, 160, 320, 32, 128, 128)),
    ("5b", (384, 192, 384, 48, 128, 128)),
)


def _inception_module(b: NetworkBuilder, tag: str,
                      config: Tuple[int, int, int, int, int, int]) -> str:
    """One v1 inception module: four parallel branches, concatenated."""
    c1, c3r, c3, c5r, c5, pp = config
    module = f"inception_{tag}"
    entry = b.cursor

    branch1 = b.at(entry).conv(c1, 1, name=f"{module}.b1", module=module)
    b.at(entry).conv(c3r, 1, name=f"{module}.b2r", module=module)
    branch2 = b.conv(c3, 3, pad=1, name=f"{module}.b2", module=module)
    b.at(entry).conv(c5r, 1, name=f"{module}.b3r", module=module)
    branch3 = b.conv(c5, 5, pad=2, name=f"{module}.b3", module=module)
    b.at(entry).maxpool(3, stride=1, pad=1, name=f"{module}.pool", module=module)
    branch4 = b.conv(pp, 1, name=f"{module}.b4", module=module)

    return b.concat([branch1, branch2, branch3, branch4],
                    name=f"{module}.out", module=module)


def build_googlenet(num_classes: int = NUM_CLASSES) -> Network:
    """GoogLeNet on 224x224 inputs."""
    b = NetworkBuilder("googlenet")
    b.conv(64, 7, stride=2, pad=3, name="conv1")
    b.maxpool(3, stride=2, ceil_mode=True, name="pool1")
    b.lrn(name="lrn1")
    b.conv(64, 1, name="conv2r")
    b.conv(192, 3, pad=1, name="conv2")
    b.lrn(name="lrn2")
    b.maxpool(3, stride=2, ceil_mode=True, name="pool2")

    for tag, config in INCEPTION_V1_CONFIGS:
        _inception_module(b, tag, config)
        if tag in ("3b", "4e"):
            b.maxpool(3, stride=2, ceil_mode=True, name=f"pool_{tag}")

    b.global_avgpool(name="gap")
    b.dropout(0.4, name="drop")
    b.dense(num_classes, name="fc")
    b.softmax()
    return b.build()
