"""VGG-16 (Simonyan & Zisserman, 2015).

Not part of the paper's five workloads, but the canonical communication
stress test: 138M parameters (89% in three FC layers) make it the most
gradient-heavy common architecture -- useful for extending the paper's
P2P-vs-NCCL analysis beyond AlexNet.
"""

from __future__ import annotations

from typing import Tuple

from repro.dnn.builder import NetworkBuilder
from repro.dnn.network import Network

NUM_CLASSES = 1000

#: (channels, convs) per block of the 16-layer configuration "D".
VGG16_BLOCKS: Tuple[Tuple[int, int], ...] = (
    (64, 2),
    (128, 2),
    (256, 3),
    (512, 3),
    (512, 3),
)


def build_vgg16(num_classes: int = NUM_CLASSES) -> Network:
    """VGG-16 on 224x224 inputs."""
    b = NetworkBuilder("vgg16")
    for block, (channels, convs) in enumerate(VGG16_BLOCKS, start=1):
        for i in range(convs):
            b.conv(channels, 3, pad=1, name=f"conv{block}_{i + 1}",
                   module=f"block{block}")
        b.maxpool(2, name=f"pool{block}", module=f"block{block}")
    b.flatten()
    b.dense(4096, act="relu", name="fc6")
    b.dropout(0.5, name="drop6")
    b.dense(4096, act="relu", name="fc7")
    b.dropout(0.5, name="drop7")
    b.dense(num_classes, name="fc8")
    b.softmax()
    return b.build()
