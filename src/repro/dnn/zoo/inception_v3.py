"""Inception-v3 (Szegedy et al., 2016).

Eleven inception modules (A x3, B, C x4, D, E x2) over a convolutional
stem, batch norm after every convolution, ~24M parameters and the largest
activation footprint of the paper's five workloads (299x299 inputs).
"""

from __future__ import annotations

from repro.dnn.builder import NetworkBuilder
from repro.dnn.network import Network

NUM_CLASSES = 1000


def _conv_bn(b: NetworkBuilder, out_ch: int, kernel, stride=1, pad=0,
             name: str = "", module: str | None = None) -> str:
    return b.conv(out_ch, kernel, stride=stride, pad=pad, bn=True, name=name,
                  module=module)


def _inception_a(b: NetworkBuilder, tag: str, pool_features: int) -> str:
    """35x35 module: 1x1, 5x5, double-3x3 and pooled branches."""
    module = f"mixed_{tag}"
    entry = b.cursor
    br1 = _conv_bn(b.at(entry), 64, 1, name=f"{module}.b1", module=module)
    _conv_bn(b.at(entry), 48, 1, name=f"{module}.b5r", module=module)
    br2 = _conv_bn(b, 64, 5, pad=2, name=f"{module}.b5", module=module)
    _conv_bn(b.at(entry), 64, 1, name=f"{module}.b3r", module=module)
    _conv_bn(b, 96, 3, pad=1, name=f"{module}.b3a", module=module)
    br3 = _conv_bn(b, 96, 3, pad=1, name=f"{module}.b3b", module=module)
    b.at(entry).avgpool(3, stride=1, pad=1, name=f"{module}.pool", module=module)
    br4 = _conv_bn(b, pool_features, 1, name=f"{module}.bp", module=module)
    return b.concat([br1, br2, br3, br4], name=f"{module}.out", module=module)


def _inception_b(b: NetworkBuilder, tag: str) -> str:
    """Grid reduction 35x35 -> 17x17."""
    module = f"mixed_{tag}"
    entry = b.cursor
    br1 = _conv_bn(b.at(entry), 384, 3, stride=2, name=f"{module}.b3", module=module)
    _conv_bn(b.at(entry), 64, 1, name=f"{module}.b3dr", module=module)
    _conv_bn(b, 96, 3, pad=1, name=f"{module}.b3da", module=module)
    br2 = _conv_bn(b, 96, 3, stride=2, name=f"{module}.b3db", module=module)
    br3 = b.at(entry).maxpool(3, stride=2, name=f"{module}.pool", module=module)
    return b.concat([br1, br2, br3], name=f"{module}.out", module=module)


def _inception_c(b: NetworkBuilder, tag: str, c7: int) -> str:
    """17x17 module with factorized 7x7 convolutions."""
    module = f"mixed_{tag}"
    entry = b.cursor
    br1 = _conv_bn(b.at(entry), 192, 1, name=f"{module}.b1", module=module)
    _conv_bn(b.at(entry), c7, 1, name=f"{module}.b7r", module=module)
    _conv_bn(b, c7, (1, 7), pad=(0, 3), name=f"{module}.b7a", module=module)
    br2 = _conv_bn(b, 192, (7, 1), pad=(3, 0), name=f"{module}.b7b", module=module)
    _conv_bn(b.at(entry), c7, 1, name=f"{module}.b7dr", module=module)
    _conv_bn(b, c7, (7, 1), pad=(3, 0), name=f"{module}.b7da", module=module)
    _conv_bn(b, c7, (1, 7), pad=(0, 3), name=f"{module}.b7db", module=module)
    _conv_bn(b, c7, (7, 1), pad=(3, 0), name=f"{module}.b7dc", module=module)
    br3 = _conv_bn(b, 192, (1, 7), pad=(0, 3), name=f"{module}.b7dd", module=module)
    b.at(entry).avgpool(3, stride=1, pad=1, name=f"{module}.pool", module=module)
    br4 = _conv_bn(b, 192, 1, name=f"{module}.bp", module=module)
    return b.concat([br1, br2, br3, br4], name=f"{module}.out", module=module)


def _inception_d(b: NetworkBuilder, tag: str) -> str:
    """Grid reduction 17x17 -> 8x8."""
    module = f"mixed_{tag}"
    entry = b.cursor
    _conv_bn(b.at(entry), 192, 1, name=f"{module}.b3r", module=module)
    br1 = _conv_bn(b, 320, 3, stride=2, name=f"{module}.b3", module=module)
    _conv_bn(b.at(entry), 192, 1, name=f"{module}.b7r", module=module)
    _conv_bn(b, 192, (1, 7), pad=(0, 3), name=f"{module}.b7a", module=module)
    _conv_bn(b, 192, (7, 1), pad=(3, 0), name=f"{module}.b7b", module=module)
    br2 = _conv_bn(b, 192, 3, stride=2, name=f"{module}.b7c", module=module)
    br3 = b.at(entry).maxpool(3, stride=2, name=f"{module}.pool", module=module)
    return b.concat([br1, br2, br3], name=f"{module}.out", module=module)


def _inception_e(b: NetworkBuilder, tag: str) -> str:
    """8x8 module with expanded (1x3 / 3x1) branch fan-outs."""
    module = f"mixed_{tag}"
    entry = b.cursor
    br1 = _conv_bn(b.at(entry), 320, 1, name=f"{module}.b1", module=module)
    mid2 = _conv_bn(b.at(entry), 384, 1, name=f"{module}.b3r", module=module)
    b2a = _conv_bn(b.at(mid2), 384, (1, 3), pad=(0, 1), name=f"{module}.b3a", module=module)
    b2b = _conv_bn(b.at(mid2), 384, (3, 1), pad=(1, 0), name=f"{module}.b3b", module=module)
    br2 = b.concat([b2a, b2b], name=f"{module}.b3out", module=module)
    _conv_bn(b.at(entry), 448, 1, name=f"{module}.b3dr", module=module)
    mid3 = _conv_bn(b, 384, 3, pad=1, name=f"{module}.b3da", module=module)
    b3a = _conv_bn(b.at(mid3), 384, (1, 3), pad=(0, 1), name=f"{module}.b3db", module=module)
    b3b = _conv_bn(b.at(mid3), 384, (3, 1), pad=(1, 0), name=f"{module}.b3dc", module=module)
    br3 = b.concat([b3a, b3b], name=f"{module}.b3dout", module=module)
    b.at(entry).avgpool(3, stride=1, pad=1, name=f"{module}.pool", module=module)
    br4 = _conv_bn(b, 192, 1, name=f"{module}.bp", module=module)
    return b.concat([br1, br2, br3, br4], name=f"{module}.out", module=module)


def build_inception_v3(num_classes: int = NUM_CLASSES) -> Network:
    """Inception-v3 on 299x299 inputs."""
    b = NetworkBuilder("inception-v3")
    _conv_bn(b, 32, 3, stride=2, name="stem1")
    _conv_bn(b, 32, 3, name="stem2")
    _conv_bn(b, 64, 3, pad=1, name="stem3")
    b.maxpool(3, stride=2, name="stem_pool1")
    _conv_bn(b, 80, 1, name="stem4")
    _conv_bn(b, 192, 3, name="stem5")
    b.maxpool(3, stride=2, name="stem_pool2")

    _inception_a(b, "5b", pool_features=32)
    _inception_a(b, "5c", pool_features=64)
    _inception_a(b, "5d", pool_features=64)
    _inception_b(b, "6a")
    _inception_c(b, "6b", c7=128)
    _inception_c(b, "6c", c7=160)
    _inception_c(b, "6d", c7=160)
    _inception_c(b, "6e", c7=192)
    _inception_d(b, "7a")
    _inception_e(b, "7b")
    _inception_e(b, "7c")

    b.global_avgpool(name="gap")
    b.dropout(0.5, name="drop")
    b.dense(num_classes, name="fc")
    b.softmax()
    return b.build()
