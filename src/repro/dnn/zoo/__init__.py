"""The five DNN workloads the paper profiles (plus VGG-16 as an extension).

Each builder returns a :class:`~repro.dnn.network.Network`; input
resolutions follow the paper (299x299 for Inception-v3, 224x224 for AlexNet,
GoogLeNet and ResNet, the classic 32x32 for LeNet).  All classifiers
emit 1000 ImageNet classes.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.core.errors import ConfigurationError
from repro.dnn.network import Network
from repro.dnn.shapes import Shape
from repro.dnn.zoo.alexnet import build_alexnet
from repro.dnn.zoo.googlenet import build_googlenet
from repro.dnn.zoo.inception_v3 import build_inception_v3
from repro.dnn.zoo.lenet import build_lenet
from repro.dnn.zoo.resnet import build_resnet50
from repro.dnn.zoo.rnn import SEQ_LEN, build_lstm
from repro.dnn.zoo.vgg import build_vgg16

_REGISTRY: Dict[str, Tuple[Callable[[], Network], Shape]] = {
    "lenet": (build_lenet, Shape(3, 32, 32)),
    "alexnet": (build_alexnet, Shape(3, 224, 224)),
    "googlenet": (build_googlenet, Shape(3, 224, 224)),
    "inception-v3": (build_inception_v3, Shape(3, 299, 299)),
    "resnet": (build_resnet50, Shape(3, 224, 224)),
    "vgg16": (build_vgg16, Shape(3, 224, 224)),
    "lstm": (build_lstm, Shape(SEQ_LEN)),
}

#: Names in the order the paper lists them.
PAPER_NETWORKS = ("lenet", "alexnet", "resnet", "googlenet", "inception-v3")


def available_networks() -> Tuple[str, ...]:
    """All registered network names."""
    return tuple(_REGISTRY)


def build_network(name: str) -> Network:
    """Instantiate a network from the zoo by name."""
    try:
        builder, _ = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown network {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return builder()


def network_input_shape(name: str) -> Shape:
    """The per-sample input shape used for ``name`` in the paper."""
    try:
        _, shape = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown network {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return shape


__all__ = [
    "PAPER_NETWORKS",
    "available_networks",
    "build_alexnet",
    "build_googlenet",
    "build_inception_v3",
    "build_lenet",
    "build_lstm",
    "build_network",
    "build_vgg16",
    "build_resnet50",
    "network_input_shape",
]
