"""ResNet-50 (He et al., 2016).

Bottleneck residual blocks with batch norm; ~25.6M parameters, 224x224
inputs (at 299x299 the batch-64 activation footprint would exceed the
V100's 16 GiB, contradicting the paper's own memory findings).
"""

from __future__ import annotations

from typing import Tuple

from repro.dnn.builder import NetworkBuilder
from repro.dnn.network import Network

NUM_CLASSES = 1000

#: (blocks, bottleneck width, output width, first stride) per stage.
RESNET50_STAGES: Tuple[Tuple[int, int, int, int], ...] = (
    (3, 64, 256, 1),
    (4, 128, 512, 2),
    (6, 256, 1024, 2),
    (3, 512, 2048, 2),
)


def _bottleneck(b: NetworkBuilder, tag: str, width: int, out_channels: int,
                stride: int, project: bool) -> str:
    """One bottleneck block: 1x1 -> 3x3 -> 1x1 plus the shortcut."""
    module = f"block_{tag}"
    entry = b.cursor
    b.conv(width, 1, bn=True, name=f"{module}.a", module=module)
    b.conv(width, 3, stride=stride, pad=1, bn=True, name=f"{module}.b", module=module)
    main = b.conv(out_channels, 1, bn=True, act=None, name=f"{module}.c", module=module)
    if project:
        shortcut = b.at(entry).conv(
            out_channels, 1, stride=stride, bn=True, act=None,
            name=f"{module}.proj", module=module,
        )
    else:
        shortcut = entry
    return b.add_residual(main, shortcut, name=f"{module}.add", module=module)


def build_resnet50(num_classes: int = NUM_CLASSES) -> Network:
    """ResNet-50 on 224x224 inputs."""
    b = NetworkBuilder("resnet")
    b.conv(64, 7, stride=2, pad=3, bn=True, name="conv1")
    b.maxpool(3, stride=2, pad=1, name="pool1")

    for stage_idx, (blocks, width, out_channels, first_stride) in enumerate(
        RESNET50_STAGES, start=2
    ):
        for block_idx in range(blocks):
            stride = first_stride if block_idx == 0 else 1
            _bottleneck(
                b,
                tag=f"{stage_idx}{chr(ord('a') + block_idx)}",
                width=width,
                out_channels=out_channels,
                stride=stride,
                project=block_idx == 0,
            )

    b.global_avgpool(name="gap")
    b.dense(num_classes, name="fc")
    b.softmax()
    return b.build()
