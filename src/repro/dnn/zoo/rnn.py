"""A two-layer LSTM language-model classifier (the RNN workload class).

Matches the medium LSTM configurations the framework benchmarks of the
era used: 10K vocabulary, 512-wide embedding and hidden states, sequence
length 64 -- about 15M parameters dominated by the embedding and output
projection, with the time-unrolled recurrent compute the paper's
LeNet-style analysis applies to (many small kernels per sample).
"""

from __future__ import annotations

from repro.dnn.layers.recurrent import LSTM, Embedding, SequenceLast
from repro.dnn.network import Network

VOCAB_SIZE = 10_000
EMBED_DIM = 512
HIDDEN_SIZE = 512
SEQ_LEN = 64


def build_lstm(
    vocab_size: int = VOCAB_SIZE,
    embed_dim: int = EMBED_DIM,
    hidden_size: int = HIDDEN_SIZE,
    layers: int = 2,
) -> Network:
    """Embedding -> stacked LSTMs -> last state -> vocabulary softmax."""
    from repro.dnn.layers import Dense, Dropout, Softmax

    net = Network("lstm")
    net.add(Embedding("embed", vocab_size, embed_dim))
    previous = "embed"
    for i in range(layers):
        previous = net.add(LSTM(f"lstm{i + 1}", hidden_size), previous)
        previous = net.add(Dropout(f"drop{i + 1}", 0.2), previous)
    net.add(SequenceLast("last"), previous)
    net.add(Dense("proj", vocab_size), "last")
    net.add(Softmax("softmax"), "proj")
    return net
