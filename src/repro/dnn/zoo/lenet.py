"""LeNet-5 (LeCun et al., 1998), adapted to RGB input and 1000 classes.

The paper uses LeNet as its smallest workload: two convolution layers,
three fully connected layers, on the order of 10^5 parameters -- small
enough that communication and CUDA API overheads dominate its training.
"""

from __future__ import annotations

from repro.dnn.builder import NetworkBuilder
from repro.dnn.network import Network

#: Classifier width (ImageNet classes, matching the paper's dataset).
NUM_CLASSES = 1000


def build_lenet(num_classes: int = NUM_CLASSES) -> Network:
    """Classic LeNet-5 on 32x32 inputs."""
    b = NetworkBuilder("lenet")
    b.conv(6, 5, act="tanh", name="c1")
    b.maxpool(2, name="s2")
    b.conv(16, 5, act="tanh", name="c3")
    b.maxpool(2, name="s4")
    b.flatten()
    b.dense(120, act="tanh", name="f5")
    b.dense(84, act="tanh", name="f6")
    b.dense(num_classes, name="output")
    b.softmax()
    return b.build()
