"""AlexNet (Krizhevsky et al., 2012), single-tower variant.

Five convolution layers, three fully connected layers, ~61M parameters --
the paper's example of a *communication-heavy but compute-light* workload:
few layers, but very large gradient arrays (the two 4096-wide FC layers
hold >90% of the weights).
"""

from __future__ import annotations

from repro.dnn.builder import NetworkBuilder
from repro.dnn.network import Network

NUM_CLASSES = 1000


def build_alexnet(num_classes: int = NUM_CLASSES) -> Network:
    """Single-tower AlexNet on 224x224 inputs (torchvision channel widths)."""
    b = NetworkBuilder("alexnet")
    b.conv(64, 11, stride=4, pad=2, name="conv1")
    b.lrn(name="lrn1")
    b.maxpool(3, stride=2, name="pool1")
    b.conv(192, 5, pad=2, name="conv2")
    b.lrn(name="lrn2")
    b.maxpool(3, stride=2, name="pool2")
    b.conv(384, 3, pad=1, name="conv3")
    b.conv(256, 3, pad=1, name="conv4")
    b.conv(256, 3, pad=1, name="conv5")
    b.maxpool(3, stride=2, name="pool5")
    b.flatten()
    b.dropout(0.5, name="drop6")
    b.dense(4096, act="relu", name="fc6")
    b.dropout(0.5, name="drop7")
    b.dense(4096, act="relu", name="fc7")
    b.dense(num_classes, name="fc8")
    b.softmax()
    return b.build()
