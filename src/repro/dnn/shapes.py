"""Per-sample tensor shapes.

Shapes exclude the batch dimension: a convolutional feature map is
``Shape(channels, height, width)`` and a flat feature vector is
``Shape(features)``.  All layers operate on these per-sample shapes; batch
size enters only when the GPU model converts element counts into work.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import prod
from typing import Tuple

from repro.core.errors import ShapeError


@dataclass(frozen=True, order=True)
class Shape:
    """An immutable per-sample tensor shape."""

    dims: Tuple[int, ...]

    def __init__(self, *dims: int) -> None:
        if not dims:
            raise ShapeError("shape needs at least one dimension")
        if any(d < 1 for d in dims):
            raise ShapeError(f"shape dimensions must be positive, got {dims}")
        object.__setattr__(self, "dims", tuple(int(d) for d in dims))

    @property
    def rank(self) -> int:
        return len(self.dims)

    @property
    def numel(self) -> int:
        """Elements per sample."""
        return prod(self.dims)

    @property
    def is_spatial(self) -> bool:
        """True for (C, H, W) feature maps."""
        return self.rank == 3

    @property
    def channels(self) -> int:
        self._require_spatial()
        return self.dims[0]

    @property
    def height(self) -> int:
        self._require_spatial()
        return self.dims[1]

    @property
    def width(self) -> int:
        self._require_spatial()
        return self.dims[2]

    @property
    def features(self) -> int:
        if self.rank != 1:
            raise ShapeError(f"expected a flat shape, got {self}")
        return self.dims[0]

    def _require_spatial(self) -> None:
        if not self.is_spatial:
            raise ShapeError(f"expected a (C, H, W) shape, got {self}")

    def __str__(self) -> str:
        return "x".join(str(d) for d in self.dims)


def conv_output_hw(size: int, kernel: int, stride: int, pad: int) -> int:
    """Output spatial extent of a convolution/pool along one axis."""
    out = (size + 2 * pad - kernel) // stride + 1
    if out < 1:
        raise ShapeError(
            f"kernel {kernel} (stride {stride}, pad {pad}) does not fit input extent {size}"
        )
    return out
