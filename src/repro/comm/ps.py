"""GPU parameter server: flat-star P2P reduction onto GPU0.

The ``ps-gpu`` strategy promotes the parameter-server execution model to
a first-class synchronous strategy (tensorpack's
``SyncMultiGPUTrainerParameterServer`` with the server pinned to a GPU):
every worker DMAs its full gradient straight to GPU0 in one stage, GPU0
runs the optimizer update, and the fresh weights fan back out -- no tree
stages, no big-array sharding.  Compared with the binomial ``p2p-tree``
schedule this trades stage parallelism for schedule simplicity: all
N-1 transfers land on GPU0's links and its dispatch thread, which is
exactly the GPU0 hot spot the paper measures, amplified.

Implementation-wise this is the :class:`~repro.comm.p2p.P2PCommunicator`
machinery with a one-stage star schedule and the sharded big-array path
disabled (a parameter server keeps whole arrays on the server).
"""

from __future__ import annotations

from typing import Generator, List, Tuple

from repro.comm.p2p import P2PCommunicator
from repro.dnn.stats import WeightArray
from repro.sim.events import Event


class PsGpuCommunicator(P2PCommunicator):
    """Flat-star parameter-server synchronization with a GPU0 server."""

    name = "ps-gpu"

    def _plan_stages(self, num_gpus: int) -> List[List[Tuple[int, int]]]:
        """One stage: every worker position sends straight to position 0."""
        if num_gpus <= 1:
            return []
        return [[(src, 0) for src in range(1, num_gpus)]]

    def sync_array(self, array: WeightArray) -> Generator[Event, None, None]:
        if self.num_gpus == 1:
            # Single GPU: just the local optimizer update.
            yield self.env.process(
                self.server.run_kernel(self._update_kernel(array)))
            return
        # Whole arrays always aggregate on the server -- the BIGARRAY
        # sharding of the tree schedule never applies.
        yield self.env.process(self._tree_reduce(array))
        yield self.env.process(
            self.server.run_kernel(self._update_kernel(array)))
        yield self.env.process(self._tree_broadcast(array))
