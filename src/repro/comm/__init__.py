"""Inter-GPU communication methods for the weight-update stage.

Two implementations of the :class:`~repro.comm.base.Communicator` interface
match the paper's comparison:

* :class:`~repro.comm.p2p.P2PCommunicator` -- MXNet's ``device`` KVStore:
  cudaMemcpyPeer DMAs arranged as a binomial reduction tree onto GPU0,
  an SGD update on GPU0, and a binomial broadcast tree back out.
* :class:`~repro.comm.nccl.NcclCommunicator` -- MXNet's ``nccl`` KVStore:
  topology-aware ring Reduce/Broadcast collectives with chunk pipelining,
  per-call launch overhead and a per-run communicator-setup cost.

A third method, :class:`~repro.comm.local.LocalCommunicator` (MXNet's
``local`` KVStore: CPU aggregation over PCIe), serves as the PCIe-era
baseline the paper's background section contrasts against.
"""

from repro.comm.base import Communicator
from repro.comm.local import LocalCommunicator
from repro.comm.nccl import (
    HierarchicalNcclCommunicator,
    NcclAllReduceCommunicator,
    NcclCommunicator,
)
from repro.comm.p2p import P2PCommunicator, reduction_tree
from repro.comm.ps import PsGpuCommunicator

__all__ = [
    "Communicator",
    "HierarchicalNcclCommunicator",
    "LocalCommunicator",
    "NcclAllReduceCommunicator",
    "NcclCommunicator",
    "P2PCommunicator",
    "PsGpuCommunicator",
    "reduction_tree",
]

#: Keyword arguments only the hierarchical cluster communicator takes.
_CLUSTER_KWARGS = (
    "cluster_nodes", "rails", "rail_bandwidth", "rail_latency",
    "inter_algorithm", "fast_path",
)


def make_communicator(name, *args, **kwargs) -> Communicator:
    """Factory keyed by :class:`~repro.core.config.CommMethodName` or string.

    The NCCL-family constructors additionally take ``algorithm`` /
    ``protocol`` keywords (the :class:`~repro.core.config.TrainingConfig`
    fidelity knobs) and the hierarchical communicator its cluster
    keywords; unsupported keywords are silently dropped for the methods
    that have no such selection space.
    """
    key = getattr(name, "value", name)
    if key not in ("nccl", "nccl-allreduce"):
        kwargs.pop("algorithm", None)
        kwargs.pop("protocol", None)
    if key != "nccl-hierarchical":
        for cluster_kwarg in _CLUSTER_KWARGS:
            kwargs.pop(cluster_kwarg, None)
    if key == "p2p":
        return P2PCommunicator(*args, **kwargs)
    if key == "ps-gpu":
        return PsGpuCommunicator(*args, **kwargs)
    if key == "nccl":
        return NcclCommunicator(*args, **kwargs)
    if key == "local":
        return LocalCommunicator(*args, **kwargs)
    if key == "nccl-allreduce":
        return NcclAllReduceCommunicator(*args, **kwargs)
    if key == "nccl-hierarchical":
        return HierarchicalNcclCommunicator(*args, **kwargs)
    raise ValueError(f"unknown communication method {name!r}")
