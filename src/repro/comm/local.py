"""MXNet ``local`` KVStore: aggregation in host memory over PCIe.

The third data-movement option the paper's background contrasts with
NVLink-based methods: every GPU DtoH-copies its gradients into pinned host
memory, the CPU reduces and updates the weights, and the result is HtoD
broadcast back.  All traffic rides PCIe (sharing the per-switch uplinks)
and the reduction itself runs on the host cores, so this method bounds
what a PCIe-only system could achieve -- useful as a baseline and for the
fabric ablation.
"""

from __future__ import annotations

from typing import Dict, Generator

from repro.comm.base import Communicator
from repro.dnn.stats import WeightArray
from repro.sim import Resource
from repro.sim.events import Event
from repro.topology.routing import Router

#: Host-side reduction throughput (bytes/s): summing N gradient arrays is
#: memory-bound on the Xeon's ~60 GB/s per-socket bandwidth, with two
#: reads and one write per element.
HOST_REDUCE_BANDWIDTH = 20e9

#: Host-side cost of staging one DtoH/HtoD copy.
HOST_COPY_SETUP = 10.0e-6


class LocalCommunicator(Communicator):
    """CPU parameter server (MXNet ``kvstore=local``)."""

    name = "local"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.router = Router(self.fabric.topology)
        self._dispatch: Dict[int, Resource] = {
            d.index: Resource(self.env) for d in self.devices
        }
        # The host reduction is single-threaded per key in MXNet's local
        # kvstore; model the CPU reducer as one resource.
        self._cpu = Resource(self.env)

    # ------------------------------------------------------------------
    # Weight-update path
    # ------------------------------------------------------------------
    def sync_array(self, array: WeightArray) -> Generator[Event, None, None]:
        if self.num_gpus == 1:
            yield self.env.process(self.server.run_kernel(self._update_kernel(array)))
            return
        # Phase 1: DtoH from every GPU (concurrent, contending on PCIe).
        pushes = [
            self.env.process(self._dtoh(array, dev.index))
            for dev in self.devices
        ]
        yield self.env.all_of(pushes)
        # Phase 2: reduce + SGD update on the host cores.
        yield self.env.process(self._host_update(array))
        # Phase 3: HtoD back to every GPU.
        pulls = [
            self.env.process(self._htod(array, dev.index))
            for dev in self.devices
        ]
        yield self.env.all_of(pulls)

    def _dtoh(self, array: WeightArray, gpu: int) -> Generator[Event, None, None]:
        gpu_node = self.fabric.topology.gpu(gpu)
        cpu_node = self.fabric.topology.home_cpu(gpu_node)
        # DtoH is the reverse of the CPU->GPU route.
        route = self.router.cpu_to_gpu(cpu_node, gpu_node)
        req = self._dispatch[gpu].request()
        yield req
        try:
            yield self.env.timeout(HOST_COPY_SETUP)
        finally:
            self._dispatch[gpu].release(req)
        start = self.env.now
        nbytes = self._comm_bytes(array)
        # Same links, opposite (device-to-host) direction.
        yield self.env.process(self.fabric.dma(route.legs[0].reversed(), nbytes))
        self._record_transfer("d2h", gpu, -1, nbytes, start, self.env.now)

    def _htod(self, array: WeightArray, gpu: int) -> Generator[Event, None, None]:
        gpu_node = self.fabric.topology.gpu(gpu)
        cpu_node = self.fabric.topology.home_cpu(gpu_node)
        route = self.router.cpu_to_gpu(cpu_node, gpu_node)
        req = self._dispatch[gpu].request()
        yield req
        try:
            yield self.env.timeout(HOST_COPY_SETUP)
        finally:
            self._dispatch[gpu].release(req)
        start = self.env.now
        nbytes = self._comm_bytes(array)
        yield self.env.process(self.fabric.dma(route.legs[0], nbytes))
        self._record_transfer("h2d", -1, gpu, nbytes, start, self.env.now)

    def _host_update(self, array: WeightArray) -> Generator[Event, None, None]:
        """Sum N gradients and apply SGD on the CPU."""
        req = self._cpu.request()
        yield req
        try:
            reduce_bytes = array.nbytes * (self.num_gpus + 1)
            update_bytes = 5 * array.nbytes
            yield self.env.timeout(
                (reduce_bytes + update_bytes) / HOST_REDUCE_BANDWIDTH
            )
        finally:
            self._cpu.release(req)
