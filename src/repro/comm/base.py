"""Communicator interface shared by the P2P and NCCL implementations."""

from __future__ import annotations

import abc
from typing import Dict, Generator, List, Optional, Sequence

from repro.core.constants import CALIBRATION, CalibrationConstants
from repro.dnn.stats import WeightArray
from repro.gpu.device import GpuDevice
from repro.gpu.kernel import KernelCostModel, KernelSpec
from repro.sim import Environment
from repro.sim.events import Event
from repro.topology.fabric import Fabric
from repro.train.optimizers import SGD_MOMENTUM, OptimizerSpec


class Communicator(abc.ABC):
    """Synchronizes one gradient array across the training GPUs.

    A communicator implements the complete per-array weight-update path:
    gradient aggregation, the SGD update on the server GPU, and the
    distribution of updated weights back to every worker.  The trainer
    spawns :meth:`sync_array` once per weight array per iteration, as soon
    as that array's gradients are ready on all GPUs.
    """

    #: Human-readable method name ("p2p" / "nccl").
    name: str = "base"

    def __init__(
        self,
        env: Environment,
        fabric: Fabric,
        devices: Sequence[GpuDevice],
        cost_model: KernelCostModel,
        constants: CalibrationConstants = CALIBRATION,
        profiler: Optional[object] = None,
        gradient_bytes_scale: float = 1.0,
        optimizer: OptimizerSpec = SGD_MOMENTUM,
        checks: Optional[object] = None,
    ) -> None:
        """``gradient_bytes_scale`` shrinks the bytes moved per array
        (0.5 models fp16 gradient communication); update kernels stay at
        full precision.  ``checks`` is an optional
        :class:`~repro.checks.CheckEngine`; implementations fire their
        structural/conservation checkpoints through :meth:`_check`."""
        if not devices:
            raise ValueError("communicator needs at least one device")
        if gradient_bytes_scale <= 0 or gradient_bytes_scale > 1:
            raise ValueError("gradient_bytes_scale must be in (0, 1]")
        self.env = env
        self.fabric = fabric
        self.devices = list(devices)
        self.cost_model = cost_model
        self.constants = constants
        self.profiler = profiler
        self.gradient_bytes_scale = gradient_bytes_scale
        self.optimizer = optimizer
        self.checks = checks

    @property
    def num_gpus(self) -> int:
        return len(self.devices)

    @property
    def server(self) -> GpuDevice:
        """GPU0 -- the parameter server in MXNet's KVStore."""
        return self.devices[0]

    # ------------------------------------------------------------------
    # Costs charged outside the event simulation
    # ------------------------------------------------------------------
    def epoch_fixed_overhead(self) -> float:
        """Once-per-run setup cost added to the epoch time (seconds)."""
        return 0.0

    def per_iteration_overhead(self) -> float:
        """Host-side cost the method adds to every iteration (seconds)."""
        return 0.0

    # ------------------------------------------------------------------
    # The per-array weight-update process
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def sync_array(self, array: WeightArray) -> Generator[Event, None, None]:
        """Process: aggregate, update and redistribute one weight array.

        Returns once every GPU holds the updated weights for ``array``.
        """

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _update_kernel(self, array: WeightArray) -> KernelSpec:
        """The optimizer's weight-update kernel for one array.

        Memory bound: the optimizer spec gives the FLOPs per parameter and
        the number of array-sized memory passes (5 for SGD+momentum, 7 for
        Adam's two moment buffers).
        """
        flops = self.optimizer.flops_per_param * array.numel
        nbytes = self.optimizer.memory_passes * array.nbytes
        duration = self.cost_model.kernel_time(
            flops=flops, bytes_moved=nbytes, matmul=False
        )
        return KernelSpec(
            name=f"{self.optimizer.name}_update.{array.name}",
            layer=array.layer,
            stage="wu",
            duration=duration,
            flops=flops,
            bytes_moved=nbytes,
        )

    def _add_kernel(self, array: WeightArray, tag: str) -> KernelSpec:
        """Gradient accumulation kernel on a reduction-tree parent."""
        duration = self.cost_model.kernel_time(
            flops=float(array.numel), bytes_moved=3 * array.nbytes, matmul=False
        )
        return KernelSpec(
            name=f"grad_add.{array.name}.{tag}",
            layer=array.layer,
            stage="wu",
            duration=duration,
            flops=float(array.numel),
            bytes_moved=3 * array.nbytes,
        )

    def _comm_bytes(self, array: WeightArray) -> int:
        """Bytes one array moves on the wire (after precision scaling)."""
        return max(1, int(array.nbytes * self.gradient_bytes_scale))

    def _record_transfer(self, kind: str, src: int, dst: int, nbytes: int,
                         start: float, end: float) -> None:
        if self.profiler is not None:
            self.profiler.record_transfer(kind, src, dst, nbytes, start, end)

    @property
    def checks_active(self) -> bool:
        """True when an enabled check engine is attached — callers gate
        checkpoint-payload construction on this to keep the disabled path
        free."""
        return self.checks is not None and self.checks.enabled

    def _check(self, point: str, **payload) -> None:
        """Fire one invariant checkpoint (no-op without an active engine)."""
        if self.checks is not None and self.checks.enabled:
            self.checks.check(point, **payload)

    def _publish(self, event) -> None:
        """Emit a typed observability event through the profiler's bus.

        Tolerates bare profilers (anything with only ``record_*`` methods)
        by doing nothing when no ``publish`` hook exists.
        """
        publish = getattr(self.profiler, "publish", None)
        if publish is not None:
            publish(event)
