"""MXNet ``device`` KVStore: P2P direct transfers with a GPU0 server.

Gradients flow up a binomial reduction tree of cudaMemcpyPeer DMAs onto
GPU0 (the example the paper walks through: GPU1's gradients move to GPU0
while GPU2 collects GPU3's, then GPU0 collects GPU2's average); GPU0 runs
the SGD update and the updated weights flow back down the reversed tree
(the multi-stage NVLink relays the paper describes).

Modeling notes, each visible in the results:

* every DMA pays a driver-side setup cost serialized on the *source* GPU's
  dispatch thread -- with many weight arrays this serialization on GPU0 is
  what makes P2P lose to NCCL for GoogLeNet/ResNet/Inception-v3;
* large arrays are cut into chunks that pipeline across tree stages, so a
  61M-parameter AlexNet sync approaches link bandwidth instead of paying
  the full store-and-forward penalty per stage;
* gradient-accumulation and weight-update kernels run on the parents' (and
  GPU0's) *compute* engines, contending with backward-pass kernels --
  GPU0 is measurably the straggler, as the paper observes.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Sequence, Tuple

from repro.dnn.stats import WeightArray
from repro.comm.base import Communicator
from repro.perf.spans import PERF
from repro.sim import Resource
from repro.sim.events import Event
from repro.topology.routing import Router

#: Chunk size for pipelining large arrays across tree stages (matches the
#: granularity MXNet/CUDA use for big copies).
P2P_CHUNK_BYTES = 4 * 1024 * 1024

#: MXNet's MXNET_KVSTORE_BIGARRAY_BOUND default: arrays at or above this
#: many elements are sharded across all GPU servers instead of aggregating
#: on GPU0.  AlexNet's FC layers take this path; without it a 61M-parameter
#: model could never scale (2 x 244 MB through GPU0's links every
#: iteration), and it is why P2P stays competitive with NCCL for AlexNet:
#: the shards exploit the whole NVLink mesh while NCCL rides one ring.
BIGARRAY_BOUND_ELEMENTS = 1_000_000


def reduction_tree(num_gpus: int) -> List[List[Tuple[int, int]]]:
    """Binomial reduction tree as stages of ``(src, dst)`` transfers.

    >>> reduction_tree(8)
    [[(1, 0), (3, 2), (5, 4), (7, 6)], [(2, 0), (6, 4)], [(4, 0)]]
    """
    if num_gpus < 1:
        raise ValueError("num_gpus must be positive")
    stages: List[List[Tuple[int, int]]] = []
    step = 1
    while step < num_gpus:
        stage = [
            (i + step, i)
            for i in range(0, num_gpus, 2 * step)
            if i + step < num_gpus
        ]
        stages.append(stage)
        step *= 2
    return stages


def _split_chunks(nbytes: int, chunk: int) -> List[int]:
    """Chunk sizes for a transfer of ``nbytes``."""
    if nbytes <= 0:
        return [0]
    full, rest = divmod(nbytes, chunk)
    return [chunk] * full + ([rest] if rest else [])


class P2PCommunicator(Communicator):
    """P2P direct-transfer weight synchronization (paper's "P2P")."""

    name = "p2p"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        with PERF.span("p2p.plan"):
            self.router = Router(self.fabric.topology)
            # Driver-side DMA dispatch is serialized per source GPU.
            self._dispatch: Dict[int, Resource] = {
                d.index: Resource(self.env) for d in self.devices
            }
            n = self.num_gpus
            self._reduce_stages = self._plan_stages(n)
            # children[parent] = [(child, stage_index), ...]
            self._children: Dict[int, List[int]] = {d.index: [] for d in self.devices}
            for stage in self._reduce_stages:
                for src, dst in stage:
                    self._children[self._gpu_at(dst)].append(self._gpu_at(src))
        self._check("comm.p2p.plan", stages=self._reduce_stages, num_gpus=n)

    def _plan_stages(self, num_gpus: int) -> List[List[Tuple[int, int]]]:
        """The reduction schedule as stages of ``(src, dst)`` positions.

        Subclasses (the flat-star parameter server) override this; the
        broadcast always runs the reversed schedule.
        """
        return reduction_tree(num_gpus)

    def _gpu_at(self, position: int) -> int:
        """Device index of the GPU at tree position ``position``."""
        return self.devices[position].index

    # ------------------------------------------------------------------
    # Weight-update path
    # ------------------------------------------------------------------
    def sync_array(self, array: WeightArray) -> Generator[Event, None, None]:
        if self.num_gpus == 1:
            # Single GPU: just the local SGD update.
            yield self.env.process(self.server.run_kernel(self._update_kernel(array)))
            return
        if array.numel >= BIGARRAY_BOUND_ELEMENTS:
            yield self.env.process(self._sharded_sync(array))
            return
        yield self.env.process(self._tree_reduce(array))
        yield self.env.process(self.server.run_kernel(self._update_kernel(array)))
        yield self.env.process(self._tree_broadcast(array))

    # ------------------------------------------------------------------
    # Sharded path (MXNet's big-array bound)
    # ------------------------------------------------------------------
    def _sharded_sync(self, array: WeightArray) -> Generator[Event, None, None]:
        """Reduce-scatter + update + all-gather for a sharded big array.

        Shard ``j`` lives on GPU ``j``: every other GPU DMAs its piece of
        the gradient there (phase 1), the owner accumulates and updates
        (phase 2), then DMAs the fresh weights back to everyone (phase 3).
        Owners proceed independently, so phase 3 of one shard overlaps
        phase 1 of another.
        """
        shard_bytes = -(-self._comm_bytes(array) // self.num_gpus)
        owners = [
            self.env.process(self._shard_owner(array, pos, shard_bytes))
            for pos in range(self.num_gpus)
        ]
        yield self.env.all_of(owners)

    def _shard_owner(
        self, array: WeightArray, owner_pos: int, shard_bytes: int
    ) -> Generator[Event, None, None]:
        from repro.gpu.kernel import KernelSpec

        owner = self.devices[owner_pos]
        shard_numel = -(-array.numel // self.num_gpus)
        receives = [
            self.env.process(
                self._shard_transfer(array, self.devices[src].index, owner.index,
                                     shard_bytes)
            )
            for src in range(self.num_gpus)
            if src != owner_pos
        ]
        yield self.env.all_of(receives)
        n_in = self.num_gpus - 1
        accumulate = KernelSpec(
            name=f"grad_add.{array.name}.shard{owner_pos}",
            layer=array.layer,
            stage="wu",
            duration=self.cost_model.kernel_time(
                flops=float(shard_numel * n_in),
                bytes_moved=shard_bytes * (n_in + 2),
                matmul=False,
            ),
            flops=float(shard_numel * n_in),
            bytes_moved=shard_bytes * (n_in + 2),
        )
        yield self.env.process(owner.run_kernel(accumulate))
        update = KernelSpec(
            name=f"{self.optimizer.name}_update.{array.name}.shard{owner_pos}",
            layer=array.layer,
            stage="wu",
            duration=self.cost_model.kernel_time(
                flops=self.optimizer.flops_per_param * shard_numel,
                bytes_moved=self.optimizer.memory_passes * shard_bytes,
                matmul=False,
            ),
            flops=self.optimizer.flops_per_param * shard_numel,
            bytes_moved=self.optimizer.memory_passes * shard_bytes,
        )
        yield self.env.process(owner.run_kernel(update))
        sends = [
            self.env.process(
                self._shard_transfer(array, owner.index, self.devices[dst].index,
                                     shard_bytes)
            )
            for dst in range(self.num_gpus)
            if dst != owner_pos
        ]
        yield self.env.all_of(sends)

    def _shard_transfer(
        self, array: WeightArray, src: int, dst: int, nbytes: int
    ) -> Generator[Event, None, None]:
        route = self.router.gpu_to_gpu(
            self.fabric.topology.gpu(src), self.fabric.topology.gpu(dst)
        )
        req = self._dispatch[src].request()
        yield req
        try:
            yield self.env.timeout(self.constants.p2p_copy_setup)
        finally:
            self._dispatch[src].release(req)
        start = self.env.now
        yield from self.fabric.pipelined_transfer(route, nbytes, P2P_CHUNK_BYTES)
        self._record_transfer("p2p", src, dst, nbytes, start, self.env.now)

    # ------------------------------------------------------------------
    # Reduction
    # ------------------------------------------------------------------
    def _tree_reduce(self, array: WeightArray) -> Generator[Event, None, None]:
        """Gradients flow up the binomial tree onto GPU0, chunk-pipelined."""
        chunks = _split_chunks(self._comm_bytes(array), P2P_CHUNK_BYTES)
        # ready[gpu][c]: chunk c of the partial sum is complete on gpu.
        ready: Dict[int, List[Event]] = {}
        device_by_index = {d.index: d for d in self.devices}
        for dev in self.devices:
            events = []
            n_children = len(self._children[dev.index])
            for _ in chunks:
                ev = self.env.event()
                if n_children == 0:
                    ev.succeed()  # leaf: own gradient is already there
                else:
                    ev._pending_children = n_children  # type: ignore[attr-defined]
                events.append(ev)
            ready[dev.index] = events

        edge_processes = []
        for stage in self._reduce_stages:
            for src_pos, dst_pos in stage:
                src, dst = self._gpu_at(src_pos), self._gpu_at(dst_pos)
                edge_processes.append(
                    self.env.process(
                        self._reduce_edge(array, src, dst, chunks, ready,
                                          device_by_index[dst])
                    )
                )
        yield self.env.all_of(edge_processes)

    def _reduce_edge(
        self,
        array: WeightArray,
        src: int,
        dst: int,
        chunks: List[int],
        ready: Dict[int, List[Event]],
        dst_device,
    ) -> Generator[Event, None, None]:
        """One tree edge: dispatch setup, pipelined chunks, add on parent."""
        route = self.router.gpu_to_gpu(
            self.fabric.topology.gpu(src), self.fabric.topology.gpu(dst)
        )
        req = self._dispatch[src].request()
        yield req
        try:
            yield self.env.timeout(self.constants.p2p_copy_setup)
        finally:
            self._dispatch[src].release(req)
        start = self.env.now
        for c, chunk_bytes in enumerate(chunks):
            yield ready[src][c]
            for leg in route.legs:
                yield self.env.process(self.fabric.dma(leg, chunk_bytes))
            self._chunk_arrived(ready[dst][c])
        self._record_transfer("p2p", src, dst, sum(chunks), start, self.env.now)
        # Accumulate on the parent's compute engine (contends with BP).
        yield self.env.process(
            dst_device.run_kernel(self._add_kernel(array, f"g{src}->g{dst}"))
        )

    @staticmethod
    def _chunk_arrived(event: Event) -> None:
        """Count down the per-chunk barrier on the receiving GPU."""
        pending = getattr(event, "_pending_children", 0)
        if pending <= 1:
            if not event.triggered:
                event.succeed()
        else:
            event._pending_children = pending - 1  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    # Broadcast
    # ------------------------------------------------------------------
    def _tree_broadcast(self, array: WeightArray) -> Generator[Event, None, None]:
        """Updated weights flow down the reversed tree, chunk-pipelined."""
        chunks = _split_chunks(self._comm_bytes(array), P2P_CHUNK_BYTES)
        have: Dict[int, List[Event]] = {}
        for dev in self.devices:
            events = []
            for _ in chunks:
                ev = self.env.event()
                if dev.index == self.server.index:
                    ev.succeed()
                events.append(ev)
            have[dev.index] = events

        edge_processes = []
        for stage in reversed(self._reduce_stages):
            for src_pos, dst_pos in stage:
                # Reversed edge: the reduce destination now sends.
                sender, receiver = self._gpu_at(dst_pos), self._gpu_at(src_pos)
                edge_processes.append(
                    self.env.process(
                        self._broadcast_edge(array, sender, receiver, chunks, have)
                    )
                )
        yield self.env.all_of(edge_processes)

    def _broadcast_edge(
        self,
        array: WeightArray,
        src: int,
        dst: int,
        chunks: List[int],
        have: Dict[int, List[Event]],
    ) -> Generator[Event, None, None]:
        route = self.router.gpu_to_gpu(
            self.fabric.topology.gpu(src), self.fabric.topology.gpu(dst)
        )
        req = self._dispatch[src].request()
        yield req
        try:
            yield self.env.timeout(self.constants.p2p_copy_setup)
        finally:
            self._dispatch[src].release(req)
        start = self.env.now
        for c, chunk_bytes in enumerate(chunks):
            yield have[src][c]
            for leg in route.legs:
                yield self.env.process(self.fabric.dma(leg, chunk_bytes))
            if not have[dst][c].triggered:
                have[dst][c].succeed()
        self._record_transfer("p2p", src, dst, sum(chunks), start, self.env.now)
