"""Topology-aware ring construction, as NCCL performs at init time.

NCCL 2.x (the version in the paper's 18.04 container) builds one ring over
the NVLink graph and uses it in both directions, giving two pipelined
channels.  On the DGX-1V every power-of-two GPU prefix {0..N-1} admits a
Hamiltonian NVLink cycle, so rings never fall back to PCIe in the paper's
experiments; the search below still handles the fallback for other device
subsets (a PCIe hop caps the channel bandwidth, which is exactly the
behaviour NCCL exhibits on non-NVLink boxes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.constants import CALIBRATION, CalibrationConstants
from repro.core.errors import RoutingError
from repro.topology.links import LinkType
from repro.topology.system import SystemTopology


def find_nvlink_ring(
    topology: SystemTopology, gpu_indices: Sequence[int]
) -> Optional[List[int]]:
    """A Hamiltonian cycle over NVLink among ``gpu_indices``, or ``None``.

    Deterministic backtracking starting from the lowest index; for the
    two-GPU case the "cycle" is the single direct link used both ways.
    """
    indices = sorted(gpu_indices)
    if len(indices) == 1:
        return indices
    nodes = {i: topology.gpu(i) for i in indices}

    def connected(a: int, b: int) -> bool:
        return topology.nvlink_between(nodes[a], nodes[b]) is not None

    if len(indices) == 2:
        a, b = indices
        return [a, b] if connected(a, b) else None

    start = indices[0]
    remaining = set(indices[1:])
    path = [start]

    def extend() -> bool:
        if not remaining:
            return connected(path[-1], start)
        for candidate in sorted(remaining):
            if connected(path[-1], candidate):
                remaining.remove(candidate)
                path.append(candidate)
                if extend():
                    return True
                path.pop()
                remaining.add(candidate)
        return False

    return path if extend() else None


@dataclass(frozen=True)
class RingPlan:
    """The communication structure NCCL settles on for a GPU set."""

    order: Tuple[int, ...]           # GPUs in ring order
    channels: int                    # pipelined directions (2 for a ring)
    channel_bandwidth: float         # bytes/s per channel
    uses_pcie: bool

    @property
    def size(self) -> int:
        return len(self.order)

    @property
    def aggregate_bandwidth(self) -> float:
        return self.channels * self.channel_bandwidth


def build_ring_plan(
    topology: SystemTopology,
    gpu_indices: Sequence[int],
    constants: CalibrationConstants = CALIBRATION,
) -> RingPlan:
    """Construct the ring NCCL would use for ``gpu_indices``."""
    indices = sorted(set(gpu_indices))
    if not indices:
        raise RoutingError("cannot build a ring over zero GPUs")
    if len(indices) == 1:
        return RingPlan(
            order=(indices[0],),
            channels=1,
            channel_bandwidth=float("inf"),
            uses_pcie=False,
        )

    pcie_bw = 16e9 * constants.pcie_efficiency

    # Multi-node sets: NCCL threads the ring through each node's NVLink
    # section and hops nodes over InfiniBand; the IB lane paces every
    # channel (EDR: 12.5 GB/s vs NVLink's 25).
    from repro.topology.cluster import GPUS_PER_NODE, IB_LANE_BANDWIDTH

    spanned = {i // GPUS_PER_NODE for i in indices}
    if len(spanned) > 1:
        # Node-major order, each node's section threaded along its NVLink
        # Hamiltonian cycle so every intra-node hop rides NVLink and only
        # the node-to-node seams cross InfiniBand.
        order: List[int] = []
        pcie_fallback = False
        for node in sorted(spanned):
            section = [i for i in indices if i // GPUS_PER_NODE == node]
            threaded = find_nvlink_ring(topology, section)
            if threaded is None:
                pcie_fallback = True
                threaded = section
            order.extend(threaded)
        return RingPlan(
            order=tuple(order),
            channels=2,
            channel_bandwidth=IB_LANE_BANDWIDTH * constants.nccl_bandwidth_efficiency,
            uses_pcie=pcie_fallback,
        )

    ring = find_nvlink_ring(topology, indices)
    if ring is not None:
        # The slowest lane along the ring paces every channel (rings use
        # one lane per hop).  A two-GPU "ring" degenerates to one link:
        # root-bound collectives can only use the single direction toward
        # the root, so there is one channel (of the link's full width);
        # real rings run in both directions (two channels).
        if len(indices) == 2:
            link = topology.nvlink_between(
                topology.gpu(indices[0]), topology.gpu(indices[1])
            )
            assert link is not None
            return RingPlan(
                order=tuple(ring),
                channels=1,
                channel_bandwidth=(
                    link.peak_bandwidth() * constants.nccl_bandwidth_efficiency
                ),
                uses_pcie=False,
            )
        lane_bw = min(
            topology.nvlink_between(topology.gpu(a), topology.gpu(b)).peak_bandwidth()
            / topology.nvlink_between(topology.gpu(a), topology.gpu(b)).width
            for a, b in zip(ring, ring[1:] + ring[:1])
        )
        return RingPlan(
            order=tuple(ring),
            channels=2,
            channel_bandwidth=lane_bw * constants.nccl_bandwidth_efficiency,
            uses_pcie=False,
        )
    # Fallback: ring in index order; any hop without NVLink crosses PCIe
    # and paces the whole channel.
    return RingPlan(
        order=tuple(indices),
        channels=2,
        channel_bandwidth=pcie_bw,
        uses_pcie=True,
    )
