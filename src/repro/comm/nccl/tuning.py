"""NCCL's internal algorithm/protocol auto-tuner, as a cost model.

At init time NCCL builds every (algorithm, protocol) variant it supports
and, per collective call, picks the combination its latency/bandwidth
model predicts fastest for the message size.  That selection is what the
paper's P2P-vs-NCCL comparison is implicitly sweeping: small gradient
arrays live in the latency-dominated regime (few-step trees and the LL
protocol win), large arrays in the bandwidth-dominated regime (ring +
Simple wins).  :class:`NcclTuner` reproduces the selection determinis-
tically from the same chunk-pipelined cost formulas the communicator
charges, so the simulated choice and the simulated cost always agree.

>>> from repro.comm.nccl.tuning import NcclTuner
>>> tuner = NcclTuner.for_dgx1(num_gpus=8)
>>> small = tuner.select("allreduce", 16 * 1024)
>>> (small.protocol.value, small.algorithm.value)
('ll', 'tree')
>>> large = tuner.select("allreduce", 64 * 1024 * 1024)
>>> (large.protocol.value, large.algorithm.value)
('simple', 'ring')
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.comm.nccl.protocol import (
    NcclAlgorithm,
    NcclProtocol,
    ProtocolSpec,
    protocol_table,
    ring_collective_time,
    tree_collective_time,
)
from repro.comm.nccl.rings import RingPlan, build_ring_plan
from repro.core.constants import CALIBRATION, CalibrationConstants
from repro.topology.trees import TreePlan, build_tree_plan

#: Candidate enumeration order -- also the deterministic tie-break
#: (earlier wins on exactly equal predicted cost).
CANDIDATE_ORDER: Tuple[Tuple[NcclAlgorithm, NcclProtocol], ...] = tuple(
    (alg, proto)
    for alg in (NcclAlgorithm.RING, NcclAlgorithm.TREE)
    for proto in (NcclProtocol.SIMPLE, NcclProtocol.LL, NcclProtocol.LL128)
)


@dataclass(frozen=True)
class TuningChoice:
    """One resolved (algorithm, protocol) decision for a message."""

    collective: str
    nbytes: int
    algorithm: NcclAlgorithm
    protocol: NcclProtocol
    predicted: float          # modelled collective duration (seconds)
    pinned: bool              # True when the config pinned the choice


class NcclTuner:
    """Per-message algorithm x protocol selection over fixed plans.

    ``algorithm`` / ``protocol`` are the :class:`TrainingConfig` knobs:
    ``"auto"`` lets the cost model choose, a concrete value pins that
    axis (the other may still float).  Selections are memoized per
    (collective, nbytes) -- NCCL likewise resolves each message size
    once per communicator.
    """

    def __init__(
        self,
        ring: RingPlan,
        tree: TreePlan,
        constants: CalibrationConstants = CALIBRATION,
        algorithm: str = "auto",
        protocol: str = "auto",
    ) -> None:
        if algorithm not in ("auto", "ring", "tree"):
            raise ValueError(f"unknown nccl algorithm {algorithm!r}")
        if protocol not in ("auto", "simple", "ll", "ll128"):
            raise ValueError(f"unknown nccl protocol {protocol!r}")
        self.ring = ring
        self.tree = tree
        self.constants = constants
        self.algorithm = algorithm
        self.protocol = protocol
        self.protocols = protocol_table(constants)
        #: LL128 needs NVLink's 128-byte atomic stores end to end.
        self.nvlink_clean = not (ring.uses_pcie or tree.uses_pcie)
        self._memo: Dict[Tuple[str, int], TuningChoice] = {}

    @classmethod
    def for_dgx1(
        cls,
        num_gpus: int = 8,
        constants: CalibrationConstants = CALIBRATION,
        algorithm: str = "auto",
        protocol: str = "auto",
    ) -> "NcclTuner":
        """Tuner over the stock DGX-1V plans (convenience for studies)."""
        from repro.topology import build_dgx1v

        topology = build_dgx1v()
        indices = list(range(num_gpus))
        return cls(
            ring=build_ring_plan(topology, indices, constants),
            tree=build_tree_plan(topology, indices, constants),
            constants=constants,
            algorithm=algorithm,
            protocol=protocol,
        )

    # ------------------------------------------------------------------
    # Cost model
    # ------------------------------------------------------------------
    def predict(
        self, collective: str, nbytes: int,
        algorithm: NcclAlgorithm, protocol: NcclProtocol,
    ) -> float:
        """Modelled duration of one collective under a fixed combo."""
        proto = self.protocols[protocol]
        if algorithm is NcclAlgorithm.RING:
            return ring_collective_time(
                collective, nbytes, self.ring.size,
                self.ring.aggregate_bandwidth, proto, self.constants,
            )
        return tree_collective_time(
            collective, nbytes, self.tree.depth,
            self.tree.aggregate_bandwidth, proto, self.constants,
        )

    def _eligible(
        self, nbytes: int, algorithm: NcclAlgorithm, spec: ProtocolSpec
    ) -> bool:
        if self.algorithm != "auto" and algorithm.value != self.algorithm:
            return False
        if self.protocol != "auto" and spec.protocol.value != self.protocol:
            return False
        if spec.max_bytes is not None and nbytes > spec.max_bytes:
            return False
        if spec.nvlink_only and not self.nvlink_clean:
            return False
        return True

    def candidates(
        self, collective: str, nbytes: int
    ) -> List[Tuple[NcclAlgorithm, NcclProtocol, float]]:
        """Every eligible combo with its predicted duration, in
        :data:`CANDIDATE_ORDER`."""
        out = []
        for algorithm, protocol in CANDIDATE_ORDER:
            if self._eligible(nbytes, algorithm, self.protocols[protocol]):
                out.append(
                    (algorithm, protocol, self.predict(collective, nbytes,
                                                       algorithm, protocol))
                )
        return out

    def select(self, collective: str, nbytes: int) -> TuningChoice:
        """The fastest eligible combo for this message (memoized).

        A fully pinned tuner still resolves through here so the
        communicator has one code path; when pinning leaves nothing
        eligible (LL beyond its byte cap, LL128 off NVLink) the size
        guard is relaxed, matching NCCL's behaviour of falling back to
        the pinned protocol's nearest legal configuration.
        """
        key = (collective, nbytes)
        hit = self._memo.get(key)
        if hit is not None:
            return hit
        ranked = self.candidates(collective, nbytes)
        if not ranked:
            # Pinned into a corner: honour the pin, ignoring size caps.
            algorithm = NcclAlgorithm(self.algorithm) \
                if self.algorithm != "auto" else NcclAlgorithm.RING
            protocol = NcclProtocol(self.protocol) \
                if self.protocol != "auto" else NcclProtocol.SIMPLE
            choice = TuningChoice(
                collective=collective, nbytes=nbytes, algorithm=algorithm,
                protocol=protocol,
                predicted=self.predict(collective, nbytes, algorithm, protocol),
                pinned=True,
            )
        else:
            best = min(ranked, key=lambda c: c[2])
            choice = TuningChoice(
                collective=collective, nbytes=nbytes,
                algorithm=best[0], protocol=best[1], predicted=best[2],
                pinned=(self.algorithm != "auto" and self.protocol != "auto"),
            )
        self._memo[key] = choice
        return choice


def crossover_sizes(
    tuner: NcclTuner,
    collective: str = "allreduce",
    sizes: Optional[Sequence[int]] = None,
) -> List[Tuple[int, TuningChoice]]:
    """The message sizes at which the tuner's selection changes.

    Scans ``sizes`` (default: powers of two from 256 B to 256 MiB) and
    returns the first size of each new (algorithm, protocol) regime --
    the crossover table the NCCL ablation reports.
    """
    if sizes is None:
        sizes = [2 ** p for p in range(8, 29)]
    out: List[Tuple[int, TuningChoice]] = []
    last: Optional[Tuple[NcclAlgorithm, NcclProtocol]] = None
    for size in sizes:
        choice = tuner.select(collective, size)
        combo = (choice.algorithm, choice.protocol)
        if combo != last:
            out.append((size, choice))
            last = combo
    return out
