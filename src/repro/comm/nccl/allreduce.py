"""The modern NCCL path: AllReduce with replicated local updates.

The paper's MXNet container reduces gradients to GPU0, updates there, and
broadcasts the weights back.  Frameworks since then (Horovod, PyTorch DDP)
instead AllReduce the gradients and let *every* GPU run the identical
optimizer step locally:

* one collective per array instead of two (lower launch overhead),
* the bandwidth-optimal ``2(N-1)/N * S`` wire cost instead of ``2S``,
* no server GPU -- the update cost parallelizes and GPU0 stops being the
  straggler.

Included as the forward-looking comparison point: how much of the paper's
WU bottleneck was the algorithm rather than the hardware.
"""

from __future__ import annotations

from typing import Generator

from repro.comm.nccl.communicator import NcclCommunicator
from repro.comm.nccl.protocol import NcclAlgorithm
from repro.dnn.stats import WeightArray
from repro.obs.events import RingStepEvent
from repro.sim.events import Event


class NcclAllReduceCommunicator(NcclCommunicator):
    """AllReduce + replicated local SGD (DDP/Horovod style)."""

    name = "nccl-allreduce"

    def _emit_ring_steps(
        self, collective: str, array: WeightArray,
        start: float, end: float, wire_bytes: int,
    ) -> None:
        """Reduce-scatter + all-gather: ``2(N-1)`` step windows in which
        *every* ring link is simultaneously active carrying an ``S/N``
        chunk -- the structure "Demystifying NCCL" times step by step."""
        hops = self._ring_hops
        n = self.plan.size
        if not hops or n < 2 or end <= start:
            return
        num_steps = 2 * (n - 1)
        slot = (end - start) / num_steps
        chunk = max(1, wire_bytes // n)
        for step in range(num_steps):
            t0 = start + step * slot
            t1 = start + (step + 1) * slot
            for src, dst, _, link_type in hops:
                self._publish(RingStepEvent(
                    collective=collective, array=array.name, step=step,
                    src=src, dst=dst, link_type=link_type, nbytes=chunk,
                    start=t0, end=t1,
                ))

    def allreduce_duration(self, nbytes: int) -> float:
        """Pipelined ring AllReduce: reduce-scatter + all-gather.

        Each GPU sends and receives ``2(N-1)/N * S`` per channel -- the
        bandwidth-optimal collective.  Non-compat modes defer to the
        tuner's protocol-aware cost model instead.
        """
        c = self.constants
        n = self.plan.size
        if n == 1:
            return c.nccl_single_gpu_kernel
        choice = self._choose("allreduce", nbytes)
        if choice is not None:
            return choice.predicted
        wire = (2.0 * (n - 1) / n) * nbytes / self.plan.aggregate_bandwidth
        return c.nccl_call_overhead + 2 * (n - 1) * c.nccl_ring_step_latency + wire

    def sync_array(self, array: WeightArray) -> Generator[Event, None, None]:
        if self.plan.size == 1:
            kernel = self._collective_kernel(
                "allreduce", array, self.constants.nccl_single_gpu_kernel
            )
            yield self.env.process(self.server.run_kernel(kernel))
            yield self.env.process(self.server.run_kernel(self._update_kernel(array)))
            return
        yield self.env.process(self._allreduce(array))
        # Every GPU applies the identical update in parallel.
        updates = [
            self.env.process(dev.run_kernel(self._update_kernel(array)))
            for dev in self.devices
        ]
        yield self.env.all_of(updates)

    def _allreduce(self, array: WeightArray) -> Generator[Event, None, None]:
        c = self.constants
        wire_bytes = self._comm_bytes(array)
        duration = self.allreduce_duration(wire_bytes)
        self._check_collective("allreduce", wire_bytes, duration)
        queued = self.env.now
        req = self._stream.request()
        yield req
        start = self.env.now
        self._emit_stream_waits(start - queued, start)
        taxes = [
            self.env.process(
                dev.run_kernel(
                    self._collective_kernel("allreduce", array, c.nccl_engine_tax)
                )
            )
            for dev in self.devices
        ]
        try:
            yield self.env.timeout(duration)
            yield self.env.all_of(taxes)
        finally:
            self._stream.release(req)
        choice = self._choose("allreduce", wire_bytes)
        if choice is None or choice.algorithm is NcclAlgorithm.RING:
            self._emit_ring_steps("allreduce", array, start, start + duration,
                                  wire_bytes)
        else:
            self._emit_tree_steps(choice, array, start, start + duration)
        if choice is not None:
            self._emit_choice(choice, array, start)
        self._record_transfer("nccl", self.server.index, -1, wire_bytes,
                              start, self.env.now)
