"""The NCCL communicator (MXNet ``nccl`` KVStore).

Per weight array and iteration: a ring ``Reduce`` brings the summed
gradients to GPU0, GPU0 runs the SGD update on its compute engine, and a
ring ``Broadcast`` returns the updated weights -- the AllReduce/Broadcast
pair the paper describes.  Collectives serialize on the NCCL stream, so
many small arrays pipeline back to back with one launch overhead each,
which is how NCCL amortizes its higher per-call cost on layer-rich
networks.

Two costs distinguish NCCL from P2P even on a single GPU (paper Table II):
the Reduce/Broadcast kernels still launch per array, and the communicator
setup is paid once per run (``nccl_epoch_fixed_overhead``).
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.comm.base import Communicator
from repro.comm.nccl.rings import RingPlan, build_ring_plan
from repro.dnn.stats import WeightArray
from repro.sim import Resource
from repro.sim.events import Event


class NcclCommunicator(Communicator):
    """NCCL collective weight synchronization (paper's "NCCL")."""

    name = "nccl"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._stream = Resource(self.env)
        self.plan: RingPlan = build_ring_plan(
            self.fabric.topology,
            [d.index for d in self.devices],
            self.constants,
        )

    def epoch_fixed_overhead(self) -> float:
        return self.constants.nccl_epoch_fixed_overhead

    def per_iteration_overhead(self) -> float:
        """Grouped-launch rendezvous across all engine threads.

        Every iteration, MXNet's NCCL KVStore must get all N engine
        threads to enqueue their collectives together; the rendezvous cost
        grows with GPU count and is independent of model size -- large for
        LeNet in relative terms, negligible for Inception-v3.
        """
        if self.num_gpus == 1:
            return 0.0
        return self.constants.nccl_group_sync_per_gpu * self.num_gpus

    # ------------------------------------------------------------------
    # Collective durations
    # ------------------------------------------------------------------
    def reduce_duration(self, nbytes: int) -> float:
        """Ring Reduce toward the root GPU.

        With chunk pipelining every ring link stays busy carrying the
        accumulating stream, so each channel moves the full array: the
        wire cost is ``S / aggregate_bandwidth`` plus the pipeline fill of
        ``N-1`` chunk steps.
        """
        c = self.constants
        n = self.plan.size
        if n == 1:
            return c.nccl_single_gpu_kernel
        wire = nbytes / self.plan.aggregate_bandwidth
        return c.nccl_call_overhead + (n - 1) * c.nccl_ring_step_latency + wire

    def broadcast_duration(self, nbytes: int) -> float:
        """Ring Broadcast from the root: same pipelined full-array cost."""
        c = self.constants
        n = self.plan.size
        if n == 1:
            return c.nccl_single_gpu_kernel
        wire = nbytes / self.plan.aggregate_bandwidth
        return c.nccl_call_overhead + (n - 1) * c.nccl_ring_step_latency + wire

    # ------------------------------------------------------------------
    # Weight-update path
    # ------------------------------------------------------------------
    def sync_array(self, array: WeightArray) -> Generator[Event, None, None]:
        yield self.env.process(self._collective("reduce", array))
        yield self.env.process(self.server.run_kernel(self._update_kernel(array)))
        yield self.env.process(self._collective("broadcast", array))

    def _collective_kernel(self, kind: str, array: WeightArray, duration: float):
        """The ReduceKernel/BroadcastKernel occupancy on one GPU.

        NCCL collectives are cooperative kernels: every participating GPU
        runs one, and it occupies SMs (briefly, but per array and per
        call) -- this is the per-array NCCL cost the paper's Table II
        isolates on a single GPU and that layer-rich networks amortize
        through back-to-back pipelining.
        """
        from repro.gpu.kernel import KernelSpec

        return KernelSpec(
            name=f"nccl.{kind}.{array.name}",
            layer=array.layer,
            stage="wu",
            duration=duration,
            flops=float(array.numel),
            bytes_moved=array.nbytes,
        )

    def _collective(self, kind: str, array: WeightArray) -> Generator[Event, None, None]:
        c = self.constants
        if self.plan.size == 1:
            # Single GPU: the collective degenerates to a device-local
            # kernel that still occupies the compute engine.
            kernel = self._collective_kernel(kind, array, c.nccl_single_gpu_kernel)
            yield self.env.process(self.server.run_kernel(kernel))
            return
        wire_bytes = self._comm_bytes(array)
        duration = (
            self.reduce_duration(wire_bytes)
            if kind == "reduce"
            else self.broadcast_duration(wire_bytes)
        )
        req = self._stream.request()
        yield req
        start = self.env.now
        # Each GPU launches its cooperative kernel; the brief SM occupancy
        # contends with backward-pass compute on every device.
        taxes = [
            self.env.process(
                dev.run_kernel(self._collective_kernel(kind, array, c.nccl_engine_tax))
            )
            for dev in self.devices
        ]
        try:
            yield self.env.timeout(duration)
            yield self.env.all_of(taxes)
        finally:
            self._stream.release(req)
        self._record_transfer("nccl", self.server.index, -1, wire_bytes,
                              start, self.env.now)
