"""The NCCL communicator (MXNet ``nccl`` KVStore).

Per weight array and iteration: a ring ``Reduce`` brings the summed
gradients to GPU0, GPU0 runs the SGD update on its compute engine, and a
ring ``Broadcast`` returns the updated weights -- the AllReduce/Broadcast
pair the paper describes.  Collectives serialize on the NCCL stream, so
many small arrays pipeline back to back with one launch overhead each,
which is how NCCL amortizes its higher per-call cost on layer-rich
networks.

Two costs distinguish NCCL from P2P even on a single GPU (paper Table II):
the Reduce/Broadcast kernels still launch per array, and the communicator
setup is paid once per run (``nccl_epoch_fixed_overhead``).

The ``algorithm``/``protocol`` knobs select the fidelity layer of
:mod:`repro.comm.nccl.protocol`: with the default ``"compat"`` pair the
communicator charges the original pinned ring+Simple cost model
(byte-identical outputs); any other pairing routes every collective
through an :class:`~repro.comm.nccl.tuning.NcclTuner` that picks (or
pins) Ring/Tree x Simple/LL/LL128 per message size, emitting per-choice
and per-chunk observability events.  See docs/COMM.md.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Tuple

from repro.comm.base import Communicator
from repro.comm.nccl.protocol import (
    NcclAlgorithm,
    ring_wire_total,
    tree_hop_bytes,
    tree_wire_total,
)
from repro.comm.nccl.rings import RingPlan, build_ring_plan
from repro.comm.nccl.tuning import NcclTuner, TuningChoice
from repro.dnn.stats import WeightArray
from repro.obs.events import (
    CollectiveChunkEvent,
    LinkWaitEvent,
    ProtocolChoiceEvent,
    RingStepEvent,
)
from repro.perf.spans import PERF
from repro.sim import Resource
from repro.sim.events import Event
from repro.topology.trees import TreeEdge, TreePlan, build_tree_plan, tree_edges

#: One directed ring hop: (src GPU, dst GPU, link name, link type).
RingHop = Tuple[int, int, str, str]


class NcclCommunicator(Communicator):
    """NCCL collective weight synchronization (paper's "NCCL")."""

    name = "nccl"

    def __init__(self, *args, algorithm: str = "compat",
                 protocol: str = "compat", **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if (algorithm == "compat") != (protocol == "compat"):
            raise ValueError(
                "'compat' pins the whole legacy model: algorithm and "
                "protocol must both be 'compat' or neither"
            )
        self.algorithm = algorithm
        self.protocol = protocol
        self._stream = Resource(self.env)
        with PERF.span("nccl.build"):
            self.plan: RingPlan = build_ring_plan(
                self.fabric.topology,
                [d.index for d in self.devices],
                self.constants,
            )
            self._ring_hops: List[RingHop] = self._build_ring_hops()
            self.tree: Optional[TreePlan] = None
            self._tree_edges: List[TreeEdge] = []
            self._tuner: Optional[NcclTuner] = None
            if algorithm != "compat":
                self.tree = build_tree_plan(
                    self.fabric.topology,
                    [d.index for d in self.devices],
                    self.constants,
                )
                self._tree_edges = tree_edges(self.fabric.topology, self.tree)
                self._tuner = NcclTuner(
                    ring=self.plan, tree=self.tree, constants=self.constants,
                    algorithm=algorithm, protocol=protocol,
                )
        self._check_plans()

    def _check_plans(self) -> None:
        """Fire the structural checkpoints over the ring (and tree) plans.

        Runs at construction and therefore again after every fault-driven
        re-ring, so a rebuilt communicator re-proves its spanning
        structure."""
        if not self.checks_active:
            return
        participants = tuple(d.index for d in self.devices)
        self._check(
            "comm.ring",
            order=tuple(self.plan.order),
            participants=participants,
            hops=list(self._ring_hops),
            uses_pcie=self.plan.uses_pcie,
        )
        if self.tree is not None:
            self._check(
                "comm.tree",
                root=self.tree.root,
                parent=tuple(self.tree.parent),
                participants=participants,
                depth=self.tree.depth,
            )

    @property
    def _bound_bandwidth(self) -> float:
        """Best aggregate bandwidth any algorithm could use (capacity bound)."""
        bound = self.plan.aggregate_bandwidth
        if self.tree is not None:
            bound = max(bound, self.tree.channels * self.tree.channel_bandwidth)
        return bound

    def _check_collective(self, kind: str, wire_bytes: int, duration: float) -> None:
        """Fire the ``comm.collective`` conservation/capacity checkpoint."""
        if not self.checks_active:
            return
        choice = self._choose(kind, wire_bytes)
        if choice is not None and choice.algorithm is NcclAlgorithm.TREE:
            schedule_total = tree_wire_total(kind, wire_bytes, len(self._tree_edges))
        else:
            schedule_total = ring_wire_total(kind, wire_bytes, self.plan.size)
        self._check(
            "comm.collective",
            kind=kind,
            nbytes=wire_bytes,
            size=self.plan.size,
            duration=duration,
            bound_bandwidth=self._bound_bandwidth,
            schedule_total=schedule_total,
            now=self.env.now,
        )

    def _build_ring_hops(self) -> List[RingHop]:
        """The directed (src -> dst) hops around the ring, with the
        physical link each hop rides (NVLink, or the PCIe/IB fallback)."""
        order = self.plan.order
        if len(order) < 2:
            return []
        topology = self.fabric.topology
        from repro.topology.cluster import GPUS_PER_NODE

        hops: List[RingHop] = []
        for a, b in zip(order, order[1:] + order[:1]):
            link = topology.nvlink_between(topology.gpu(a), topology.gpu(b))
            if link is not None:
                hops.append((a, b, link.name, link.link_type.value))
            elif a // GPUS_PER_NODE != b // GPUS_PER_NODE:
                hops.append((a, b, f"gpu{a}<->gpu{b}:infiniband", "infiniband"))
            else:
                hops.append((a, b, f"gpu{a}<->gpu{b}:pcie", "pcie"))
        return hops

    # ------------------------------------------------------------------
    # Ring-step observability
    # ------------------------------------------------------------------
    def _emit_stream_waits(self, wait: float, at: float) -> None:
        """Attribute NCCL-stream queueing to the ring links it waited on.

        A collective that queues behind the previous array is waiting for
        exactly the ring's links, so the wait is charged to every hop --
        this is the per-link contention counter the Prometheus export
        surfaces as ``link_wait_time_total``.
        """
        if wait <= 0:
            return
        for src, dst, link_name, link_type in self._ring_hops:
            self._publish(LinkWaitEvent(
                link=link_name, src=f"gpu{src}", dst=f"gpu{dst}",
                link_type=link_type, wait=wait, at=at,
            ))

    def _emit_ring_steps(
        self, collective: str, array: WeightArray,
        start: float, end: float, wire_bytes: int,
    ) -> None:
        """Per-ring-step timing of one collective window.

        Root-bound Reduce/Broadcast streams the full payload through each
        hop as the data front advances: ``N-1`` sequential step windows,
        one hop each, ``wire_bytes`` per hop.  AllReduce (see the
        subclass) overrides the schedule with its reduce-scatter +
        all-gather structure.
        """
        hops = self._ring_hops
        if not hops or end <= start:
            return
        steps = hops[:-1] if len(hops) > 1 else hops  # last hop closes the cycle
        slot = (end - start) / len(steps)
        for i, (src, dst, _, link_type) in enumerate(steps):
            self._publish(RingStepEvent(
                collective=collective, array=array.name, step=i,
                src=src, dst=dst, link_type=link_type, nbytes=wire_bytes,
                start=start + i * slot, end=start + (i + 1) * slot,
            ))

    def epoch_fixed_overhead(self) -> float:
        return self.constants.nccl_epoch_fixed_overhead

    def per_iteration_overhead(self) -> float:
        """Grouped-launch rendezvous across all engine threads.

        Every iteration, MXNet's NCCL KVStore must get all N engine
        threads to enqueue their collectives together; the rendezvous cost
        grows with GPU count and is independent of model size -- large for
        LeNet in relative terms, negligible for Inception-v3.
        """
        if self.num_gpus == 1:
            return 0.0
        return self.constants.nccl_group_sync_per_gpu * self.num_gpus

    # ------------------------------------------------------------------
    # Protocol-layer hooks (no-ops in compat mode)
    # ------------------------------------------------------------------
    def _choose(self, collective: str, nbytes: int) -> Optional[TuningChoice]:
        """The tuner's decision for this message, or ``None`` in compat."""
        if self._tuner is None or self.plan.size < 2:
            return None
        return self._tuner.select(collective, nbytes)

    def _emit_choice(self, choice: TuningChoice, array: WeightArray,
                     at: float) -> None:
        self._publish(ProtocolChoiceEvent(
            collective=choice.collective, array=array.name,
            nbytes=choice.nbytes, algorithm=choice.algorithm.value,
            protocol=choice.protocol.value, predicted=choice.predicted,
            pinned=choice.pinned, at=at,
        ))

    def _emit_tree_steps(
        self, choice: TuningChoice, array: WeightArray,
        start: float, end: float,
    ) -> None:
        """Per-chunk timing of one tree collective window.

        The window divides into one slot per (direction, chunk round);
        every tree edge is active in each round -- the pipelined
        steady-state, where all levels of the tree carry consecutive
        chunks simultaneously.
        """
        if not self._tree_edges or end <= start:
            return
        schedule = tree_hop_bytes(choice.collective, choice.nbytes,
                                  len(self._tree_edges))
        if not schedule:
            return
        chunk_bytes = self.constants.nccl_chunk_bytes
        num_chunks = max(1, -(-choice.nbytes // chunk_bytes))
        directions = len({direction for _, direction, _ in schedule})
        slots = directions * num_chunks
        slot = (end - start) / slots
        for edge_index, direction, nbytes in schedule:
            child, parent, _, link_type = self._tree_edges[edge_index]
            src, dst = (child, parent) if direction == 0 else (parent, child)
            base, rem = divmod(nbytes, num_chunks)
            for chunk in range(num_chunks):
                t0 = start + (direction * num_chunks + chunk) * slot
                self._publish(CollectiveChunkEvent(
                    collective=choice.collective, array=array.name,
                    algorithm=choice.algorithm.value,
                    protocol=choice.protocol.value,
                    chunk=chunk, num_chunks=num_chunks,
                    src=src, dst=dst, link_type=link_type,
                    nbytes=base + (1 if chunk < rem else 0),
                    start=t0, end=t0 + slot,
                ))

    # ------------------------------------------------------------------
    # Collective durations
    # ------------------------------------------------------------------
    def reduce_duration(self, nbytes: int) -> float:
        """Ring Reduce toward the root GPU.

        With chunk pipelining every ring link stays busy carrying the
        accumulating stream, so each channel moves the full array: the
        wire cost is ``S / aggregate_bandwidth`` plus the pipeline fill of
        ``N-1`` chunk steps.  Non-compat modes defer to the tuner's
        protocol-aware cost model instead.
        """
        c = self.constants
        n = self.plan.size
        if n == 1:
            return c.nccl_single_gpu_kernel
        choice = self._choose("reduce", nbytes)
        if choice is not None:
            return choice.predicted
        wire = nbytes / self.plan.aggregate_bandwidth
        return c.nccl_call_overhead + (n - 1) * c.nccl_ring_step_latency + wire

    def broadcast_duration(self, nbytes: int) -> float:
        """Ring Broadcast from the root: same pipelined full-array cost."""
        c = self.constants
        n = self.plan.size
        if n == 1:
            return c.nccl_single_gpu_kernel
        choice = self._choose("broadcast", nbytes)
        if choice is not None:
            return choice.predicted
        wire = nbytes / self.plan.aggregate_bandwidth
        return c.nccl_call_overhead + (n - 1) * c.nccl_ring_step_latency + wire

    # ------------------------------------------------------------------
    # Weight-update path
    # ------------------------------------------------------------------
    def sync_array(self, array: WeightArray) -> Generator[Event, None, None]:
        yield self.env.process(self._collective("reduce", array))
        yield self.env.process(self.server.run_kernel(self._update_kernel(array)))
        yield self.env.process(self._collective("broadcast", array))

    def _collective_kernel(self, kind: str, array: WeightArray, duration: float):
        """The ReduceKernel/BroadcastKernel occupancy on one GPU.

        NCCL collectives are cooperative kernels: every participating GPU
        runs one, and it occupies SMs (briefly, but per array and per
        call) -- this is the per-array NCCL cost the paper's Table II
        isolates on a single GPU and that layer-rich networks amortize
        through back-to-back pipelining.
        """
        from repro.gpu.kernel import KernelSpec

        return KernelSpec(
            name=f"nccl.{kind}.{array.name}",
            layer=array.layer,
            stage="wu",
            duration=duration,
            flops=float(array.numel),
            bytes_moved=array.nbytes,
        )

    def _collective(self, kind: str, array: WeightArray) -> Generator[Event, None, None]:
        c = self.constants
        if self.plan.size == 1:
            # Single GPU: the collective degenerates to a device-local
            # kernel that still occupies the compute engine.
            kernel = self._collective_kernel(kind, array, c.nccl_single_gpu_kernel)
            yield self.env.process(self.server.run_kernel(kernel))
            return
        wire_bytes = self._comm_bytes(array)
        duration = (
            self.reduce_duration(wire_bytes)
            if kind == "reduce"
            else self.broadcast_duration(wire_bytes)
        )
        self._check_collective(kind, wire_bytes, duration)
        queued = self.env.now
        req = self._stream.request()
        yield req
        start = self.env.now
        self._emit_stream_waits(start - queued, start)
        # Each GPU launches its cooperative kernel; the brief SM occupancy
        # contends with backward-pass compute on every device.
        taxes = [
            self.env.process(
                dev.run_kernel(self._collective_kernel(kind, array, c.nccl_engine_tax))
            )
            for dev in self.devices
        ]
        try:
            yield self.env.timeout(duration)
            yield self.env.all_of(taxes)
        finally:
            self._stream.release(req)
        # Synchronous post-collective bookkeeping: tuner choice replay and
        # the per-step/per-chunk event fan-out (allocation-heavy, a known
        # self-time hot spot) -- spanned as "nccl.pipeline" so the perf
        # profile attributes it separately from simulated progress.
        with PERF.span("nccl.pipeline"):
            if PERF.enabled:
                PERF.count("nccl.collectives")
            choice = self._choose(kind, wire_bytes)
            if choice is None or choice.algorithm is NcclAlgorithm.RING:
                self._emit_ring_steps(kind, array, start, start + duration,
                                      wire_bytes)
            else:
                self._emit_tree_steps(choice, array, start, start + duration)
            if choice is not None:
                self._emit_choice(choice, array, start)
            self._record_transfer("nccl", self.server.index, -1, wire_bytes,
                                  start, self.env.now)
