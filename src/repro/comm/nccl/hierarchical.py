"""Hierarchical rail-aware NCCL collectives for the cluster tier.

The flat global ring (:mod:`repro.comm.nccl.rings`) paces every hop at
the slowest link, so a 1024-GPU ring moves at InfiniBand speed even for
the seven-eighths of its hops that sit on NVLink.  NCCL's multi-node
schedule -- and FireCaffe's before it -- is hierarchical instead:

1. **intra-node reduce-scatter** over the NVLink ring: after ``g - 1``
   steps local GPU ``i`` holds the node-local sum of shard ``i``;
2. **inter-node exchange** of shard ``i`` across the ``M`` nodes over
   the InfiniBand *rail* serving GPU ``i`` (ring or tree schedule, all
   rails concurrent);
3. **intra-node allgather** over the NVLink ring redistributes the
   fully reduced shards.

This module provides the pure algebra of that schedule (exact integer
wire totals, closed-form phase timings built on the audited
:func:`~repro.comm.nccl.protocol._pipelined_time` pipeline model) and
:class:`HierarchicalNcclCommunicator`, which folds it into the event
timeline either *event*-wise (one charged window per phase, per-rail
ring-step events) or *analytically* (one closed-form window per
collective -- a 1024-GPU AllReduce cannot afford per-chunk events on
every link).  Both modes charge the same float algebra, which is what
the ``temporal.hierarchical-agreement`` invariant cross-validates.  See
docs/SCALING.md for the model and its validity envelope.
"""

from __future__ import annotations

import math
from typing import Generator, List, Tuple

from repro.comm.nccl.communicator import NcclCommunicator
from repro.comm.nccl.protocol import (
    _pipelined_time,
    _segments,
    ring_wire_total,
    tree_wire_total,
)
from repro.comm.nccl.rings import RingPlan, build_ring_plan
from repro.core.constants import CALIBRATION, CalibrationConstants
from repro.core.errors import ConfigurationError
from repro.dnn.stats import WeightArray
from repro.obs.events import RingStepEvent
from repro.perf.spans import PERF
from repro.sim.events import Event
from repro.topology.cluster import (
    GPUS_PER_NODE,
    IB_LANE_BANDWIDTH,
    IB_LANES_PER_NODE,
    IB_RAIL_LATENCY,
    rail_of_rank,
)

#: Valid inter-node exchange schedules.
INTER_ALGORITHMS = ("ring", "tree")

#: Valid fast-path modes (the resolved values; ``"auto"`` is resolved by
#: the strategy layer before construction).
FAST_PATHS = ("event", "analytic")


# ----------------------------------------------------------------------
# Pure schedule algebra (no simulation state)
# ----------------------------------------------------------------------
def rail_bytes(
    nbytes: int,
    gpus_per_node: int = GPUS_PER_NODE,
    rails: int = IB_LANES_PER_NODE,
) -> List[int]:
    """Bytes each inter-node rail carries for one shard exchange.

    The intra-node reduce-scatter leaves shard ``i`` (of the
    ``gpus_per_node`` integer segments of the payload) on local GPU
    ``i``; rail ``r`` then exchanges the shards of its GPUs.  Sums to
    exactly ``nbytes``:

    >>> rail_bytes(100, 8, 4)
    [26, 26, 24, 24]
    >>> sum(rail_bytes(100, 8, 4))
    100
    """
    shards = _segments(nbytes, gpus_per_node)
    per_rail = [0] * rails
    for i, s in enumerate(shards):
        per_rail[rail_of_rank(i, rails)] += s
    return per_rail


def rail_assignment(
    nbytes: int,
    gpus_per_node: int = GPUS_PER_NODE,
    rails: int = IB_LANES_PER_NODE,
    rail_scales: Tuple[float, ...] | None = None,
) -> List[int]:
    """Bytes each rail carries after re-railing around failed rails.

    Healthy rails (``rail_scales`` omitted or all 1.0) keep the
    :func:`rail_bytes` split.  A failed rail (scale 0) re-rails its shard
    traffic onto the survivors: its bytes are integer-split evenly
    (:func:`~repro.comm.nccl.protocol._segments`) over the surviving
    rails in index order, so conservation is exact and the assignment is
    deterministic.  Degraded-but-alive rails (0 < scale < 1) keep their
    own traffic -- they are slow, not gone.

    >>> rail_assignment(100, 8, 4, (1.0, 0.0, 1.0, 1.0))
    [35, 0, 33, 32]
    >>> sum(rail_assignment(100, 8, 4, (1.0, 0.0, 1.0, 1.0)))
    100
    """
    base = rail_bytes(nbytes, gpus_per_node, rails)
    if rail_scales is None or all(s == 1.0 for s in rail_scales):
        return base
    survivors = [r for r in range(rails) if rail_scales[r] > 0.0]
    if not survivors:
        from repro.core.errors import FaultPlanError

        raise FaultPlanError(
            "every inter-node rail is down: re-railing needs at least "
            "one surviving rail"
        )
    assigned = [base[r] if rail_scales[r] > 0.0 else 0 for r in range(rails)]
    for r in range(rails):
        if rail_scales[r] > 0.0 or base[r] == 0:
            continue
        for j, part in enumerate(_segments(base[r], len(survivors))):
            assigned[survivors[j]] += part
    return assigned


def hierarchical_phase_wire(
    nbytes: int, nodes: int, gpus_per_node: int = GPUS_PER_NODE
) -> Tuple[int, int, int]:
    """Exact wire bytes of the three phases, all links summed.

    Intra-node reduce-scatter and allgather each move every payload
    segment across ``g - 1`` ring steps on every node; the inter-node
    exchange AllReduces each shard across ``M`` nodes, which costs
    ``2(M-1)`` segment traversals per shard for the ring schedule and
    ``(M-1)`` edges x 2 directions for the tree -- the *same* total:

    >>> hierarchical_phase_wire(800, nodes=4, gpus_per_node=8)
    (22400, 4800, 22400)
    """
    if nbytes <= 0:
        return (0, 0, 0)
    intra = nodes * (gpus_per_node - 1) * nbytes if gpus_per_node > 1 else 0
    inter = 2 * (nodes - 1) * nbytes if nodes > 1 else 0
    return (intra, inter, intra)


def hierarchical_wire_total(
    nbytes: int, nodes: int, gpus_per_node: int = GPUS_PER_NODE
) -> int:
    """Closed-form total wire bytes of one hierarchical AllReduce."""
    rs, inter, ag = hierarchical_phase_wire(nbytes, nodes, gpus_per_node)
    return rs + inter + ag


def hierarchical_schedule_total(
    nbytes: int,
    nodes: int,
    gpus_per_node: int = GPUS_PER_NODE,
    inter_algorithm: str = "ring",
) -> int:
    """Enumerated wire total: every phase's schedule, segment by segment.

    Independent of :func:`hierarchical_wire_total`'s closed form -- the
    conservation checker compares the two, so a schedule bug and an
    algebra bug cannot hide each other:

    >>> hierarchical_schedule_total(800, 4) == hierarchical_wire_total(800, 4)
    True
    >>> hierarchical_schedule_total(801, 3, inter_algorithm="tree") == \\
    ...     hierarchical_wire_total(801, 3)
    True
    """
    if nbytes <= 0 or nodes * gpus_per_node < 2:
        return 0
    total = 0
    if gpus_per_node > 1:
        # Ring reduce-scatter + allgather on every node is exactly the
        # wire schedule of one intra-node ring AllReduce.
        total += nodes * ring_wire_total("allreduce", nbytes, gpus_per_node)
    if nodes > 1:
        for shard in _segments(nbytes, gpus_per_node):
            if inter_algorithm == "tree":
                total += tree_wire_total("allreduce", shard, nodes - 1)
            else:
                total += ring_wire_total("allreduce", shard, nodes)
    return total


def hierarchical_phase_times(
    nbytes: int,
    nodes: int,
    intra_bandwidth: float,
    rail_bandwidth: float,
    rail_latency: float,
    gpus_per_node: int = GPUS_PER_NODE,
    rails: int = IB_LANES_PER_NODE,
    inter_algorithm: str = "ring",
    constants: CalibrationConstants = CALIBRATION,
    rail_scales: Tuple[float, ...] | None = None,
) -> Tuple[float, float, float]:
    """Closed-form (reduce-scatter, inter-exchange, allgather) seconds.

    The intra phases are ``g - 1``-step ring pipelines moving one
    ``S/g`` segment per step at the NVLink ring's aggregate bandwidth
    (``intra_bandwidth``, already efficiency-scaled).  The inter phase
    is paced by the *fullest* rail (rails run concurrently but the
    barrier is the slowest): a ``2(M-1)``-step ring pipeline of
    ``B_max/M`` segments, or a ``2 x ceil(log2 M)``-deep tree pipeline
    of the full ``B_max``, at ``rail_bandwidth`` derated by the NCCL
    bus efficiency.  All three use the audited fill+drain pipeline
    model (:func:`~repro.comm.nccl.protocol._pipelined_time`).

    ``rail_scales`` (per-rail bandwidth multipliers from an active
    :class:`~repro.faults.plan.RailFault` set) makes the inter phase
    fault-aware: failed rails' traffic re-rails per
    :func:`rail_assignment` and the phase paces at the *slowest loaded
    rail* -- the max over surviving rails of that rail's pipeline time at
    its degraded bandwidth.  A healthy scale set takes the exact code
    path of the no-argument form, so no-fault runs stay byte-identical.
    """
    chunk = constants.nccl_chunk_bytes
    t_intra = 0.0
    if gpus_per_node > 1:
        t_intra = _pipelined_time(
            max(1, nbytes // gpus_per_node),
            gpus_per_node - 1,
            chunk,
            intra_bandwidth,
            constants.nccl_ring_step_latency,
        )
    t_inter = 0.0
    if nodes > 1:
        bw = rail_bandwidth * constants.nccl_bandwidth_efficiency
        depth = max(1, math.ceil(math.log2(nodes)))
        if rail_scales is None or all(s == 1.0 for s in rail_scales):
            busiest = max(rail_bytes(nbytes, gpus_per_node, rails))
            if inter_algorithm == "tree":
                t_inter = 2.0 * _pipelined_time(
                    busiest, depth, chunk, bw, rail_latency
                )
            else:
                t_inter = _pipelined_time(
                    max(1, busiest // nodes),
                    2 * (nodes - 1),
                    chunk,
                    bw,
                    rail_latency,
                )
        else:
            assigned = rail_assignment(
                nbytes, gpus_per_node, rails, rail_scales
            )
            for b, scale in zip(assigned, rail_scales):
                if b <= 0 or scale <= 0.0:
                    continue
                rail_bw = bw * scale
                if inter_algorithm == "tree":
                    t = 2.0 * _pipelined_time(
                        b, depth, chunk, rail_bw, rail_latency
                    )
                else:
                    t = _pipelined_time(
                        max(1, b // nodes),
                        2 * (nodes - 1),
                        chunk,
                        rail_bw,
                        rail_latency,
                    )
                t_inter = max(t_inter, t)
    return (t_intra, t_inter, t_intra)


# ----------------------------------------------------------------------
# The communicator
# ----------------------------------------------------------------------
class HierarchicalNcclCommunicator(NcclCommunicator):
    """Rail-aware hierarchical AllReduce with replicated local updates.

    Covers the whole cluster (``cluster_nodes * 8`` ranks) even when the
    trainer event-simulates only a *representative node* (node 0's eight
    GPUs): collective durations, wire accounting and the per-iteration
    group rendezvous are always charged for the full cluster, while
    kernels run on the simulated devices only.  ``fast_path`` selects
    how collectives enter the timeline -- ``"event"`` charges one window
    per phase and emits per-rail ring-step events, ``"analytic"``
    charges a single closed-form window -- and both modes evaluate the
    same float algebra (invariant ``temporal.hierarchical-agreement``).
    """

    name = "nccl-hierarchical"

    def __init__(
        self,
        *args,
        cluster_nodes: int = 1,
        rails: int = IB_LANES_PER_NODE,
        rail_bandwidth: float = IB_LANE_BANDWIDTH,
        rail_latency: float | None = None,
        inter_algorithm: str = "ring",
        fast_path: str = "event",
        rail_scales: Tuple[float, ...] | None = None,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        if cluster_nodes < 1:
            raise ConfigurationError("cluster_nodes must be positive")
        if inter_algorithm not in INTER_ALGORITHMS:
            raise ConfigurationError(
                f"inter_algorithm must be one of {INTER_ALGORITHMS}, "
                f"got {inter_algorithm!r}"
            )
        if fast_path not in FAST_PATHS:
            raise ConfigurationError(
                f"fast_path must be one of {FAST_PATHS}, got {fast_path!r} "
                "(resolve 'auto' before construction)"
            )
        if rails < 1 or GPUS_PER_NODE % rails:
            raise ConfigurationError(
                f"rails must divide {GPUS_PER_NODE}, got {rails}"
            )
        if rail_scales is not None:
            if len(rail_scales) != rails:
                raise ConfigurationError(
                    f"rail_scales needs one entry per rail ({rails}), "
                    f"got {len(rail_scales)}"
                )
            if any(not 0.0 <= s <= 1.0 for s in rail_scales):
                raise ConfigurationError(
                    "rail_scales entries must be in [0, 1]"
                )
            if all(s == 0.0 for s in rail_scales):
                from repro.core.errors import FaultPlanError

                raise FaultPlanError(
                    "every inter-node rail is down: re-railing needs at "
                    "least one surviving rail"
                )
            if all(s == 1.0 for s in rail_scales):
                # A healthy scale set is the no-fault communicator; drop
                # it so the no-fault algebra path stays byte-identical.
                rail_scales = None
        self.cluster_nodes = cluster_nodes
        self.rails = rails
        self.rail_scales = tuple(rail_scales) if rail_scales else None
        self.rail_bandwidth = rail_bandwidth
        self.rail_latency = (
            rail_latency if rail_latency is not None else IB_RAIL_LATENCY
        )
        self.inter_algorithm = inter_algorithm
        self.fast_path = fast_path
        with PERF.span("nccl.build"):
            # The intra-node NVLink ring of the representative node; the
            # parent's plan equals it when only node 0 is simulated.
            intra_indices = [
                d.index for d in self.devices if d.index < GPUS_PER_NODE
            ]
            self.intra_plan: RingPlan = build_ring_plan(
                self.fabric.topology, intra_indices, self.constants
            )

    @property
    def total_ranks(self) -> int:
        """GPUs participating in the collective across the cluster."""
        return self.cluster_nodes * GPUS_PER_NODE

    @property
    def representative(self) -> bool:
        """True when fewer devices are simulated than ranks exist."""
        return len(self.devices) < self.total_ranks

    def per_iteration_overhead(self) -> float:
        """Grouped-launch rendezvous across the *whole cluster*'s engines."""
        if self.total_ranks == 1:
            return 0.0
        return self.constants.nccl_group_sync_per_gpu * self.total_ranks

    # ------------------------------------------------------------------
    # Durations
    # ------------------------------------------------------------------
    def _phase_times(self, nbytes: int) -> Tuple[float, float, float]:
        return hierarchical_phase_times(
            nbytes,
            self.cluster_nodes,
            self.intra_plan.aggregate_bandwidth,
            self.rail_bandwidth,
            self.rail_latency,
            gpus_per_node=GPUS_PER_NODE,
            rails=self.rails,
            inter_algorithm=self.inter_algorithm,
            constants=self.constants,
            rail_scales=self.rail_scales,
        )

    def allreduce_duration(self, nbytes: int) -> float:
        """Closed-form hierarchical AllReduce time (all three phases)."""
        t_rs, t_inter, t_ag = self._phase_times(nbytes)
        return self.constants.nccl_call_overhead + t_rs + t_inter + t_ag

    # ------------------------------------------------------------------
    # Checkpoint
    # ------------------------------------------------------------------
    def _check_hierarchical(
        self, nbytes: int, duration: float, analytic: float
    ) -> None:
        """Fire the ``comm.hierarchical`` checkpoint for one collective."""
        if not self.checks_active:
            return
        t_rs, t_inter, t_ag = self._phase_times(nbytes)
        scales = self.rail_scales or (1.0,) * self.rails
        multi = self.cluster_nodes > 1
        self._check(
            "comm.hierarchical",
            kind="allreduce",
            nbytes=nbytes,
            size=self.total_ranks,
            nodes=self.cluster_nodes,
            gpus_per_node=GPUS_PER_NODE,
            rails=self.rails,
            inter_algorithm=self.inter_algorithm,
            mode=self.fast_path,
            duration=duration,
            analytic=analytic,
            t_reduce_scatter=t_rs,
            t_inter=t_inter,
            t_allgather=t_ag,
            wire_total=hierarchical_wire_total(
                nbytes, self.cluster_nodes, GPUS_PER_NODE
            ),
            schedule_total=hierarchical_schedule_total(
                nbytes, self.cluster_nodes, GPUS_PER_NODE,
                self.inter_algorithm,
            ),
            max_rail_bytes=(
                max(rail_bytes(nbytes, GPUS_PER_NODE, self.rails))
                if self.cluster_nodes > 1
                else 0
            ),
            intra_bound_bandwidth=self.intra_plan.aggregate_bandwidth,
            rail_bound_bandwidth=self.rail_bandwidth,
            rail_scales=scales,
            healthy_rail_bytes=(
                tuple(rail_bytes(nbytes, GPUS_PER_NODE, self.rails))
                if multi else ()
            ),
            rail_assignment=(
                tuple(rail_assignment(
                    nbytes, GPUS_PER_NODE, self.rails, self.rail_scales
                ))
                if multi else ()
            ),
            faulted=self.rail_scales is not None,
            now=self.env.now,
        )

    # ------------------------------------------------------------------
    # Event emission
    # ------------------------------------------------------------------
    def _intra_hops(self) -> List[Tuple[int, int, str]]:
        """Directed (src, dst, link_type) hops of the intra-node ring."""
        order = self.intra_plan.order
        if len(order) < 2:
            return []
        topology = self.fabric.topology
        hops = []
        for a, b in zip(order, order[1:] + order[:1]):
            link = topology.nvlink_between(topology.gpu(a), topology.gpu(b))
            hops.append((a, b, link.link_type.value if link else "pcie"))
        return hops

    def _emit_intra_steps(
        self, collective: str, array: WeightArray,
        start: float, end: float, nbytes: int,
    ) -> None:
        """``g - 1`` step windows, every intra-node ring hop active."""
        hops = self._intra_hops()
        g = self.intra_plan.size
        if not hops or g < 2 or end <= start:
            return
        slot = (end - start) / (g - 1)
        seg = max(1, nbytes // g)
        for step in range(g - 1):
            t0, t1 = start + step * slot, start + (step + 1) * slot
            for src, dst, link_type in hops:
                self._publish(RingStepEvent(
                    collective=collective, array=array.name, step=step,
                    src=src, dst=dst, link_type=link_type, nbytes=seg,
                    start=t0, end=t1,
                ))

    def _emit_inter_steps(
        self, array: WeightArray, start: float, end: float, nbytes: int,
    ) -> None:
        """Per-rail inter-node exchange windows.

        Each rail is represented by its first GPU on consecutive nodes
        (rank ``node * 8 + rail_lead``); ring mode has ``2(M-1)`` step
        windows moving one ``B_r/M`` segment per hop, tree mode
        ``2*ceil(log2 M)`` windows moving the full ``B_r``.
        """
        m = self.cluster_nodes
        if m < 2 or end <= start:
            return
        per_rail = rail_assignment(
            nbytes, GPUS_PER_NODE, self.rails, self.rail_scales
        )
        lead = GPUS_PER_NODE // self.rails
        collective = f"hier-inter-{self.inter_algorithm}"
        if self.inter_algorithm == "tree":
            steps = 2 * max(1, math.ceil(math.log2(m)))
        else:
            steps = 2 * (m - 1)
        slot = (end - start) / steps
        for r, b in enumerate(per_rail):
            if self.rail_scales is not None and b <= 0:
                continue  # failed rail: its traffic re-railed elsewhere
            seg = b if self.inter_algorithm == "tree" else max(1, b // m)
            for step in range(steps):
                src_node = step % m
                dst_node = (step + 1) % m
                self._publish(RingStepEvent(
                    collective=collective, array=array.name, step=step,
                    src=src_node * GPUS_PER_NODE + r * lead,
                    dst=dst_node * GPUS_PER_NODE + r * lead,
                    link_type="infiniband", nbytes=seg,
                    start=start + step * slot, end=start + (step + 1) * slot,
                ))

    # ------------------------------------------------------------------
    # Weight-update path
    # ------------------------------------------------------------------
    def sync_array(self, array: WeightArray) -> Generator[Event, None, None]:
        yield self.env.process(self._allreduce(array))
        # Every simulated GPU applies the identical update in parallel;
        # the unsimulated nodes run the same kernels on their own engines.
        updates = [
            self.env.process(dev.run_kernel(self._update_kernel(array)))
            for dev in self.devices
        ]
        yield self.env.all_of(updates)

    def _allreduce(self, array: WeightArray) -> Generator[Event, None, None]:
        c = self.constants
        wire_bytes = self._comm_bytes(array)
        t_rs, t_inter, t_ag = self._phase_times(wire_bytes)
        analytic = c.nccl_call_overhead + t_rs + t_inter + t_ag
        if self.fast_path == "event":
            duration = (c.nccl_call_overhead + t_rs) + t_inter + t_ag
        else:
            duration = analytic
        self._check_hierarchical(wire_bytes, duration, analytic)
        queued = self.env.now
        req = self._stream.request()
        yield req
        start = self.env.now
        self._emit_stream_waits(start - queued, start)
        taxes = [
            self.env.process(
                dev.run_kernel(
                    self._collective_kernel("allreduce", array,
                                            c.nccl_engine_tax)
                )
            )
            for dev in self.devices
        ]
        try:
            if self.fast_path == "event":
                # One charged window per phase: the inter-node exchange
                # cannot start before the reduce-scatter finishes, and
                # the allgather not before the exchange.
                yield self.env.timeout(c.nccl_call_overhead + t_rs)
                rs_end = self.env.now
                if t_inter > 0:
                    yield self.env.timeout(t_inter)
                inter_end = self.env.now
                if t_ag > 0:
                    yield self.env.timeout(t_ag)
            else:
                yield self.env.timeout(duration)
            yield self.env.all_of(taxes)
        finally:
            self._stream.release(req)
        with PERF.span("nccl.pipeline"):
            if PERF.enabled:
                PERF.count("nccl.collectives")
            if self.fast_path == "event":
                self._emit_intra_steps("hier-reduce-scatter", array,
                                       start, rs_end, wire_bytes)
                self._emit_inter_steps(array, rs_end, inter_end, wire_bytes)
                self._emit_intra_steps("hier-allgather", array,
                                       inter_end, inter_end + t_ag,
                                       wire_bytes)
            else:
                # Analytic mode: one summary window, no per-step fan-out.
                self._publish(RingStepEvent(
                    collective="hier-analytic", array=array.name, step=0,
                    src=self.server.index, dst=self.server.index + 1,
                    link_type="infiniband", nbytes=wire_bytes,
                    start=start, end=start + duration,
                ))
            self._record_transfer("nccl", self.server.index, -1, wire_bytes,
                                  start, self.env.now)
