"""NCCL-based communication.

:class:`NcclCommunicator` is the paper's method (MXNet ``nccl`` KVStore:
Reduce to GPU0, update, Broadcast); :class:`NcclAllReduceCommunicator` is
the modern AllReduce-with-local-updates variant for comparison;
:class:`HierarchicalNcclCommunicator` is the cluster tier's rail-aware
hierarchical AllReduce (docs/SCALING.md).
"""

from repro.comm.nccl.allreduce import NcclAllReduceCommunicator
from repro.comm.nccl.communicator import NcclCommunicator
from repro.comm.nccl.hierarchical import (
    HierarchicalNcclCommunicator,
    hierarchical_phase_times,
    hierarchical_phase_wire,
    hierarchical_schedule_total,
    hierarchical_wire_total,
    rail_assignment,
    rail_bytes,
)
from repro.comm.nccl.rings import RingPlan, build_ring_plan, find_nvlink_ring

__all__ = [
    "HierarchicalNcclCommunicator",
    "NcclAllReduceCommunicator",
    "NcclCommunicator",
    "RingPlan",
    "build_ring_plan",
    "find_nvlink_ring",
    "hierarchical_phase_times",
    "hierarchical_phase_wire",
    "hierarchical_schedule_total",
    "hierarchical_wire_total",
    "rail_assignment",
    "rail_bytes",
]
