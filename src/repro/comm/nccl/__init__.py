"""NCCL-based communication.

:class:`NcclCommunicator` is the paper's method (MXNet ``nccl`` KVStore:
Reduce to GPU0, update, Broadcast); :class:`NcclAllReduceCommunicator` is
the modern AllReduce-with-local-updates variant for comparison.
"""

from repro.comm.nccl.allreduce import NcclAllReduceCommunicator
from repro.comm.nccl.communicator import NcclCommunicator
from repro.comm.nccl.rings import RingPlan, build_ring_plan, find_nvlink_ring

__all__ = [
    "NcclAllReduceCommunicator",
    "NcclCommunicator",
    "RingPlan",
    "build_ring_plan",
    "find_nvlink_ring",
]
