"""The NCCL algorithm x protocol fidelity layer.

NCCL does not run "one collective": per message it chooses an
*algorithm* (Ring or Tree schedule over the topology) and a *wire
protocol* (how bytes travel each hop), then pipelines the message
through the schedule in chunks.  The three protocols trade latency
against payload efficiency:

============  ===================  =======================================
protocol      wire efficiency      per-hop behaviour
============  ===================  =======================================
``simple``    1.0 (full lines)     receiver must fence + flush per hop:
                                   highest hop latency, full bandwidth
``ll``        0.5 (4B data + 4B    receiver polls inline flags: lowest
              flag per 8B word)    latency, half the wire is flags
``ll128``     0.9375 (120B data    NVLink-only 128B atomic stores: near-
              per 128B line)       full bandwidth at low latency
============  ===================  =======================================

This module is pure cost arithmetic -- no simulation state.  It provides

* :class:`ProtocolSpec` / :func:`protocol_table` -- the per-protocol
  latency/bandwidth/flush constants, built from
  :class:`~repro.core.constants.CalibrationConstants`;
* :func:`ring_collective_time` / :func:`tree_collective_time` -- the
  chunk-pipelined alpha-beta cost of one collective, replacing the
  whole-message store-and-forward view (a message larger than
  ``nccl_chunk_bytes`` is split into chunks that overlap across hops, so
  a deep schedule only pays the pipeline fill once);
* :func:`ring_hop_bytes` / :func:`tree_hop_bytes` -- exact integer
  per-hop byte schedules (what each directed hop carries), used for
  event emission and byte-conservation tests.  Both algorithms move the
  same wire total for the same gradient: ``2*(N-1)*S``.

The legacy "compat" path never calls into this module, which is what
keeps the calibrated paper figures byte-stable (see docs/COMM.md).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.constants import CALIBRATION, CalibrationConstants


class NcclAlgorithm(str, enum.Enum):
    """Collective schedule shape: ring or spanning tree."""

    RING = "ring"
    TREE = "tree"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class NcclProtocol(str, enum.Enum):
    """Wire protocol: Simple, LL (low latency) or LL128."""

    SIMPLE = "simple"
    LL = "ll"
    LL128 = "ll128"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class ProtocolSpec:
    """Cost profile of one wire protocol.

    ``bandwidth_ratio`` is the fraction of raw link bandwidth carrying
    payload; ``hop_latency`` is the per-hop handshake cost; ``flush_cost``
    is the once-per-collective fence/flush; ``max_bytes`` caps eligible
    message sizes (``None`` = unlimited); ``nvlink_only`` protocols are
    unavailable on plans that fall back to PCIe or InfiniBand.
    """

    protocol: NcclProtocol
    bandwidth_ratio: float
    hop_latency: float
    flush_cost: float
    max_bytes: Optional[int] = None
    nvlink_only: bool = False


def protocol_table(
    constants: CalibrationConstants = CALIBRATION,
) -> Dict[NcclProtocol, ProtocolSpec]:
    """The three protocol cost profiles under ``constants``."""
    return {
        NcclProtocol.SIMPLE: ProtocolSpec(
            protocol=NcclProtocol.SIMPLE,
            bandwidth_ratio=1.0,
            hop_latency=constants.nccl_simple_hop_latency,
            flush_cost=constants.nccl_simple_flush_cost,
        ),
        NcclProtocol.LL: ProtocolSpec(
            protocol=NcclProtocol.LL,
            bandwidth_ratio=constants.nccl_ll_bandwidth_ratio,
            hop_latency=constants.nccl_ll_hop_latency,
            flush_cost=0.0,
            max_bytes=constants.nccl_ll_max_bytes,
        ),
        NcclProtocol.LL128: ProtocolSpec(
            protocol=NcclProtocol.LL128,
            bandwidth_ratio=constants.nccl_ll128_bandwidth_ratio,
            hop_latency=constants.nccl_ll128_hop_latency,
            flush_cost=0.0,
            nvlink_only=True,
        ),
    }


# ----------------------------------------------------------------------
# Chunk-pipelined collective cost
# ----------------------------------------------------------------------
def _pipelined_time(
    unit_bytes: int,
    steps: int,
    chunk_bytes: int,
    effective_bandwidth: float,
    hop_latency: float,
) -> float:
    """Time for a ``unit_bytes`` payload to cross a ``steps``-deep
    pipeline of identical hops, split into ``chunk_bytes`` chunks.

    The classic fill+drain model: ``(steps + chunks - 1)`` chunk slots,
    each costing one hop handshake plus one chunk's wire time.  With one
    chunk this degenerates to store-and-forward; with many chunks the
    wire term approaches ``unit_bytes / bandwidth`` and only the fill
    pays the extra hops.
    """
    if unit_bytes <= 0 or steps <= 0:
        return 0.0
    chunks = max(1, math.ceil(unit_bytes / chunk_bytes))
    per_chunk = (unit_bytes / chunks) / effective_bandwidth
    return (steps + chunks - 1) * (hop_latency + per_chunk)


def ring_collective_time(
    collective: str,
    nbytes: int,
    size: int,
    aggregate_bandwidth: float,
    proto: ProtocolSpec,
    constants: CalibrationConstants = CALIBRATION,
) -> float:
    """Chunk-pipelined ring collective under one protocol.

    AllReduce runs reduce-scatter + all-gather: ``2(N-1)`` steps moving
    ``S/N`` segments, the bandwidth-optimal ``2(N-1)/N * S`` per channel.
    Root-bound Reduce/Broadcast stream the full payload around the ring:
    ``N-1`` steps, ``S`` on the wire.
    """
    if size < 2:
        return constants.nccl_single_gpu_kernel
    bw = aggregate_bandwidth * proto.bandwidth_ratio
    if collective == "allreduce":
        steps = 2 * (size - 1)
        unit = max(1, nbytes // size)   # one ring segment per step
    else:
        steps = size - 1
        unit = nbytes
    pipe = _pipelined_time(unit, steps, constants.nccl_chunk_bytes, bw, proto.hop_latency)
    return constants.nccl_call_overhead + proto.flush_cost + pipe


def tree_collective_time(
    collective: str,
    nbytes: int,
    depth: int,
    aggregate_bandwidth: float,
    proto: ProtocolSpec,
    constants: CalibrationConstants = CALIBRATION,
) -> float:
    """Chunk-pipelined tree collective under one protocol.

    Reduce climbs ``depth`` hops toward the root, Broadcast descends
    them, AllReduce does both back to back.  Chunks pipeline down the
    tree, so each direction costs one ``depth``-deep pipeline of the
    full payload -- ``2S`` on the wire for AllReduce versus the ring's
    ``2(N-1)/N * S``, but with logarithmic rather than linear step count.
    """
    if depth < 1:
        return constants.nccl_single_gpu_kernel
    bw = aggregate_bandwidth * proto.bandwidth_ratio
    directions = 2 if collective == "allreduce" else 1
    pipe = _pipelined_time(
        nbytes, depth, constants.nccl_chunk_bytes, bw, proto.hop_latency
    )
    return constants.nccl_call_overhead + proto.flush_cost + directions * pipe


# ----------------------------------------------------------------------
# Exact wire-byte schedules
# ----------------------------------------------------------------------
def _segments(nbytes: int, parts: int) -> List[int]:
    """Split ``nbytes`` into ``parts`` integer segments summing exactly."""
    base, rem = divmod(nbytes, parts)
    return [base + (1 if i < rem else 0) for i in range(parts)]


def ring_hop_bytes(
    collective: str, nbytes: int, size: int, hop: int
) -> List[Tuple[int, int]]:
    """Exact ``(step, bytes)`` schedule of ring hop ``hop``.

    AllReduce rotates the ``N`` integer segments of the payload around
    the ring: at step ``s`` the hop leaving ring position ``hop`` carries
    segment ``(hop - s) mod N``, for ``2(N-1)`` steps -- so each *step*
    moves exactly ``S`` across all hops and the sweep total is exactly
    ``2(N-1)*S`` even when ``S`` does not divide evenly.  Root-bound
    Reduce/Broadcast stream the full payload through ``N-1`` sequential
    step windows.
    """
    if size < 2 or nbytes <= 0:
        return []
    if collective == "allreduce":
        segments = _segments(nbytes, size)
        return [
            (step, segments[(hop - step) % size])
            for step in range(2 * (size - 1))
        ]
    return [(step, nbytes) for step in range(size - 1)]


def ring_wire_total(collective: str, nbytes: int, size: int) -> int:
    """Total bytes all ring links move for one collective.

    AllReduce: each of the ``2(N-1)`` steps moves every segment exactly
    once across the ``N`` directed hops -- ``2(N-1)*S`` overall, exactly
    (integer segment split included).
    """
    if size < 2 or nbytes <= 0:
        return 0
    if collective == "allreduce":
        return sum(
            b
            for hop in range(size)
            for _, b in ring_hop_bytes("allreduce", nbytes, size, hop)
        )
    # Root-bound stream: the payload crosses N-1 hops once.
    return (size - 1) * nbytes


def tree_hop_bytes(
    collective: str, nbytes: int, num_edges: int
) -> List[Tuple[int, int, int]]:
    """Exact ``(edge, direction, bytes)`` schedule over tree edges.

    Direction 0 is child -> parent (reduce), 1 is parent -> child
    (broadcast).  Every edge carries the full payload once per active
    direction, so AllReduce moves ``2*(N-1)*S`` in total -- the same
    wire total as the ring (see :func:`ring_wire_total`).
    """
    if num_edges < 1 or nbytes <= 0:
        return []
    out: List[Tuple[int, int, int]] = []
    directions: Tuple[int, ...]
    if collective == "allreduce":
        directions = (0, 1)
    elif collective == "reduce":
        directions = (0,)
    else:
        directions = (1,)
    for direction in directions:
        for edge in range(num_edges):
            out.append((edge, direction, nbytes))
    return out


def tree_wire_total(collective: str, nbytes: int, num_edges: int) -> int:
    """Total bytes all tree edges move for one collective."""
    return sum(b for _, _, b in tree_hop_bytes(collective, nbytes, num_edges))
