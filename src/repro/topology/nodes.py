"""Node types of the interconnect graph."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class NodeKind(str, enum.Enum):
    """Topology node classes: GPUs, CPUs and PCIe switches."""

    GPU = "gpu"
    CPU = "cpu"
    PCIE_SWITCH = "pcie_switch"


@dataclass(frozen=True)
class Node:
    """A vertex in the interconnect graph, identified by a stable name."""

    name: str
    kind: NodeKind

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


@dataclass(frozen=True)
class GpuNode(Node):
    """A GPU endpoint; ``index`` is the CUDA device ordinal."""

    index: int = 0

    @staticmethod
    def named(index: int) -> "GpuNode":
        return GpuNode(name=f"gpu{index}", kind=NodeKind.GPU, index=index)


@dataclass(frozen=True)
class CpuNode(Node):
    """A CPU socket; hosts pinned memory used for DtoH+HtoD staging."""

    socket: int = 0

    @staticmethod
    def named(socket: int) -> "CpuNode":
        return CpuNode(name=f"cpu{socket}", kind=NodeKind.CPU, socket=socket)


@dataclass(frozen=True)
class SwitchNode(Node):
    """A PCIe switch; two GPUs in the DGX-1 share each switch's uplink."""

    @staticmethod
    def named(index: int) -> "SwitchNode":
        return SwitchNode(name=f"plx{index}", kind=NodeKind.PCIE_SWITCH)
