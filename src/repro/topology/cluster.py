"""Multi-node clusters of DGX-1 systems over InfiniBand.

The paper studies a single DGX-1 and cites multi-node work (Awan et al.'s
MPI-vs-NCCL comparison); this module extends the fabric model to a
cluster so those scales can be explored:

* each node is a full DGX-1 (8 V100s, the NVLink cube-mesh, PCIe, QPI);
  node ``k`` hosts GPUs ``8k .. 8k+7`` in global rank order;
* each node contributes an aggregated EDR InfiniBand attachment (the
  DGX-1 carries four 100 Gb/s HCAs; modeled as one width-4 link hanging
  off CPU socket 0, 12.5 GB/s per lane);
* a single non-blocking IB switch connects the nodes.

Inter-node GPU transfers route GPU -> home CPU (PCIe) -> IB -> remote
CPU -> GPU; NCCL rings crossing nodes are paced by the IB lanes (see
``repro.comm.nccl.rings``).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.errors import ConfigurationError
from repro.topology.dgx1 import DGX1_PCIE_SWITCHES, DGX1V_NVLINKS
from repro.topology.links import Link, LinkType
from repro.topology.nodes import CpuNode, GpuNode, Node, NodeKind, SwitchNode
from repro.topology.system import SystemTopology

#: GPUs per DGX-1 node.
GPUS_PER_NODE = 8

#: EDR InfiniBand: 100 Gb/s per HCA = 12.5 GB/s per lane.
IB_LANE_BANDWIDTH = 12.5e9

#: HCAs per DGX-1, aggregated into one width-4 attachment.
IB_LANES_PER_NODE = 4


def node_of_rank(rank: int) -> int:
    """The cluster node hosting global GPU ``rank``."""
    return rank // GPUS_PER_NODE


def build_dgx1v_cluster(num_nodes: int) -> SystemTopology:
    """A cluster of ``num_nodes`` DGX-1V systems on one IB switch.

    With ``num_nodes=1`` the result is a superset of :func:`build_dgx1v`
    (same graph plus an idle IB attachment), so single-node behaviour is
    unchanged.
    """
    if num_nodes < 1:
        raise ConfigurationError("a cluster needs at least one node")
    nodes: List[Node] = []
    links: List[Link] = []

    ib_switch = SwitchNode(name="ibswitch", kind=NodeKind.PCIE_SWITCH)

    for k in range(num_nodes):
        base = k * GPUS_PER_NODE
        gpus = [GpuNode.named(base + i) for i in range(GPUS_PER_NODE)]
        cpus = [CpuNode.named(2 * k + s) for s in range(2)]
        switches = [
            SwitchNode(name=f"plx{k}_{i}", kind=NodeKind.PCIE_SWITCH)
            for i, _, _ in DGX1_PCIE_SWITCHES
        ]
        nodes.extend([*gpus, *cpus, *switches])

        for a, b, width in DGX1V_NVLINKS:
            links.append(Link(gpus[a], gpus[b], LinkType.NVLINK, width=width))
        for idx, gpu_pair, socket in DGX1_PCIE_SWITCHES:
            switch = switches[idx]
            for g in gpu_pair:
                links.append(Link(gpus[g], switch, LinkType.PCIE))
            links.append(Link(switch, cpus[socket], LinkType.PCIE))
        links.append(Link(cpus[0], cpus[1], LinkType.QPI))

        # Aggregated IB attachment on socket 0.
        nic = SwitchNode(name=f"nic{k}", kind=NodeKind.PCIE_SWITCH)
        nodes.append(nic)
        links.append(Link(cpus[0], nic, LinkType.PCIE, width=IB_LANES_PER_NODE))
        links.append(
            Link(
                nic,
                ib_switch,
                LinkType.INFINIBAND,
                width=IB_LANES_PER_NODE,
                lane_bandwidth=IB_LANE_BANDWIDTH,
            )
        )

    nodes.append(ib_switch)
    return SystemTopology(f"dgx1v-cluster-{num_nodes}", nodes, links)
