"""Multi-node clusters of DGX-1 systems over InfiniBand.

The paper studies a single DGX-1 and cites multi-node work (Awan et al.'s
MPI-vs-NCCL comparison); this module extends the fabric model to a
cluster so those scales can be explored:

* each node is a full DGX-1 (8 V100s, the NVLink cube-mesh, PCIe, QPI);
  node ``k`` hosts GPUs ``8k .. 8k+7`` in global rank order;
* the compat fabric (:func:`build_dgx1v_cluster`) attaches each node
  through one aggregated EDR InfiniBand link (the DGX-1 carries four
  100 Gb/s HCAs; modeled as one width-4 link hanging off CPU socket 0,
  12.5 GB/s per lane) to a single non-blocking IB switch;
* the parameterized fabric (:func:`build_cluster` with a
  :class:`ClusterSpec`) exposes the four HCAs as individual *rails*:
  each HCA hangs off the PCIe switch that hosts its GPU pair, carries
  its own latency/bandwidth, and connects through either one flat switch
  (``"single-switch"``) or a per-rail two-level fat-tree
  (``"fat-tree"``).  :func:`rail_of_rank` maps a global GPU rank to its
  rail.

Inter-node GPU transfers route GPU -> home CPU (PCIe) -> IB -> remote
CPU -> GPU; NCCL rings crossing nodes are paced by the IB lanes (see
``repro.comm.nccl.rings``).  The hierarchical rail-aware collectives in
:mod:`repro.comm.nccl.hierarchical` drive the per-rail fabric; see
docs/SCALING.md for the full model.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import List, Tuple

from repro.core.errors import ConfigurationError
from repro.topology.dgx1 import DGX1_PCIE_SWITCHES, DGX1V_NVLINKS
from repro.topology.links import Link, LinkType
from repro.topology.nodes import CpuNode, GpuNode, Node, NodeKind, SwitchNode
from repro.topology.system import SystemTopology

#: GPUs per DGX-1 node.
GPUS_PER_NODE = 8

#: EDR InfiniBand: 100 Gb/s per HCA = 12.5 GB/s per lane.
IB_LANE_BANDWIDTH = 12.5e9

#: HCAs per DGX-1, aggregated into one width-4 attachment.
IB_LANES_PER_NODE = 4

#: EDR InfiniBand port-to-port latency (switch traversal + wire).
IB_RAIL_LATENCY = 2.0e-6

#: Valid ``ClusterSpec.interconnect`` values.  ``"aggregated"`` is the
#: compat fabric (one width-4 attachment per node, byte-identical to
#: :func:`build_dgx1v_cluster`); ``"single-switch"`` and ``"fat-tree"``
#: expose per-HCA rails.
CLUSTER_INTERCONNECTS = ("aggregated", "single-switch", "fat-tree")


def node_of_rank(rank: int) -> int:
    """The cluster node hosting global GPU ``rank``."""
    return rank // GPUS_PER_NODE


def rail_of_rank(rank: int, rails_per_node: int = IB_LANES_PER_NODE) -> int:
    """The inter-node rail serving global GPU ``rank``.

    The DGX-1 pairs its four HCAs with its four PCIe switches, so with
    the default four rails GPU pair ``(2r, 2r+1)`` on every node shares
    rail ``r`` -- the HCA reachable without crossing QPI:

    >>> [rail_of_rank(r) for r in range(8)]
    [0, 0, 1, 1, 2, 2, 3, 3]
    >>> rail_of_rank(13)        # node 1, local GPU 5 -> rail 2
    2
    >>> rail_of_rank(5, rails_per_node=2)
    1
    """
    if rails_per_node < 1 or GPUS_PER_NODE % rails_per_node:
        raise ConfigurationError(
            f"rails_per_node must divide {GPUS_PER_NODE}, got {rails_per_node}"
        )
    return (rank % GPUS_PER_NODE) // (GPUS_PER_NODE // rails_per_node)


@dataclass(frozen=True)
class ClusterSpec:
    """Parameterized inter-node fabric for a DGX-1V cluster.

    The defaults describe the real machine: four EDR InfiniBand rails
    per node (one HCA per PCIe switch, 12.5 GB/s each) behind one
    non-blocking switch.  ``interconnect="aggregated"`` reproduces the
    compat width-4 attachment of :func:`build_dgx1v_cluster` exactly;
    ``"fat-tree"`` splits each rail into leaf switches of
    ``leaf_radix`` nodes under a non-blocking spine.
    """

    num_nodes: int
    interconnect: str = "single-switch"
    rails_per_node: int = IB_LANES_PER_NODE
    rail_bandwidth: float = IB_LANE_BANDWIDTH
    rail_latency: float = IB_RAIL_LATENCY
    leaf_radix: int = 16

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ConfigurationError("a cluster needs at least one node")
        if self.interconnect not in CLUSTER_INTERCONNECTS:
            raise ConfigurationError(
                f"interconnect must be one of {CLUSTER_INTERCONNECTS}, "
                f"got {self.interconnect!r}"
            )
        if self.rails_per_node < 1 or GPUS_PER_NODE % self.rails_per_node:
            raise ConfigurationError(
                f"rails_per_node must divide {GPUS_PER_NODE}, "
                f"got {self.rails_per_node}"
            )
        if self.rail_bandwidth <= 0:
            raise ConfigurationError("rail_bandwidth must be positive")
        if self.rail_latency < 0:
            raise ConfigurationError("rail_latency must be >= 0")
        if self.leaf_radix < 2:
            raise ConfigurationError("leaf_radix must be >= 2")

    @property
    def total_gpus(self) -> int:
        """GPUs in the cluster (8 per node)."""
        return self.num_nodes * GPUS_PER_NODE

    def rail_switch_of_node(self, k: int, rail: int) -> str:
        """Name of the first-hop rail switch for node ``k`` on ``rail``."""
        if self.interconnect == "fat-tree":
            return f"leaf{rail}_{k // self.leaf_radix}"
        return "ibswitch"


def build_dgx1v_cluster(num_nodes: int) -> SystemTopology:
    """A cluster of ``num_nodes`` DGX-1V systems on one IB switch.

    With ``num_nodes=1`` the result is a superset of :func:`build_dgx1v`
    (same graph plus an idle IB attachment), so single-node behaviour is
    unchanged.
    """
    if num_nodes < 1:
        raise ConfigurationError("a cluster needs at least one node")
    nodes: List[Node] = []
    links: List[Link] = []

    ib_switch = SwitchNode(name="ibswitch", kind=NodeKind.PCIE_SWITCH)

    for k in range(num_nodes):
        base = k * GPUS_PER_NODE
        gpus = [GpuNode.named(base + i) for i in range(GPUS_PER_NODE)]
        cpus = [CpuNode.named(2 * k + s) for s in range(2)]
        switches = [
            SwitchNode(name=f"plx{k}_{i}", kind=NodeKind.PCIE_SWITCH)
            for i, _, _ in DGX1_PCIE_SWITCHES
        ]
        nodes.extend([*gpus, *cpus, *switches])

        for a, b, width in DGX1V_NVLINKS:
            links.append(Link(gpus[a], gpus[b], LinkType.NVLINK, width=width))
        for idx, gpu_pair, socket in DGX1_PCIE_SWITCHES:
            switch = switches[idx]
            for g in gpu_pair:
                links.append(Link(gpus[g], switch, LinkType.PCIE))
            links.append(Link(switch, cpus[socket], LinkType.PCIE))
        links.append(Link(cpus[0], cpus[1], LinkType.QPI))

        # Aggregated IB attachment on socket 0.
        nic = SwitchNode(name=f"nic{k}", kind=NodeKind.PCIE_SWITCH)
        nodes.append(nic)
        links.append(Link(cpus[0], nic, LinkType.PCIE, width=IB_LANES_PER_NODE))
        links.append(
            Link(
                nic,
                ib_switch,
                LinkType.INFINIBAND,
                width=IB_LANES_PER_NODE,
                lane_bandwidth=IB_LANE_BANDWIDTH,
            )
        )

    nodes.append(ib_switch)
    return SystemTopology(f"dgx1v-cluster-{num_nodes}", nodes, links)


def _add_dgx1_node(
    k: int, nodes: List[Node], links: List[Link]
) -> Tuple[List[GpuNode], List[CpuNode], List[SwitchNode]]:
    """Append node ``k``'s intra-node DGX-1 graph (no IB attachment)."""
    base = k * GPUS_PER_NODE
    gpus = [GpuNode.named(base + i) for i in range(GPUS_PER_NODE)]
    cpus = [CpuNode.named(2 * k + s) for s in range(2)]
    switches = [
        SwitchNode(name=f"plx{k}_{i}", kind=NodeKind.PCIE_SWITCH)
        for i, _, _ in DGX1_PCIE_SWITCHES
    ]
    nodes.extend([*gpus, *cpus, *switches])
    for a, b, width in DGX1V_NVLINKS:
        links.append(Link(gpus[a], gpus[b], LinkType.NVLINK, width=width))
    for idx, gpu_pair, socket in DGX1_PCIE_SWITCHES:
        switch = switches[idx]
        for g in gpu_pair:
            links.append(Link(gpus[g], switch, LinkType.PCIE))
        links.append(Link(switch, cpus[socket], LinkType.PCIE))
    links.append(Link(cpus[0], cpus[1], LinkType.QPI))
    return gpus, cpus, switches


def build_cluster(spec: ClusterSpec) -> SystemTopology:
    """A DGX-1V cluster with the inter-node fabric described by ``spec``.

    ``interconnect="aggregated"`` delegates to
    :func:`build_dgx1v_cluster` (the compat graph, bit-for-bit).  The
    rail fabrics give every node ``spec.rails_per_node`` individual HCAs
    (``nic{k}r{r}``), each hanging off the PCIe switch that hosts the
    rail's GPUs -- so rail traffic never crosses QPI -- and joined
    across nodes by either one flat switch or a per-rail two-level
    fat-tree (``leaf{r}_{g}`` under ``spine{r}``, non-blocking uplinks).
    """
    if spec.interconnect == "aggregated":
        return build_dgx1v_cluster(spec.num_nodes)

    nodes: List[Node] = []
    links: List[Link] = []
    num_plx = len(DGX1_PCIE_SWITCHES)

    if spec.interconnect == "single-switch":
        rail_switches = [SwitchNode(name="ibswitch", kind=NodeKind.PCIE_SWITCH)]
        fabric_links: List[Link] = []
    else:  # fat-tree
        num_groups = -(-spec.num_nodes // spec.leaf_radix)  # ceil division
        rail_switches = []
        fabric_links = []
        for r in range(spec.rails_per_node):
            spine = SwitchNode(name=f"spine{r}", kind=NodeKind.PCIE_SWITCH)
            rail_switches.append(spine)
            for g in range(num_groups):
                leaf = SwitchNode(
                    name=f"leaf{r}_{g}", kind=NodeKind.PCIE_SWITCH
                )
                rail_switches.append(leaf)
                in_group = min(spec.leaf_radix,
                               spec.num_nodes - g * spec.leaf_radix)
                fabric_links.append(
                    Link(
                        leaf,
                        spine,
                        LinkType.INFINIBAND,
                        width=in_group,
                        lane_bandwidth=spec.rail_bandwidth,
                        latency_override=spec.rail_latency,
                    )
                )

    switch_by_name = {s.name: s for s in rail_switches}
    for k in range(spec.num_nodes):
        _, _, plx = _add_dgx1_node(k, nodes, links)
        for r in range(spec.rails_per_node):
            nic = SwitchNode(name=f"nic{k}r{r}", kind=NodeKind.PCIE_SWITCH)
            nodes.append(nic)
            # The HCA shares the PLX switch of the first GPU pair on its
            # rail: no QPI crossing between a GPU and its rail.
            links.append(
                Link(plx[r * num_plx // spec.rails_per_node], nic, LinkType.PCIE)
            )
            links.append(
                Link(
                    nic,
                    switch_by_name[spec.rail_switch_of_node(k, r)],
                    LinkType.INFINIBAND,
                    width=1,
                    lane_bandwidth=spec.rail_bandwidth,
                    latency_override=spec.rail_latency,
                )
            )

    nodes.extend(rail_switches)
    links.extend(fabric_links)
    return SystemTopology(
        f"dgx1v-cluster-{spec.num_nodes}-{spec.interconnect}", nodes, links
    )
