"""Topology-aware reduction-tree construction for NCCL's Tree algorithm.

NCCL 2.4+ added a Tree AllReduce next to the classic ring: gradients are
reduced *up* a spanning tree and the result is broadcast back *down* it.
A tree trades the ring's ``2(N-1)`` pipeline steps for ``2*depth`` steps
(logarithmic for balanced trees), which wins whenever the per-step
latency term dominates -- exactly the small-message regime the paper's
layer-rich networks live in.

The construction below mirrors NCCL's intra-node behaviour on the DGX-1V
hybrid cube-mesh: a breadth-first binary spanning tree over the NVLink
graph rooted at the lowest GPU index, deterministic (children are taken
in ascending index order) so simulations are reproducible.  NCCL actually
builds a *double* binary tree -- two complementary trees, each carrying
half the payload, so both directions of every NVLink stay busy; we model
that as ``channels=2`` with the per-channel bandwidth of the slowest lane
used by a tree edge, matching how :mod:`repro.comm.nccl.rings` treats the
ring's two directions.

When the GPU set admits no NVLink spanning tree (PCIe-only boxes) the
tree falls back to index order over PCIe; multi-node sets chain the node
sections over InfiniBand, whose lane paces the channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.constants import CALIBRATION, CalibrationConstants
from repro.core.errors import RoutingError
from repro.topology.system import SystemTopology

#: One directed tree edge: (child GPU, parent GPU, link name, link type).
TreeEdge = Tuple[int, int, str, str]


@dataclass(frozen=True)
class TreePlan:
    """The spanning tree NCCL's Tree algorithm would use for a GPU set.

    ``parent`` maps every non-root GPU to its parent; ``depth`` is the
    longest leaf-to-root path (the number of sequential hops a gradient
    front crosses in each direction).
    """

    root: int
    parent: Tuple[Tuple[int, int], ...]   # (child, parent), sorted by child
    depth: int
    channels: int                          # complementary trees (2, as NCCL)
    channel_bandwidth: float               # bytes/s per channel
    uses_pcie: bool

    @property
    def size(self) -> int:
        return len(self.parent) + 1

    @property
    def aggregate_bandwidth(self) -> float:
        return self.channels * self.channel_bandwidth

    def parent_of(self, gpu: int) -> Optional[int]:
        for child, parent in self.parent:
            if child == gpu:
                return parent
        return None

    def children_of(self, gpu: int) -> List[int]:
        return [child for child, parent in self.parent if parent == gpu]


def find_nvlink_tree(
    topology: SystemTopology, gpu_indices: Sequence[int], max_children: int = 2
) -> Optional[Dict[int, int]]:
    """A binary spanning tree over NVLink among ``gpu_indices``.

    Deterministic BFS from the lowest index, adopting unvisited NVLink
    neighbours in ascending order, at most ``max_children`` per node.
    Returns a child -> parent map, or ``None`` when NVLink cannot span
    the set under the fan-out cap.
    """
    indices = sorted(set(gpu_indices))
    if len(indices) < 2:
        return {}
    nodes = {i: topology.gpu(i) for i in indices}
    root = indices[0]
    parent: Dict[int, int] = {}
    frontier = [root]
    visited = {root}
    while frontier:
        nxt: List[int] = []
        for gpu in frontier:
            adopted = 0
            for candidate in indices:
                if adopted >= max_children:
                    break
                if candidate in visited:
                    continue
                if topology.nvlink_between(nodes[gpu], nodes[candidate]) is None:
                    continue
                parent[candidate] = gpu
                visited.add(candidate)
                nxt.append(candidate)
                adopted += 1
        frontier = nxt
    if len(visited) != len(indices):
        return None
    return parent


def _tree_depth(parent: Dict[int, int], root: int) -> int:
    depth = 0
    for child in parent:
        d, node = 0, child
        while node != root:
            node = parent[node]
            d += 1
        depth = max(depth, d)
    return depth


def build_tree_plan(
    topology: SystemTopology,
    gpu_indices: Sequence[int],
    constants: CalibrationConstants = CALIBRATION,
) -> TreePlan:
    """Construct the spanning tree NCCL would use for ``gpu_indices``."""
    indices = sorted(set(gpu_indices))
    if not indices:
        raise RoutingError("cannot build a tree over zero GPUs")
    root = indices[0]
    if len(indices) == 1:
        return TreePlan(root=root, parent=(), depth=0, channels=1,
                        channel_bandwidth=float("inf"), uses_pcie=False)

    from repro.topology.cluster import GPUS_PER_NODE, IB_LANE_BANDWIDTH

    spanned = {i // GPUS_PER_NODE for i in indices}
    if len(spanned) > 1:
        # Multi-node: binary-heap-shaped tree in rank order; every
        # cross-node edge rides InfiniBand, which paces the channel.
        parent = {indices[i]: indices[(i - 1) // 2] for i in range(1, len(indices))}
        return TreePlan(
            root=root,
            parent=tuple(sorted(parent.items())),
            depth=_tree_depth(parent, root),
            channels=2,
            channel_bandwidth=IB_LANE_BANDWIDTH * constants.nccl_bandwidth_efficiency,
            uses_pcie=False,
        )

    parent = find_nvlink_tree(topology, indices)
    if parent is not None:
        # The slowest lane used by any tree edge paces both channels
        # (each complementary tree uses one lane per edge).
        lane_bw = min(
            topology.nvlink_between(topology.gpu(child), topology.gpu(par))
            .peak_bandwidth()
            / topology.nvlink_between(topology.gpu(child), topology.gpu(par)).width
            for child, par in parent.items()
        )
        return TreePlan(
            root=root,
            parent=tuple(sorted(parent.items())),
            depth=_tree_depth(parent, root),
            channels=2 if len(indices) > 2 else 1,
            channel_bandwidth=lane_bw * constants.nccl_bandwidth_efficiency,
            uses_pcie=False,
        )

    # PCIe fallback: binary heap in index order, channel paced by PCIe.
    heap_parent = {indices[i]: indices[(i - 1) // 2] for i in range(1, len(indices))}
    return TreePlan(
        root=root,
        parent=tuple(sorted(heap_parent.items())),
        depth=_tree_depth(heap_parent, root),
        channels=1,
        channel_bandwidth=16e9 * constants.pcie_efficiency,
        uses_pcie=True,
    )


def tree_edges(topology: SystemTopology, plan: TreePlan) -> List[TreeEdge]:
    """The directed child -> parent edges with the physical link each rides."""
    from repro.topology.cluster import GPUS_PER_NODE

    edges: List[TreeEdge] = []
    for child, parent in plan.parent:
        link = topology.nvlink_between(topology.gpu(child), topology.gpu(parent))
        if link is not None:
            edges.append((child, parent, link.name, link.link_type.value))
        elif child // GPUS_PER_NODE != parent // GPUS_PER_NODE:
            edges.append((child, parent,
                          f"gpu{child}<->gpu{parent}:infiniband", "infiniband"))
        else:
            edges.append((child, parent, f"gpu{child}<->gpu{parent}:pcie", "pcie"))
    return edges
