"""Interconnect topology of the Volta-based DGX-1.

Static description of nodes (8 GPUs, 2 CPUs, 4 PCIe switches) and links
(NVLink 2.0, PCIe Gen3, QPI), a routing layer that mirrors how CUDA/MXNet
actually move data (direct NVLink, staged NVLink relay, or DtoH+HtoD over
PCIe), and a runtime binding (:class:`~repro.topology.fabric.Fabric`) that
attaches FIFO link resources to a simulation environment.
"""

from repro.topology.cluster import (
    CLUSTER_INTERCONNECTS,
    GPUS_PER_NODE,
    IB_LANE_BANDWIDTH,
    IB_LANES_PER_NODE,
    ClusterSpec,
    build_cluster,
    build_dgx1v_cluster,
    node_of_rank,
    rail_of_rank,
)
from repro.topology.dgx1 import build_dgx1v
from repro.topology.fabric import Fabric
from repro.topology.links import Link, LinkType
from repro.topology.nodes import CpuNode, GpuNode, Node, NodeKind, SwitchNode
from repro.topology.routing import Route, RouteKind, Router
from repro.topology.system import SystemTopology

__all__ = [
    "CLUSTER_INTERCONNECTS",
    "CpuNode",
    "ClusterSpec",
    "GPUS_PER_NODE",
    "Fabric",
    "GpuNode",
    "IB_LANES_PER_NODE",
    "IB_LANE_BANDWIDTH",
    "Link",
    "LinkType",
    "Node",
    "NodeKind",
    "Route",
    "RouteKind",
    "Router",
    "SwitchNode",
    "SystemTopology",
    "build_cluster",
    "build_dgx1v",
    "build_dgx1v_cluster",
    "node_of_rank",
    "rail_of_rank",
]
