"""Runtime binding of a topology to a simulation environment.

A :class:`Fabric` creates one FIFO :class:`~repro.sim.resources.Resource`
per *direction* of every physical link (NVLink and PCIe are full duplex, so
the two directions never contend with each other) and exposes a process that
performs a DMA along a route leg, holding each directed link for the
duration of the wire time.  Contention between concurrent transfers on the
same link direction therefore shows up as FIFO queueing -- exactly the
effect that serializes the P2P parameter-server traffic into GPU0.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional, Tuple

from repro.core.constants import CALIBRATION, CalibrationConstants
from repro.obs.events import LinkBusyEvent, LinkWaitEvent
from repro.perf.spans import PERF
from repro.sim import Environment, Resource
from repro.sim.resources import Store
from repro.sim.events import Event
from repro.topology.links import Link
from repro.topology.nodes import Node
from repro.topology.routing import Leg, Route
from repro.topology.system import SystemTopology

#: A directed link is a (link, source-endpoint-name) pair.
DirectedKey = Tuple[str, str]


class Fabric:
    """Link-contention state for one simulation run."""

    def __init__(
        self,
        env: Environment,
        topology: SystemTopology,
        constants: CalibrationConstants = CALIBRATION,
        observer: Optional[object] = None,
        checks: Optional[object] = None,
    ) -> None:
        """``observer`` is anything with a ``publish(event)`` method
        (normally the run's :class:`~repro.profile.profiler.Profiler`);
        every DMA then emits per-directed-link
        :class:`~repro.obs.events.LinkBusyEvent` /
        :class:`~repro.obs.events.LinkWaitEvent` records.

        ``checks`` is an optional :class:`~repro.checks.CheckEngine`; when
        enabled, every DMA fires the ``fabric.dma`` checkpoint (link
        capacity + FIFO serialization invariants)."""
        self.env = env
        self.topology = topology
        self.constants = constants
        self.observer = observer
        self.checks = checks if checks is not None and checks.enabled else None
        # Previous DMA's release time per directed channel, maintained only
        # while checks are active (feeds temporal.link-serialization).
        self._busy_until: Dict[DirectedKey, float] = {}
        self._channels: Dict[DirectedKey, Resource] = {}
        for link in topology.links:
            self._channels[(link.name, link.a.name)] = Resource(env)
            self._channels[(link.name, link.b.name)] = Resource(env)
        # Cumulative accounting, for profiler/bandwidth reports.
        self.bytes_moved: Dict[str, int] = {link.name: 0 for link in topology.links}
        self.busy_time: Dict[str, float] = {link.name: 0.0 for link in topology.links}
        #: Contention: cumulative FIFO-queueing wait per link (seconds).
        self.wait_time: Dict[str, float] = {link.name: 0.0 for link in topology.links}

    def _publish(self, event) -> None:
        if self.observer is not None:
            self.observer.publish(event)

    def channel(self, link: Link, source: Node) -> Resource:
        """The FIFO resource guarding ``link`` in the ``source ->`` direction."""
        try:
            return self._channels[(link.name, source.name)]
        except KeyError:
            raise ValueError(f"{source} is not an endpoint of {link.name}") from None

    # ------------------------------------------------------------------
    # DMA processes
    # ------------------------------------------------------------------
    def dma(self, leg: Leg, nbytes: int) -> Generator[Event, None, None]:
        """Process: move ``nbytes`` across one leg, cut-through.

        All links of the leg are held together for the leg's wire time;
        this conservatively models a cut-through DMA whose slowest link
        paces the whole chain.
        """
        if PERF.enabled:
            PERF.count("fabric.dmas")
            PERF.count("fabric.bytes", nbytes)
        requested = self.env.now
        requests = []
        current = leg.src
        for link in leg.links:
            requests.append((link, current, self.channel(link, current).request()))
            current = link.other(current)
        for _, _, req in requests:
            yield req
        granted = self.env.now
        wait = granted - requested
        wire_time = leg.latency(self.constants) + nbytes / leg.bandwidth(self.constants)
        try:
            yield self.env.timeout(wire_time)
        finally:
            end = self.env.now
            if self.checks is not None:
                windows = []
                for link, src, _ in requests:
                    key = (link.name, src.name)
                    prev = self._busy_until.get(key)
                    if prev is not None:
                        windows.append((f"{link.name}:{src.name}->", prev))
                    self._busy_until[key] = end
                self.checks.check(
                    "fabric.dma",
                    nbytes=nbytes,
                    wire_time=wire_time,
                    latency=leg.latency(self.constants),
                    bandwidth=leg.bandwidth(self.constants),
                    granted=granted,
                    end=end,
                    windows=windows,
                    now=end,
                )
            for link, src, req in requests:
                self.bytes_moved[link.name] += nbytes
                self.busy_time[link.name] += wire_time
                self.wait_time[link.name] += wait
                req.resource.release(req)
                if self.observer is not None:
                    dst = link.other(src)
                    link_type = link.link_type.value
                    if wait > 0:
                        self._publish(LinkWaitEvent(
                            link=link.name, src=src.name, dst=dst.name,
                            link_type=link_type, wait=wait, at=granted,
                        ))
                    self._publish(LinkBusyEvent(
                        link=link.name, src=src.name, dst=dst.name,
                        link_type=link_type, nbytes=nbytes,
                        start=granted, end=end,
                    ))

    def transfer(self, route: Route, nbytes: int) -> Generator[Event, None, float]:
        """Process: move ``nbytes`` along a full route, store-and-forward.

        Returns the total elapsed time.  Staged routes (NVLink relay or
        DtoH+HtoD) execute their legs sequentially, matching how MXNet and
        CUDA actually perform them.
        """
        start = self.env.now
        for leg in route.legs:
            yield self.env.process(self.dma(leg, nbytes))
        return self.env.now - start

    def pipelined_transfer(
        self, route: Route, nbytes: int, chunk_bytes: int
    ) -> Generator[Event, None, float]:
        """Process: move ``nbytes`` along a route with chunk pipelining.

        Multi-leg routes (NVLink relay, DtoH+HtoD) forward each chunk as
        soon as it lands on the staging node, so a large staged transfer
        approaches the bottleneck link's bandwidth instead of paying the
        full store-and-forward penalty.
        """
        if len(route.legs) <= 1 or nbytes <= chunk_bytes:
            result = yield from self.transfer(route, nbytes)
            return result
        start = self.env.now
        chunks = []
        remaining = nbytes
        while remaining > 0:
            size = min(chunk_bytes, remaining)
            chunks.append(size)
            remaining -= size
        # Hand-off queues between consecutive legs.
        queues = [Store(self.env) for _ in route.legs[1:]]

        def leg_runner(leg_index: int):
            leg = route.legs[leg_index]
            for size in chunks:
                if leg_index > 0:
                    yield queues[leg_index - 1].get()
                yield self.env.process(self.dma(leg, size))
                if leg_index < len(queues):
                    queues[leg_index].put(size)

        runners = [self.env.process(leg_runner(i)) for i in range(len(route.legs))]
        yield self.env.all_of(runners)
        return self.env.now - start
