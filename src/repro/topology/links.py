"""Link types of the interconnect graph.

Each :class:`Link` is an *undirected* physical connection carrying full
bandwidth independently in each direction (NVLink and PCIe are full duplex).
Dual NVLink connections between a GPU pair are modelled as one link of
``width=2`` whose aggregated bandwidth is double, matching the "50 GB/s
virtual connection" the paper describes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.constants import CalibrationConstants
from repro.core.units import gbps
from repro.topology.nodes import Node


class LinkType(str, enum.Enum):
    """Physical interconnect classes of the DGX-1 fabric."""

    NVLINK = "nvlink"
    PCIE = "pcie"
    QPI = "qpi"
    INFINIBAND = "infiniband"


#: Peak bandwidth per direction for a single lane of each link type.
PEAK_BANDWIDTH = {
    LinkType.NVLINK: gbps(25.0),      # NVLink 2.0, per link per direction
    LinkType.PCIE: gbps(16.0),        # PCIe Gen3 x16
    LinkType.QPI: gbps(19.2),         # Intel QuickPath between the two Xeons
    LinkType.INFINIBAND: gbps(12.5),  # EDR InfiniBand, 100 Gb/s per HCA
}


@dataclass(frozen=True)
class Link:
    """An undirected physical connection between two nodes.

    ``lane_bandwidth`` overrides the type's default per-lane peak; the
    bandwidth-sweep experiments use it to explore hypothetical fabrics.
    """

    a: Node
    b: Node
    link_type: LinkType
    width: int = 1
    lane_bandwidth: float | None = None
    #: Per-hop latency override, seconds; ``None`` uses the calibrated
    #: default for the link type.  The rail-aware cluster fabrics use it
    #: to give each InfiniBand rail its own latency (docs/SCALING.md).
    latency_override: float | None = None

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError(f"link width must be >= 1, got {self.width}")
        if self.a == self.b:
            raise ValueError(f"self-link on {self.a}")
        if self.lane_bandwidth is not None and self.lane_bandwidth <= 0:
            raise ValueError("lane_bandwidth must be positive")
        if self.latency_override is not None and self.latency_override < 0:
            raise ValueError("latency_override must be >= 0")

    @property
    def name(self) -> str:
        return f"{self.a.name}<->{self.b.name}:{self.link_type.value}x{self.width}"

    def endpoints(self) -> tuple[Node, Node]:
        return (self.a, self.b)

    def other(self, node: Node) -> Node:
        """The endpoint that is not ``node``."""
        if node == self.a:
            return self.b
        if node == self.b:
            return self.a
        raise ValueError(f"{node} is not an endpoint of {self.name}")

    def peak_bandwidth(self) -> float:
        """Aggregated peak bandwidth per direction, bytes/second."""
        per_lane = (
            self.lane_bandwidth
            if self.lane_bandwidth is not None
            else PEAK_BANDWIDTH[self.link_type]
        )
        return per_lane * self.width

    def effective_bandwidth(self, constants: CalibrationConstants) -> float:
        """Achieved large-transfer bandwidth per direction, bytes/second."""
        if self.link_type is LinkType.NVLINK:
            return self.peak_bandwidth() * constants.nvlink_efficiency
        return self.peak_bandwidth() * constants.pcie_efficiency

    def latency(self, constants: CalibrationConstants) -> float:
        """Per-message latency of this hop, seconds."""
        if self.latency_override is not None:
            return self.latency_override
        if self.link_type is LinkType.NVLINK:
            return constants.nvlink_latency
        if self.link_type is LinkType.QPI:
            return constants.qpi_latency
        if self.link_type is LinkType.INFINIBAND:
            return constants.infiniband_latency
        return constants.pcie_latency
