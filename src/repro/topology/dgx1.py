"""Builder for the Volta-based DGX-1 interconnect (paper Figure 2).

The NVLink graph below is the DGX-1V hybrid cube-mesh in CUDA device
enumeration order: two quads (GPUs 0-3 and 4-7), each fully connected
internally, plus four cross links, with six NVLink 2.0 ports per V100.

The paper's Figure 2 draws the same graph with permuted labels (its GPU0
has dual links to its GPU1/GPU2 and singles to GPU3/GPU6; here GPU0 has
dual links to GPU3/GPU4 and singles to GPU1/GPU2 -- apply the permutation
``paper -> here: 1->3, 2->4, 3->1, 6->2`` and the descriptions coincide).
We keep the CUDA enumeration because job placement follows it: a 4-GPU
training run lands on devices 0-3, which must form the fully connected
quad for NCCL's ring construction to stay on NVLink, exactly as on the
real machine.  Every structural property the paper relies on holds:

* GPU0 has two dual-link and two single-link NVLink neighbors, so the
  parameter-server tree is bandwidth-asymmetric (some workers return
  updated weights at twice the rate of others);
* some GPU pairs have no direct connection (e.g. GPU0-GPU5) and the NVLink
  routers cannot forward, so those transfers are staged through an
  intermediate GPU or fall back to DtoH+HtoD over PCIe;
* every pair is within two NVLink hops;
* every GPU consumes exactly six NVLink ports.

PCIe follows the DGX-1 layout: four PLX switches, each shared by a GPU
pair, two switches per CPU socket, QPI between the sockets.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.topology.links import Link, LinkType
from repro.topology.nodes import CpuNode, GpuNode, Node, SwitchNode
from repro.topology.system import SystemTopology

#: (gpu_a, gpu_b, width) -- the NVLink edges of the DGX-1V.
DGX1V_NVLINKS: Tuple[Tuple[int, int, int], ...] = (
    (0, 1, 1),
    (0, 2, 1),
    (0, 3, 2),
    (0, 4, 2),
    (1, 2, 2),
    (1, 3, 1),
    (1, 5, 2),
    (2, 3, 2),
    (2, 6, 1),
    (3, 7, 1),
    (4, 5, 1),
    (4, 6, 1),
    (4, 7, 2),
    (5, 6, 2),
    (5, 7, 1),
    (6, 7, 2),
)

#: PCIe switch assignment: (switch index, gpus behind it, home cpu socket).
DGX1_PCIE_SWITCHES: Tuple[Tuple[int, Tuple[int, int], int], ...] = (
    (0, (0, 1), 0),
    (1, (2, 3), 0),
    (2, (4, 5), 1),
    (3, (6, 7), 1),
)


def build_dgx1v(
    nvlink: bool = True,
    uniform_link_width: int | None = None,
    nvlink_bandwidth_scale: float = 1.0,
) -> SystemTopology:
    """Construct the full Volta-based DGX-1 topology.

    ``nvlink=False`` removes the NVLink mesh entirely (every GPU-GPU
    transfer falls back to DtoH+HtoD over PCIe);
    ``uniform_link_width=1`` collapses the dual links to singles;
    ``nvlink_bandwidth_scale`` multiplies every NVLink lane's 25 GB/s
    (the what-if-the-fabric-were-faster sweep).  All exist for the
    ablation studies in DESIGN.md.
    """
    if nvlink_bandwidth_scale <= 0:
        raise ValueError("nvlink_bandwidth_scale must be positive")
    gpus = [GpuNode.named(i) for i in range(8)]
    cpus = [CpuNode.named(s) for s in range(2)]
    switches = [SwitchNode.named(i) for i, _, _ in DGX1_PCIE_SWITCHES]
    nodes: List[Node] = [*gpus, *cpus, *switches]

    lane_bandwidth = None
    if nvlink_bandwidth_scale != 1.0:
        from repro.topology.links import PEAK_BANDWIDTH

        lane_bandwidth = PEAK_BANDWIDTH[LinkType.NVLINK] * nvlink_bandwidth_scale

    links: List[Link] = []
    if nvlink:
        for a, b, width in DGX1V_NVLINKS:
            if uniform_link_width is not None:
                width = uniform_link_width
            links.append(
                Link(gpus[a], gpus[b], LinkType.NVLINK, width=width,
                     lane_bandwidth=lane_bandwidth)
            )
    for idx, gpu_pair, socket in DGX1_PCIE_SWITCHES:
        switch = switches[idx]
        for g in gpu_pair:
            links.append(Link(gpus[g], switch, LinkType.PCIE))
        links.append(Link(switch, cpus[socket], LinkType.PCIE))
    links.append(Link(cpus[0], cpus[1], LinkType.QPI))

    return SystemTopology("dgx1-v", nodes, links)
