"""Static system topology: the node/link graph plus lookup helpers."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx

from repro.core.errors import ConfigurationError
from repro.topology.links import Link, LinkType
from repro.topology.nodes import CpuNode, GpuNode, Node, NodeKind, SwitchNode


class SystemTopology:
    """An immutable multi-GPU system description.

    Wraps a :class:`networkx.Graph` whose edges carry :class:`Link`
    objects.  Parallel NVLink connections are pre-aggregated into a single
    ``width=2`` link, so the graph is simple.
    """

    def __init__(self, name: str, nodes: Iterable[Node], links: Iterable[Link]) -> None:
        self.name = name
        self._nodes: Dict[str, Node] = {}
        for node in nodes:
            if node.name in self._nodes:
                raise ConfigurationError(f"duplicate node name {node.name!r}")
            self._nodes[node.name] = node
        self._graph = nx.Graph()
        self._graph.add_nodes_from(self._nodes.values())
        self._links: List[Link] = []
        for link in links:
            for end in link.endpoints():
                if end.name not in self._nodes:
                    raise ConfigurationError(f"link {link.name} references unknown node {end}")
            if self._graph.has_edge(link.a, link.b):
                raise ConfigurationError(f"duplicate link between {link.a} and {link.b}")
            self._graph.add_edge(link.a, link.b, link=link)
            self._links.append(link)

    # ------------------------------------------------------------------
    # Node lookup
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Tuple[Node, ...]:
        return tuple(self._nodes.values())

    @property
    def links(self) -> Tuple[Link, ...]:
        return tuple(self._links)

    @property
    def graph(self) -> nx.Graph:
        """The underlying graph (treat as read-only)."""
        return self._graph

    def node(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise ConfigurationError(f"no node named {name!r} in {self.name}") from None

    def gpu(self, index: int) -> GpuNode:
        node = self.node(f"gpu{index}")
        assert isinstance(node, GpuNode)
        return node

    def cpu(self, socket: int) -> CpuNode:
        node = self.node(f"cpu{socket}")
        assert isinstance(node, CpuNode)
        return node

    @property
    def gpus(self) -> Tuple[GpuNode, ...]:
        found = [n for n in self._nodes.values() if isinstance(n, GpuNode)]
        return tuple(sorted(found, key=lambda g: g.index))

    @property
    def cpus(self) -> Tuple[CpuNode, ...]:
        found = [n for n in self._nodes.values() if isinstance(n, CpuNode)]
        return tuple(sorted(found, key=lambda c: c.socket))

    # ------------------------------------------------------------------
    # Link lookup
    # ------------------------------------------------------------------
    def link_between(self, a: Node, b: Node) -> Optional[Link]:
        """The direct link between two nodes, or ``None``."""
        data = self._graph.get_edge_data(a, b)
        return None if data is None else data["link"]

    def nvlink_between(self, a: Node, b: Node) -> Optional[Link]:
        link = self.link_between(a, b)
        if link is not None and link.link_type is LinkType.NVLINK:
            return link
        return None

    def nvlink_neighbors(self, node: Node) -> List[Node]:
        """GPUs directly reachable from ``node`` over NVLink."""
        out = []
        for neighbor in self._graph.neighbors(node):
            link = self.link_between(node, neighbor)
            if link is not None and link.link_type is LinkType.NVLINK:
                out.append(neighbor)
        return sorted(out, key=lambda n: n.name)

    def links_of(self, node: Node) -> List[Link]:
        return [self.link_between(node, nbr) for nbr in self._graph.neighbors(node)]

    def nvlink_port_count(self, node: Node) -> int:
        """Number of NVLink ports ``node`` consumes (dual links count twice)."""
        total = 0
        for link in self.links_of(node):
            if link.link_type is LinkType.NVLINK:
                total += link.width
        return total

    def pcie_path(self, gpu: GpuNode) -> List[Node]:
        """The PCIe chain from ``gpu`` up to its home CPU socket."""
        subgraph_types = {LinkType.PCIE, LinkType.QPI}
        allowed = nx.Graph()
        for link in self._links:
            if link.link_type in subgraph_types:
                allowed.add_edge(link.a, link.b)
        for cpu in self.cpus:
            if allowed.has_node(gpu) and nx.has_path(allowed, gpu, cpu):
                path = nx.shortest_path(allowed, gpu, cpu)
                if all(not isinstance(n, CpuNode) for n in path[1:-1]):
                    return path
        raise ConfigurationError(f"{gpu} has no PCIe path to a CPU")

    def host_path(self, src: CpuNode, dst: CpuNode) -> List[Node]:
        """Host-side path between two CPU sockets (QPI or PCIe/IB fabric).

        Same-node sockets connect over QPI; sockets of different cluster
        nodes route through the NIC / InfiniBand-switch chain.  GPU nodes
        are excluded from the search.
        """
        allowed = nx.Graph()
        host_types = {LinkType.PCIE, LinkType.QPI, LinkType.INFINIBAND}
        for link in self._links:
            if link.link_type not in host_types:
                continue
            if isinstance(link.a, GpuNode) or isinstance(link.b, GpuNode):
                continue
            allowed.add_edge(link.a, link.b)
        if not (allowed.has_node(src) and allowed.has_node(dst)):
            raise ConfigurationError(f"no host fabric between {src} and {dst}")
        if not nx.has_path(allowed, src, dst):
            raise ConfigurationError(f"no host path from {src} to {dst}")
        return nx.shortest_path(allowed, src, dst)

    def home_cpu(self, gpu: GpuNode) -> CpuNode:
        """The CPU socket whose PCIe root complex hosts ``gpu``."""
        tail = self.pcie_path(gpu)[-1]
        assert isinstance(tail, CpuNode)
        return tail
