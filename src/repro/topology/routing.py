"""Routing over the DGX-1 fabric, mirroring CUDA/MXNet data movement.

The DGX-1's NVLink routers cannot forward packets (the paper calls this out
explicitly), so a GPU-to-GPU transfer takes one of three forms:

* ``DIRECT_NVLINK`` -- a single cudaMemcpyPeer DMA over the direct link;
* ``STAGED_NVLINK`` -- MXNet's multi-stage workaround: a store-and-forward
  copy through an intermediate GPU that has NVLink to both endpoints
  (e.g. GPU0 -> GPU1 -> GPU7);
* ``PCIE_HOST`` -- the CUDA fallback: DtoH into pinned host memory followed
  by HtoD, crossing QPI when the endpoints live under different sockets.

A :class:`Route` is a sequence of :class:`Leg` objects; each leg is one DMA
that traverses one or more physical links cut-through (bandwidth = min over
links, latency = sum over links).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import lru_cache
from typing import List, Optional, Sequence, Tuple

from repro.core.constants import CalibrationConstants
from repro.core.errors import RoutingError
from repro.topology.links import Link, LinkType
from repro.topology.nodes import CpuNode, GpuNode, Node
from repro.topology.system import SystemTopology


class RouteKind(str, enum.Enum):
    """How a transfer travels: direct/staged NVLink, PCIe, local."""

    DIRECT_NVLINK = "direct_nvlink"
    STAGED_NVLINK = "staged_nvlink"
    PCIE_HOST = "pcie_host"
    PCIE_LOCAL = "pcie_local"  # CPU <-> GPU (input staging)
    LOCAL = "local"            # same device, no data movement


@dataclass(frozen=True)
class Leg:
    """One DMA: ``src`` to ``dst`` across ``links`` (cut-through)."""

    src: Node
    dst: Node
    links: Tuple[Link, ...]

    def bandwidth(self, constants: CalibrationConstants) -> float:
        """Achieved bandwidth of the leg: the slowest constituent link."""
        return min(link.effective_bandwidth(constants) for link in self.links)

    def latency(self, constants: CalibrationConstants) -> float:
        """Sum of per-hop latencies."""
        return sum(link.latency(constants) for link in self.links)

    def reversed(self) -> "Leg":
        """The same physical path traversed in the opposite direction."""
        return Leg(src=self.dst, dst=self.src, links=tuple(reversed(self.links)))


@dataclass(frozen=True)
class Route:
    """A complete transfer plan between two endpoints."""

    kind: RouteKind
    legs: Tuple[Leg, ...]

    @property
    def hop_count(self) -> int:
        return sum(len(leg.links) for leg in self.legs)

    def bottleneck_bandwidth(self, constants: CalibrationConstants) -> float:
        if not self.legs:
            return float("inf")
        return min(leg.bandwidth(constants) for leg in self.legs)

    def total_latency(self, constants: CalibrationConstants) -> float:
        return sum(leg.latency(constants) for leg in self.legs)

    def serialized_time(self, nbytes: int, constants: CalibrationConstants) -> float:
        """Uncontended store-and-forward time for ``nbytes``.

        Each leg is a full DMA of the message, so legs add up (no
        pipelining between staging copies, matching cudaMemcpyPeer).
        """
        total = 0.0
        for leg in self.legs:
            total += leg.latency(constants) + nbytes / leg.bandwidth(constants)
        return total


class Router:
    """Computes :class:`Route` objects over a :class:`SystemTopology`."""

    def __init__(self, topology: SystemTopology) -> None:
        self.topology = topology

    # ------------------------------------------------------------------
    # GPU <-> GPU
    # ------------------------------------------------------------------
    def gpu_to_gpu(self, src: GpuNode, dst: GpuNode) -> Route:
        """Best route between two GPUs, preferring NVLink."""
        if src == dst:
            return Route(RouteKind.LOCAL, ())
        direct = self.topology.nvlink_between(src, dst)
        if direct is not None:
            return Route(RouteKind.DIRECT_NVLINK, (Leg(src, dst, (direct,)),))
        relay = self._best_relay(src, dst)
        if relay is not None:
            first = self.topology.nvlink_between(src, relay)
            second = self.topology.nvlink_between(relay, dst)
            assert first is not None and second is not None
            return Route(
                RouteKind.STAGED_NVLINK,
                (Leg(src, relay, (first,)), Leg(relay, dst, (second,))),
            )
        return self._host_route(src, dst)

    def _best_relay(self, src: GpuNode, dst: GpuNode) -> Optional[GpuNode]:
        """The common NVLink neighbor maximizing the narrower of both hops."""
        best: Optional[GpuNode] = None
        best_key: Tuple[int, int] = (-1, -1)
        src_neighbors = set(self.topology.nvlink_neighbors(src))
        dst_neighbors = set(self.topology.nvlink_neighbors(dst))
        for node in src_neighbors & dst_neighbors:
            if not isinstance(node, GpuNode):
                continue
            w_in = self.topology.nvlink_between(src, node).width
            w_out = self.topology.nvlink_between(node, dst).width
            key = (min(w_in, w_out), w_in + w_out)
            if key > best_key or (key == best_key and best is not None and node.index < best.index):
                best, best_key = node, key
        return best

    def _host_route(self, src: GpuNode, dst: GpuNode) -> Route:
        """DtoH + HtoD through pinned host memory (the slow CUDA fallback).

        Within a node the host hop is QPI; across cluster nodes it rides
        the NIC / InfiniBand chain.
        """
        down = self._pcie_links(src)
        up = self._pcie_links(dst)
        src_cpu = self.topology.home_cpu(src)
        dst_cpu = self.topology.home_cpu(dst)
        up_links: List[Link] = list(reversed(up))
        if src_cpu != dst_cpu:
            host = self.topology.host_path(src_cpu, dst_cpu)
            host_links = []
            for a, b in zip(host, host[1:]):
                link = self.topology.link_between(a, b)
                if link is None:
                    raise RoutingError(f"broken host path between {a} and {b}")
                host_links.append(link)
            up_links = [*host_links, *up_links]
        return Route(
            RouteKind.PCIE_HOST,
            (Leg(src, src_cpu, tuple(down)), Leg(src_cpu, dst, tuple(up_links))),
        )

    # ------------------------------------------------------------------
    # CPU <-> GPU (input staging)
    # ------------------------------------------------------------------
    def cpu_to_gpu(self, cpu: CpuNode, gpu: GpuNode) -> Route:
        """HtoD route used when the CPU sends mini-batches to a GPU."""
        up = list(reversed(self._pcie_links(gpu)))
        home = self.topology.home_cpu(gpu)
        links: List[Link] = list(up)
        if home != cpu:
            qpi = self.topology.link_between(cpu, home)
            if qpi is None:
                raise RoutingError(f"no QPI link between {cpu} and {home}")
            links = [qpi, *links]
        return Route(RouteKind.PCIE_LOCAL, (Leg(cpu, gpu, tuple(links)),))

    def _pcie_links(self, gpu: GpuNode) -> List[Link]:
        """PCIe links from ``gpu`` down to its home CPU, in GPU->CPU order."""
        path = self.topology.pcie_path(gpu)
        links: List[Link] = []
        for a, b in zip(path, path[1:]):
            link = self.topology.link_between(a, b)
            assert link is not None
            links.append(link)
        return links

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def nvlink_distance(self, src: GpuNode, dst: GpuNode) -> int:
        """0 for same GPU, 1 for direct NVLink, 2 for staged, 3 for host."""
        route = self.gpu_to_gpu(src, dst)
        return {
            RouteKind.LOCAL: 0,
            RouteKind.DIRECT_NVLINK: 1,
            RouteKind.STAGED_NVLINK: 2,
            RouteKind.PCIE_HOST: 3,
        }[route.kind]
